#include "pm/device.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "pm/checker.h"

namespace fasp::pm {

namespace {

/** Round up to the next power of two (minimum 1). */
std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** Calling thread's active site tag. Thread-local so concurrent
 *  clients' SiteScopes never clobber each other. */
thread_local const char *t_site = nullptr;

/** Calling thread's modelled-latency accumulator (see threadModelNs). */
thread_local std::uint64_t t_modelNs = 0;

/** Monotonic per-thread persistence counters (see threadFlushCount).
 *  Unlike t_modelNs these are never reset: readers take deltas, so the
 *  span profiler and the bench layer cannot clobber each other. */
thread_local std::uint64_t t_flushTotal = 0;
thread_local std::uint64_t t_fenceTotal = 0;
thread_local std::uint64_t t_persistModelNs = 0;

} // namespace

PmDevice::PmDevice(const PmConfig &config)
    : config_(config),
      durable_(config.size, 0),
      crashRng_(std::make_unique<Rng>(config.crashSeed))
{
    FASP_ASSERT(config.size % kCacheLineSize == 0);
    std::size_t lines = roundUpPow2(std::max<std::size_t>(
        config.tagCacheLines, 64));
    tags_ = std::vector<std::atomic<PmOffset>>(lines);
    tagMask_ = lines - 1;
}

PmDevice::~PmDevice() = default;

const char *
PmDevice::setSite(const char *site)
{
    const char *prev = t_site;
    t_site = site;
    return prev;
}

const char *
PmDevice::site() const
{
    return t_site;
}

std::uint64_t
PmDevice::threadModelNs()
{
    return t_modelNs;
}

void
PmDevice::resetThreadModelNs()
{
    t_modelNs = 0;
}

std::uint64_t
PmDevice::threadFlushCount()
{
    return t_flushTotal;
}

std::uint64_t
PmDevice::threadFenceCount()
{
    return t_fenceTotal;
}

std::uint64_t
PmDevice::threadPersistModelNs()
{
    return t_persistModelNs;
}

void
PmDevice::chargeModelNs(std::uint64_t ns)
{
    stats_.modelNs.fetch_add(ns, std::memory_order_relaxed);
    t_modelNs += ns;
    t_persistModelNs += ns;
    if (PhaseTracker *trk = phaseTracker())
        trk->addModelNs(ns);
    if (PmEventObserver *obs = observer())
        obs->onPmModelNs(t_site, currentThreadComponent(), ns);
}

void
PmDevice::checkRange(PmOffset off, std::size_t len) const
{
    if (off + len > durable_.size() || off + len < off) {
        faspPanic("PM access out of range: off=%llu len=%zu size=%zu",
                  static_cast<unsigned long long>(off), len,
                  durable_.size());
    }
}

void
PmDevice::checkAlive() const
{
    if (crashed())
        faspPanic("access to crashed PM device before recovery");
}

std::uint64_t
PmDevice::raiseEvent(PmEvent event)
{
    std::uint64_t index =
        eventCount_.fetch_add(1, std::memory_order_acq_rel);
    CrashInjector *injector = injector_.load(std::memory_order_acquire);
    if (injector && injector->shouldCrash(event, index)) {
        crash();
        throw CrashException(index);
    }
    return index;
}

void
PmDevice::write(PmOffset off, const void *src, std::size_t len)
{
    writeImpl(off, src, len, /*scratch=*/false);
}

void
PmDevice::writeScratch(PmOffset off, const void *src, std::size_t len)
{
    writeImpl(off, src, len, /*scratch=*/true);
}

void
PmDevice::writeImpl(PmOffset off, const void *src, std::size_t len,
                    bool scratch)
{
    checkAlive();
    checkRange(off, len);
    if (len == 0)
        return;
    if (mc::SchedulerHook *h = mc::activeHook())
        h->atPoint(mc::HookOp::PmStore, durable_.data() + off, len);
    // Shard mutexes / checker internals below are implementation
    // detail, not scheduling points.
    mc::HookDepthGuard hook_depth;
    std::uint64_t index = raiseEvent(PmEvent::Store);
    stats_.stores.fetch_add(1, std::memory_order_relaxed);
    stats_.storeBytes.fetch_add(len, std::memory_order_relaxed);

    const auto *bytes = static_cast<const std::uint8_t *>(src);
    if (config_.mode == PmMode::Direct) {
        std::memcpy(durable_.data() + off, bytes, len);
    } else {
        // Scatter the store across the dirty lines it touches.
        PmOffset cur = off;
        std::size_t remaining = len;
        while (remaining > 0) {
            PmOffset base = cacheLineBase(cur);
            std::size_t in_line = std::min<std::size_t>(
                remaining, base + kCacheLineSize - cur);
            CacheShard &shard = shardFor(base);
            {
                MutexLock lk(&shard.mu);
                auto it = shard.lines.find(base);
                if (it == shard.lines.end()) {
                    LineBuf buf;
                    std::memcpy(buf.data(), durable_.data() + base,
                                kCacheLineSize);
                    it = shard.lines.emplace(base, buf).first;
                    dirtyLines_.fetch_add(1, std::memory_order_release);
                }
                std::memcpy(it->second.data() + (cur - base), bytes,
                            in_line);
            }
            bytes += in_line;
            cur += in_line;
            remaining -= in_line;
        }
    }

    // Write-allocate into the simulated read cache (no charge: the CPU
    // cache hides store latency, per the paper's emulation rule).
    for (PmOffset base = cacheLineBase(off);
         base < off + len; base += kCacheLineSize) {
        tags_[(base / kCacheLineSize) & tagMask_].store(
            base + 1, std::memory_order_relaxed);
    }

    if (PersistencyChecker *chk = checker())
        chk->onStore(off, len, scratch, index, t_site);
    if (PmEventObserver *obs = observer()) {
        if (!scratch)
            obs->onPmStore(t_site, currentThreadComponent(), len);
    }
}

bool
PmDevice::casU64(PmOffset off, std::uint64_t &expected,
                 std::uint64_t desired)
{
    checkAlive();
    checkRange(off, 8);
    FASP_ASSERT(off % 8 == 0);
    if (mc::SchedulerHook *h = mc::activeHook())
        h->atPoint(mc::HookOp::PmCas, durable_.data() + off, 8);
    mc::HookDepthGuard hook_depth;
    std::uint64_t index = raiseEvent(PmEvent::Store);

    bool ok;
    if (config_.mode == PmMode::Direct) {
        // The durable image is line-aligned, so an 8-aligned offset
        // lands on a naturally aligned word.
        std::atomic_ref<std::uint64_t> word(*reinterpret_cast<
            std::uint64_t *>(durable_.data() + off));
        ok = word.compare_exchange_strong(expected, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
    } else {
        // CacheSim: the shard mutex serializes every access to the
        // line, so compare + conditional store is atomic under it.
        PmOffset base = cacheLineBase(off);
        CacheShard &shard = shardFor(base);
        MutexLock lk(&shard.mu);
        auto it = shard.lines.find(base);
        std::uint64_t cur;
        const std::uint8_t *src = (it != shard.lines.end())
            ? it->second.data() + (off - base)
            : durable_.data() + off;
        std::memcpy(&cur, src, 8);
        if (cur == expected) {
            if (it == shard.lines.end()) {
                LineBuf buf;
                std::memcpy(buf.data(), durable_.data() + base,
                            kCacheLineSize);
                it = shard.lines.emplace(base, buf).first;
                dirtyLines_.fetch_add(1, std::memory_order_release);
            }
            std::memcpy(it->second.data() + (off - base), &desired, 8);
            ok = true;
        } else {
            expected = cur;
            ok = false;
        }
    }

    if (ok) {
        stats_.stores.fetch_add(1, std::memory_order_relaxed);
        stats_.storeBytes.fetch_add(8, std::memory_order_relaxed);
        tags_[(cacheLineBase(off) / kCacheLineSize) & tagMask_].store(
            cacheLineBase(off) + 1, std::memory_order_relaxed);
        if (PersistencyChecker *chk = checker())
            chk->onCasStore(off, index, t_site);
        if (PmEventObserver *obs = observer())
            obs->onPmStore(t_site, currentThreadComponent(), 8);
    } else {
        stats_.loads.fetch_add(1, std::memory_order_relaxed);
        stats_.loadBytes.fetch_add(8, std::memory_order_relaxed);
    }
    return ok;
}

std::uint64_t
PmDevice::loadU64Atomic(PmOffset off)
{
    checkAlive();
    checkRange(off, 8);
    FASP_ASSERT(off % 8 == 0);
    mc::HookDepthGuard hook_depth;
    stats_.loads.fetch_add(1, std::memory_order_relaxed);
    stats_.loadBytes.fetch_add(8, std::memory_order_relaxed);
    if (config_.chargeReads)
        chargeReadLatency(off, 8);

    if (config_.mode == PmMode::Direct) {
        std::atomic_ref<const std::uint64_t> word(*reinterpret_cast<
            const std::uint64_t *>(durable_.data() + off));
        return word.load(std::memory_order_acquire);
    }
    PmOffset base = cacheLineBase(off);
    CacheShard &shard = shardFor(base);
    MutexLock lk(&shard.mu);
    auto it = shard.lines.find(base);
    const std::uint8_t *src = (it != shard.lines.end())
        ? it->second.data() + (off - base)
        : durable_.data() + off;
    std::uint64_t v;
    std::memcpy(&v, src, 8);
    return v;
}

void
PmDevice::read(PmOffset off, void *dst, std::size_t len)
{
    checkAlive();
    checkRange(off, len);
    if (len == 0)
        return;
    // Reads are not scheduling points (see DESIGN.md §13: racy logic
    // must either hold a latch, which is a point, or mark the gap with
    // mc::yieldPoint()), but the shard locks below must stay invisible.
    mc::HookDepthGuard hook_depth;
    stats_.loads.fetch_add(1, std::memory_order_relaxed);
    stats_.loadBytes.fetch_add(len, std::memory_order_relaxed);
    if (config_.chargeReads)
        chargeReadLatency(off, len);
    // V6: a plain read must not consume a PCAS dirty-tagged word (one
    // relaxed load inside onRead when no word is tagged).
    if (PersistencyChecker *chk = checker())
        chk->onRead(off, len, eventCount(), t_site);

    auto *out = static_cast<std::uint8_t *>(dst);
    if (config_.mode == PmMode::Direct || dirtyLineCount() == 0) {
        std::memcpy(out, durable_.data() + off, len);
        return;
    }
    // Gather: dirty lines override the durable image.
    PmOffset cur = off;
    std::size_t remaining = len;
    while (remaining > 0) {
        PmOffset base = cacheLineBase(cur);
        std::size_t in_line = std::min<std::size_t>(
            remaining, base + kCacheLineSize - cur);
        CacheShard &shard = shardFor(base);
        {
            MutexLock lk(&shard.mu);
            auto it = shard.lines.find(base);
            const std::uint8_t *src = (it != shard.lines.end())
                ? it->second.data() + (cur - base)
                : durable_.data() + cur;
            std::memcpy(out, src, in_line);
        }
        out += in_line;
        cur += in_line;
        remaining -= in_line;
    }
}

void
PmDevice::readDurable(PmOffset off, void *dst, std::size_t len) const
{
    checkRange(off, len);
    std::memcpy(dst, durable_.data() + off, len);
}

void
PmDevice::memset(PmOffset off, std::uint8_t byte, std::size_t len)
{
    checkAlive();
    checkRange(off, len);
    std::array<std::uint8_t, 256> chunk;
    chunk.fill(byte);
    while (len > 0) {
        std::size_t n = std::min(len, chunk.size());
        write(off, chunk.data(), n);
        off += n;
        len -= n;
    }
}

void
PmDevice::chargeReadLatency(PmOffset off, std::size_t len)
{
    std::uint64_t penalty = config_.latency.readPenaltyNs();
    for (PmOffset base = cacheLineBase(off);
         base < off + len; base += kCacheLineSize) {
        std::size_t idx = (base / kCacheLineSize) & tagMask_;
        if (tags_[idx].load(std::memory_order_relaxed) != base + 1) {
            tags_[idx].store(base + 1, std::memory_order_relaxed);
            stats_.readMisses.fetch_add(1, std::memory_order_relaxed);
            chargeModelNs(penalty);
            if (PhaseTracker *trk = phaseTracker())
                trk->countReadMiss();
        }
    }
}

void
PmDevice::clflush(PmOffset off)
{
    checkAlive();
    checkRange(off, 1);
    if (mc::SchedulerHook *h = mc::activeHook())
        h->atPoint(mc::HookOp::PmFlush,
                   durable_.data() + cacheLineBase(off),
                   kCacheLineSize);
    mc::HookDepthGuard hook_depth;
    std::uint64_t index = raiseEvent(PmEvent::Flush);
    PmOffset base = cacheLineBase(off);

    if (config_.mode == PmMode::CacheSim) {
        // Fault injection: a dropped flush discards the dirty line
        // instead of writing it back, while every downstream effect
        // (stats, checker, observer) still sees a successful flush.
        FlushDropper *dropper =
            flushDropper_.load(std::memory_order_acquire);
        bool drop = dropper && dropper->shouldDrop(base, index);
        CacheShard &shard = shardFor(base);
        MutexLock lk(&shard.mu);
        auto it = shard.lines.find(base);
        if (it != shard.lines.end()) {
            if (!drop)
                std::memcpy(durable_.data() + base, it->second.data(),
                            kCacheLineSize);
            shard.lines.erase(it);
            dirtyLines_.fetch_sub(1, std::memory_order_release);
        }
    }
    // CLFLUSH evicts the line (the next read misses); CLWB writes it
    // back but keeps it cached.
    if (!config_.useClwb) {
        tags_[(base / kCacheLineSize) & tagMask_].store(
            0, std::memory_order_relaxed);
    }

    stats_.clflushes.fetch_add(1, std::memory_order_relaxed);
    ++t_flushTotal;
    chargeModelNs(config_.latency.pmWriteNs);
    if (PhaseTracker *trk = phaseTracker())
        trk->countFlush();
    if (PersistencyChecker *chk = checker())
        chk->onFlush(base, index, t_site);
    if (PmEventObserver *obs = observer())
        obs->onPmFlush(t_site, currentThreadComponent());
}

void
PmDevice::flushRange(PmOffset off, std::size_t len)
{
    if (len == 0)
        return;
    for (PmOffset base = cacheLineBase(off);
         base < off + len; base += kCacheLineSize) {
        clflush(base);
    }
}

void
PmDevice::sfence()
{
    checkAlive();
    // The fence is where the model checker forks crash images, so its
    // atPoint carries the whole-device resource (durable_.data()).
    if (mc::SchedulerHook *h = mc::activeHook())
        h->atPoint(mc::HookOp::PmFence, durable_.data(), 1);
    mc::HookDepthGuard hook_depth;
    std::uint64_t index = raiseEvent(PmEvent::Fence);
    stats_.fences.fetch_add(1, std::memory_order_relaxed);
    ++t_fenceTotal;
    chargeModelNs(config_.latency.fenceNs);
    if (PhaseTracker *trk = phaseTracker())
        trk->countFence();
    if (PersistencyChecker *chk = checker())
        chk->onFence(index, t_site);
    if (PmEventObserver *obs = observer())
        obs->onPmFence(t_site, currentThreadComponent());
}

void
PmDevice::markScratch(PmOffset off, std::size_t len)
{
    mc::HookDepthGuard hook_depth; // checker internals, not a point
    if (PersistencyChecker *chk = checker())
        chk->onMarkScratch(off, len);
}

void
PmDevice::txBegin()
{
    mc::HookDepthGuard hook_depth; // checker internals, not a point
    if (PersistencyChecker *chk = checker())
        chk->onTxBegin();
}

void
PmDevice::txCommitPoint()
{
    mc::HookDepthGuard hook_depth; // checker internals, not a point
    if (PersistencyChecker *chk = checker())
        chk->onTxCommitPoint(eventCount(), t_site);
}

void
PmDevice::txEnd(bool committed)
{
    mc::HookDepthGuard hook_depth; // checker internals, not a point
    if (PersistencyChecker *chk = checker())
        chk->onTxEnd(committed, eventCount(), t_site);
}

void
PmDevice::crash()
{
    FASP_ASSERT(config_.mode == PmMode::CacheSim);
    for (CacheShard &shard : cacheShards_) {
        MutexLock lk(&shard.mu);
        switch (config_.crashPolicy) {
          case CrashPolicy::DropAll:
            break;
          case CrashPolicy::RandomLines:
            // The cache may have evicted any dirty line to PM before
            // power was lost: persist an arbitrary subset, whole lines
            // at a time.
            for (const auto &[base, line] : shard.lines) {
                if (crashRng_->nextBool(0.5)) {
                    std::memcpy(durable_.data() + base, line.data(),
                                kCacheLineSize);
                }
            }
            break;
          case CrashPolicy::TornLines:
            // Only 8-byte units are atomic: each aligned word of each
            // dirty line independently reaches PM or not.
            for (const auto &[base, line] : shard.lines) {
                for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
                    if (crashRng_->nextBool(0.5)) {
                        std::memcpy(durable_.data() + base + w,
                                    line.data() + w, 8);
                    }
                }
            }
            break;
        }
        shard.lines.clear();
    }
    dirtyLines_.store(0, std::memory_order_release);
    crashed_.store(true, std::memory_order_release);
    if (PersistencyChecker *chk = checker())
        chk->onCrash();
}

void
PmDevice::reviveAfterCrash()
{
    for (CacheShard &shard : cacheShards_) {
        MutexLock lk(&shard.mu);
        shard.lines.clear();
    }
    dirtyLines_.store(0, std::memory_order_release);
    crashed_.store(false, std::memory_order_release);
    invalidateTagCache();
}

void
PmDevice::invalidateTagCache()
{
    for (auto &tag : tags_)
        tag.store(0, std::memory_order_relaxed);
}

void
PmDevice::composeCrashImage(CrashPolicy policy, std::uint64_t seed,
                            std::vector<std::uint8_t> &out)
{
    FASP_ASSERT(config_.mode == PmMode::CacheSim);
    mc::HookDepthGuard hook_depth; // shard locks, not points
    out.assign(durable_.begin(), durable_.end());
    Rng rng(seed);
    // Shards are visited in index order and lines within a shard in
    // map order; with the fixed seed that makes the image a pure
    // function of (device state, policy, seed)... except that the
    // unordered_map iteration order could differ across library
    // implementations. Sort the lines so it cannot.
    for (CacheShard &shard : cacheShards_) {
        MutexLock lk(&shard.mu);
        std::vector<PmOffset> bases;
        bases.reserve(shard.lines.size());
        for (const auto &[base, line] : shard.lines)
            bases.push_back(base);
        std::sort(bases.begin(), bases.end());
        for (PmOffset base : bases) {
            const LineBuf &line = shard.lines.at(base);
            switch (policy) {
              case CrashPolicy::DropAll:
                break;
              case CrashPolicy::RandomLines:
                if (rng.nextBool(0.5)) {
                    std::memcpy(out.data() + base, line.data(),
                                kCacheLineSize);
                }
                break;
              case CrashPolicy::TornLines:
                for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
                    if (rng.nextBool(0.5)) {
                        std::memcpy(out.data() + base + w,
                                    line.data() + w, 8);
                    }
                }
                break;
            }
        }
    }
}

void
PmDevice::resetToImage(const std::uint8_t *image, std::size_t len)
{
    FASP_ASSERT(len == durable_.size());
    mc::HookDepthGuard hook_depth;
    for (CacheShard &shard : cacheShards_) {
        MutexLock lk(&shard.mu);
        shard.lines.clear();
    }
    dirtyLines_.store(0, std::memory_order_release);
    crashed_.store(false, std::memory_order_release);
    eventCount_.store(0, std::memory_order_release);
    std::memcpy(durable_.data(), image, len);
    invalidateTagCache();
}

} // namespace fasp::pm
