#include "pm/device.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "pm/checker.h"

namespace fasp::pm {

namespace {

/** Round up to the next power of two (minimum 1). */
std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

PmDevice::PmDevice(const PmConfig &config)
    : config_(config),
      durable_(config.size, 0),
      crashRng_(std::make_unique<Rng>(config.crashSeed))
{
    FASP_ASSERT(config.size % kCacheLineSize == 0);
    std::size_t lines = roundUpPow2(std::max<std::size_t>(
        config.tagCacheLines, 64));
    tags_.assign(lines, 0);
    tagMask_ = lines - 1;
}

PmDevice::~PmDevice() = default;

void
PmDevice::checkRange(PmOffset off, std::size_t len) const
{
    if (off + len > durable_.size() || off + len < off) {
        faspPanic("PM access out of range: off=%llu len=%zu size=%zu",
                  static_cast<unsigned long long>(off), len,
                  durable_.size());
    }
}

void
PmDevice::checkAlive() const
{
    if (crashed_)
        faspPanic("access to crashed PM device before recovery");
}

std::uint64_t
PmDevice::raiseEvent(PmEvent event)
{
    std::uint64_t index = eventCount_++;
    if (injector_ && injector_->shouldCrash(event, index)) {
        crash();
        throw CrashException(index);
    }
    return index;
}

PmDevice::LineBuf &
PmDevice::cacheLineFor(PmOffset line_base)
{
    auto it = cache_.find(line_base);
    if (it == cache_.end()) {
        LineBuf buf;
        std::memcpy(buf.data(), durable_.data() + line_base,
                    kCacheLineSize);
        it = cache_.emplace(line_base, buf).first;
    }
    return it->second;
}

void
PmDevice::write(PmOffset off, const void *src, std::size_t len)
{
    writeImpl(off, src, len, /*scratch=*/false);
}

void
PmDevice::writeScratch(PmOffset off, const void *src, std::size_t len)
{
    writeImpl(off, src, len, /*scratch=*/true);
}

void
PmDevice::writeImpl(PmOffset off, const void *src, std::size_t len,
                    bool scratch)
{
    checkAlive();
    checkRange(off, len);
    if (len == 0)
        return;
    std::uint64_t index = raiseEvent(PmEvent::Store);
    stats_.stores++;
    stats_.storeBytes += len;

    const auto *bytes = static_cast<const std::uint8_t *>(src);
    if (config_.mode == PmMode::Direct) {
        std::memcpy(durable_.data() + off, bytes, len);
    } else {
        // Scatter the store across the dirty lines it touches.
        PmOffset cur = off;
        std::size_t remaining = len;
        while (remaining > 0) {
            PmOffset base = cacheLineBase(cur);
            std::size_t in_line = std::min<std::size_t>(
                remaining, base + kCacheLineSize - cur);
            LineBuf &line = cacheLineFor(base);
            std::memcpy(line.data() + (cur - base), bytes, in_line);
            bytes += in_line;
            cur += in_line;
            remaining -= in_line;
        }
    }

    // Write-allocate into the simulated read cache (no charge: the CPU
    // cache hides store latency, per the paper's emulation rule).
    for (PmOffset base = cacheLineBase(off);
         base < off + len; base += kCacheLineSize) {
        tags_[(base / kCacheLineSize) & tagMask_] = base + 1;
    }

    if (checker_)
        checker_->onStore(off, len, scratch, index, site_);
}

void
PmDevice::read(PmOffset off, void *dst, std::size_t len)
{
    checkAlive();
    checkRange(off, len);
    if (len == 0)
        return;
    stats_.loads++;
    stats_.loadBytes += len;
    if (config_.chargeReads)
        chargeReadLatency(off, len);

    auto *out = static_cast<std::uint8_t *>(dst);
    if (config_.mode == PmMode::Direct || cache_.empty()) {
        std::memcpy(out, durable_.data() + off, len);
        return;
    }
    // Gather: dirty lines override the durable image.
    PmOffset cur = off;
    std::size_t remaining = len;
    while (remaining > 0) {
        PmOffset base = cacheLineBase(cur);
        std::size_t in_line = std::min<std::size_t>(
            remaining, base + kCacheLineSize - cur);
        auto it = cache_.find(base);
        const std::uint8_t *src = (it != cache_.end())
            ? it->second.data() + (cur - base)
            : durable_.data() + cur;
        std::memcpy(out, src, in_line);
        out += in_line;
        cur += in_line;
        remaining -= in_line;
    }
}

void
PmDevice::readDurable(PmOffset off, void *dst, std::size_t len) const
{
    checkRange(off, len);
    std::memcpy(dst, durable_.data() + off, len);
}

void
PmDevice::memset(PmOffset off, std::uint8_t byte, std::size_t len)
{
    checkAlive();
    checkRange(off, len);
    std::array<std::uint8_t, 256> chunk;
    chunk.fill(byte);
    while (len > 0) {
        std::size_t n = std::min(len, chunk.size());
        write(off, chunk.data(), n);
        off += n;
        len -= n;
    }
}

void
PmDevice::chargeReadLatency(PmOffset off, std::size_t len)
{
    std::uint64_t penalty = config_.latency.readPenaltyNs();
    for (PmOffset base = cacheLineBase(off);
         base < off + len; base += kCacheLineSize) {
        std::size_t idx = (base / kCacheLineSize) & tagMask_;
        if (tags_[idx] != base + 1) {
            tags_[idx] = base + 1;
            stats_.readMisses++;
            stats_.modelNs += penalty;
            if (tracker_) {
                tracker_->addModelNs(penalty);
                tracker_->countReadMiss();
            }
        }
    }
}

void
PmDevice::clflush(PmOffset off)
{
    checkAlive();
    checkRange(off, 1);
    std::uint64_t index = raiseEvent(PmEvent::Flush);
    PmOffset base = cacheLineBase(off);

    if (config_.mode == PmMode::CacheSim) {
        auto it = cache_.find(base);
        if (it != cache_.end()) {
            std::memcpy(durable_.data() + base, it->second.data(),
                        kCacheLineSize);
            cache_.erase(it);
        }
    }
    // CLFLUSH evicts the line (the next read misses); CLWB writes it
    // back but keeps it cached.
    if (!config_.useClwb)
        tags_[(base / kCacheLineSize) & tagMask_] = 0;

    stats_.clflushes++;
    stats_.modelNs += config_.latency.pmWriteNs;
    if (tracker_) {
        tracker_->addModelNs(config_.latency.pmWriteNs);
        tracker_->countFlush();
    }
    if (checker_)
        checker_->onFlush(base, index, site_);
}

void
PmDevice::flushRange(PmOffset off, std::size_t len)
{
    if (len == 0)
        return;
    for (PmOffset base = cacheLineBase(off);
         base < off + len; base += kCacheLineSize) {
        clflush(base);
    }
}

void
PmDevice::sfence()
{
    checkAlive();
    std::uint64_t index = raiseEvent(PmEvent::Fence);
    stats_.fences++;
    stats_.modelNs += config_.latency.fenceNs;
    if (tracker_) {
        tracker_->addModelNs(config_.latency.fenceNs);
        tracker_->countFence();
    }
    if (checker_)
        checker_->onFence(index, site_);
}

void
PmDevice::markScratch(PmOffset off, std::size_t len)
{
    if (checker_)
        checker_->onMarkScratch(off, len);
}

void
PmDevice::txBegin()
{
    if (checker_)
        checker_->onTxBegin();
}

void
PmDevice::txCommitPoint()
{
    if (checker_)
        checker_->onTxCommitPoint(eventCount_, site_);
}

void
PmDevice::txEnd(bool committed)
{
    if (checker_)
        checker_->onTxEnd(committed, eventCount_, site_);
}

void
PmDevice::crash()
{
    FASP_ASSERT(config_.mode == PmMode::CacheSim);
    switch (config_.crashPolicy) {
      case CrashPolicy::DropAll:
        break;
      case CrashPolicy::RandomLines:
        // The cache may have evicted any dirty line to PM before power
        // was lost: persist an arbitrary subset, whole lines at a time.
        for (const auto &[base, line] : cache_) {
            if (crashRng_->nextBool(0.5)) {
                std::memcpy(durable_.data() + base, line.data(),
                            kCacheLineSize);
            }
        }
        break;
      case CrashPolicy::TornLines:
        // Only 8-byte units are atomic: each aligned word of each dirty
        // line independently reaches PM or not.
        for (const auto &[base, line] : cache_) {
            for (std::size_t w = 0; w < kCacheLineSize; w += 8) {
                if (crashRng_->nextBool(0.5)) {
                    std::memcpy(durable_.data() + base + w,
                                line.data() + w, 8);
                }
            }
        }
        break;
    }
    cache_.clear();
    crashed_ = true;
    if (checker_)
        checker_->onCrash();
}

void
PmDevice::reviveAfterCrash()
{
    cache_.clear();
    crashed_ = false;
    invalidateTagCache();
}

void
PmDevice::invalidateTagCache()
{
    std::fill(tags_.begin(), tags_.end(), 0);
}

} // namespace fasp::pm
