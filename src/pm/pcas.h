/**
 * @file
 * Persistent compare-and-swap (PCAS) and a bounded persistent
 * multi-word CAS (PMwCAS) on top of PmDevice.
 *
 * A plain CAS on persistent memory is not failure-atomic *as a
 * publication primitive*: the new value becomes visible to other
 * threads the instant the CAS lands in the cache, but it only becomes
 * durable after a clflush + sfence the CPU gives us no way to fuse
 * with the CAS itself. A concurrent reader (or a dependent store) can
 * therefore act on a value that a crash then erases.
 *
 * The dirty-flag protocol closes that window (see PAPERS.md, "Concurrent
 * Data Structures with Out-of-the-box Persistence" and the PMwCAS line
 * of work):
 *
 *   1. CAS old -> new | kPcasDirtyBit   (publish, tagged "maybe not durable")
 *   2. clflush(word); sfence()          (make it durable)
 *   3. CAS new|dirty -> new             (clear the tag; lazily persisted)
 *
 * Readers that meet a tagged word must *help*: flush, fence, clear —
 * never consume the tagged value directly (the persistency checker
 * reports such reads as V6 tagged-read). The clear in step 3 is
 * deliberately never flushed: if a crash leaves `new | dirty` in the
 * durable image, the value *is* durable (it is in the image), so
 * recovery simply strips the flag. That makes the steady-state cost of
 * a PCAS exactly one flush + one fence — the same bill as the RTM
 * in-place commit it replaces, with no line-tear exposure, because an
 * 8-byte aligned store is atomic on the modelled hardware while a
 * 64-byte line write-back is not.
 *
 * PMwCAS extends this to up to kMaxMwcasWords words via a persistent
 * descriptor (status, count, {addr, old, new}[]): phase 1 installs a
 * descriptor pointer (kPmwcasDescBit | slot) into every target word in
 * address order, a durable status flip to Succeeded is the commit
 * point, and phase 2 replaces the pointers with the tagged new values.
 * Recovery rolls a descriptor forward (Succeeded) or back (Active), so
 * the word set changes all-or-nothing across crashes.
 *
 * Flag bits 63 (dirty) and 62 (descriptor) are available because every
 * word the engines run through this layer is a packed slotted-page
 * header word — four u16 fields, each bounded by the page size — so
 * bits 62/63 are structurally zero in real values (asserted here).
 *
 * Thread safety: cas()/mwcas()/read() are safe from many threads at
 * once. recover() and setConfig() are quiescent-only.
 */

#ifndef FASP_PM_PCAS_H
#define FASP_PM_PCAS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace fasp::pm {

class PmDevice;

/** Bit 63: value published by a PCAS, flush + clear still pending. */
inline constexpr std::uint64_t kPcasDirtyBit = 1ull << 63;

/** Bit 62: word holds a PMwCAS descriptor pointer, not a value. */
inline constexpr std::uint64_t kPmwcasDescBit = 1ull << 62;

/** Both protocol bits; a word with neither is a plain durable value. */
inline constexpr std::uint64_t kPcasFlagMask =
    kPcasDirtyBit | kPmwcasDescBit;

/** Largest page size whose header words are structurally flag-free.
 *  Bit 62 of an aligned header u64 is bit 14 of its top u16 field — a
 *  page-relative offset, which stays below 2^14 only while the page
 *  size does. (Bit 63 = bit 15 is safe at every supported size, since
 *  offsets never reach 2^15.) Above this, FAST must publish headers
 *  via RTM or the log instead. */
inline constexpr std::uint32_t kPcasMaxPageSize = 16384;

/** True if @p v carries either protocol flag. */
constexpr bool
pcasTagged(std::uint64_t v)
{
    return (v & kPcasFlagMask) != 0;
}

/** @p v with both protocol flags stripped. */
constexpr std::uint64_t
pcasStrip(std::uint64_t v)
{
    return v & ~kPcasFlagMask;
}

/** Failure-injection and retry policy of the PCAS layer. */
struct PcasConfig
{
    /** Probability that any single cas()/mwcas() attempt fails as if a
     *  concurrent writer won the word. The engines hold an exclusive
     *  page latch across commits, so real CAS losses cannot happen
     *  there; this knob models the latch-free contention an RTM-style
     *  deployment would see, for the ablation table. */
    double failProbability = 0.0;

    /** Attempts before cas()/mwcas() reports Exhausted and the caller
     *  falls back to the logged commit path. */
    unsigned maxRetries = 8;

    /** Seed for the failure-injection RNG. */
    std::uint64_t seed = 11;
};

/**
 * Counters describing PCAS behaviour (ablation Table C). Relaxed
 * atomics: concurrent clients of one engine update them tear-free;
 * copies snapshot field-by-field.
 */
struct PcasStats
{
    std::atomic<std::uint64_t> casAttempts{0};  //!< publish CAS tries
    std::atomic<std::uint64_t> casCommits{0};   //!< cas() returning Ok
    std::atomic<std::uint64_t> casInjected{0};  //!< injected failures
    std::atomic<std::uint64_t> casConflicts{0}; //!< lost to a real
                                                //!< concurrent write
    std::atomic<std::uint64_t> casExhausted{0}; //!< retry budget spent
    std::atomic<std::uint64_t> helps{0};        //!< foreign tags
                                                //!< flushed + cleared

    std::atomic<std::uint64_t> mwcasAttempts{0};
    std::atomic<std::uint64_t> mwcasCommits{0};
    std::atomic<std::uint64_t> mwcasInjected{0};
    std::atomic<std::uint64_t> mwcasConflicts{0};
    std::atomic<std::uint64_t> mwcasExhausted{0};

    std::atomic<std::uint64_t> recoveredForward{0}; //!< descriptors
                                                    //!< rolled forward
    std::atomic<std::uint64_t> recoveredBack{0};    //!< descriptors
                                                    //!< rolled back

    PcasStats() = default;
    PcasStats(const PcasStats &other) { copyFrom(other); }

    PcasStats &operator=(const PcasStats &other)
    {
        copyFrom(other);
        return *this;
    }

    void reset() { *this = PcasStats{}; }

  private:
    void copyFrom(const PcasStats &other)
    {
        casAttempts = other.casAttempts.load(std::memory_order_relaxed);
        casCommits = other.casCommits.load(std::memory_order_relaxed);
        casInjected = other.casInjected.load(std::memory_order_relaxed);
        casConflicts =
            other.casConflicts.load(std::memory_order_relaxed);
        casExhausted =
            other.casExhausted.load(std::memory_order_relaxed);
        helps = other.helps.load(std::memory_order_relaxed);
        mwcasAttempts =
            other.mwcasAttempts.load(std::memory_order_relaxed);
        mwcasCommits =
            other.mwcasCommits.load(std::memory_order_relaxed);
        mwcasInjected =
            other.mwcasInjected.load(std::memory_order_relaxed);
        mwcasConflicts =
            other.mwcasConflicts.load(std::memory_order_relaxed);
        mwcasExhausted =
            other.mwcasExhausted.load(std::memory_order_relaxed);
        recoveredForward =
            other.recoveredForward.load(std::memory_order_relaxed);
        recoveredBack =
            other.recoveredBack.load(std::memory_order_relaxed);
    }
};

/**
 * Monotonic per-thread PCAS activity counters, across every Pcas
 * instance the calling thread drives. Never reset: readers take deltas
 * (the span profiler brackets a transaction with two reads), so
 * independent consumers cannot clobber each other. Plain thread-local
 * integers — no atomics, no obs dependency; obs pulls, pm never pushes.
 */
struct PcasThreadCounters
{
    std::uint64_t attempts = 0; //!< cas()+mwcas() attempt iterations
    std::uint64_t retries = 0;  //!< attempts beyond the first per call
    std::uint64_t helps = 0;    //!< foreign dirty tags helped to
                                //!< durability (flush+fence+clear)
};

/** The calling thread's PCAS counters (read-only view). */
const PcasThreadCounters &pcasThreadCounters();

/** Outcome of one cas()/mwcas() call. */
enum class PcasResult : std::uint8_t {
    Ok,        //!< published and durable
    Conflict,  //!< a concurrent writer changed a target word
    Exhausted, //!< retry budget spent on injected failures
};

/**
 * The PCAS engine bound to one PM device plus a descriptor region
 * (one device page, carved out by the pager next to the directory).
 */
class Pcas
{
  public:
    /** Upper bound on words per mwcas(): a slot-header diff is at most
     *  64 header bytes = 8 words, so the descriptor stays one slot. */
    static constexpr std::size_t kMaxMwcasWords = 8;

    /** Bytes reserved per descriptor slot (208 used, padded so four
     *  cache lines hold exactly one descriptor). */
    static constexpr std::size_t kDescSlotBytes = 256;

    /** Descriptor slots in the region; bounds concurrent mwcas()es.
     *  16 * 256 = 4096 bytes — one device page at every supported
     *  page size. */
    static constexpr std::size_t kDescSlots = 16;

    /** Bytes of PM the descriptor region occupies. */
    static constexpr std::size_t kDescRegionBytes =
        kDescSlots * kDescSlotBytes;

    /** One word of an mwcas() request. */
    struct MwcasEntry
    {
        PmOffset off = 0;          //!< 8-byte-aligned device offset
        std::uint64_t oldVal = 0;  //!< expected current value (untagged)
        std::uint64_t newVal = 0;  //!< desired value (untagged)
    };

    /**
     * @param device        the PM device all operations go through
     * @param descRegionOff 8-byte-aligned offset of kDescRegionBytes of
     *                      PM reserved for PMwCAS descriptors
     */
    Pcas(PmDevice &device, PmOffset descRegionOff,
         const PcasConfig &config);

    /**
     * Persistent single-word CAS: publish @p newVal at @p off if the
     * word currently holds @p oldVal, and make it durable. On return
     * Ok the value is flushed and fenced. Values must be flag-free.
     */
    PcasResult cas(PmOffset off, std::uint64_t oldVal,
                   std::uint64_t newVal);

    /**
     * Persistent multi-word CAS over @p count <= kMaxMwcasWords
     * entries. All words change to their new values, durably and
     * all-or-nothing (across both concurrent readers and crashes), or
     * none do. Entries need not be sorted; offsets must be distinct.
     */
    PcasResult mwcas(const MwcasEntry *entries, std::size_t count);

    /**
     * Read the logical value of a PCAS-managed word. Helps a dirty-
     * tagged value to durability (flush + fence + clear) and resolves
     * a descriptor pointer against its descriptor, so the caller never
     * observes a protocol flag.
     */
    std::uint64_t read(PmOffset off);

    /**
     * Post-crash, single-threaded: roll every Succeeded descriptor
     * forward and every Active descriptor back, leaving all slots
     * Free. Does NOT strip stray dirty bits from data words — the
     * engine's page-header sweep owns that, because only the engine
     * knows which words are headers. Call before log recovery so the
     * logged path reads untangled headers.
     */
    void recover();

    PcasStats &stats() { return stats_; }
    const PcasStats &stats() const { return stats_; }

    const PcasConfig &config() const { return config_; }

    /** Replace the failure policy (ablation bench; quiescent only). */
    void setConfig(const PcasConfig &config);

  private:
    // Descriptor slot layout (all u64): status, count, then
    // kMaxMwcasWords x {addr, old, new}.
    static constexpr std::uint64_t kSlotFree = 0;
    static constexpr std::uint64_t kSlotActive = 1;
    static constexpr std::uint64_t kSlotSucceeded = 2;

    PmOffset slotOff(std::size_t slot) const;
    PmOffset entryOff(std::size_t slot, std::size_t i) const;

    /** Descriptor-pointer word value for @p slot. */
    static std::uint64_t descPtr(std::size_t slot);

    bool rollInjectedFail();
    unsigned acquireSlot();
    void releaseSlot(unsigned slot);

    /** Flush + fence + clear a dirty-tagged word (the helping step).
     *  Returns the stripped value regardless of who won the clear. */
    std::uint64_t helpClear(PmOffset off, std::uint64_t tagged);

    /** One mwcas attempt against an already-written descriptor. */
    PcasResult mwcasAttempt(unsigned slot, const MwcasEntry *entries,
                            std::size_t count);

    /** Undo a partial phase-1 install, durably, before slot reuse. */
    void rollBackInstall(unsigned slot, const MwcasEntry *entries,
                         std::size_t installed);

    void clearTag(PmOffset off, std::uint64_t tagged);

    PmDevice &device_;
    PmOffset descOff_;
    PcasConfig config_;
    Mutex rngMu_;
    Rng rng_ GUARDED_BY(rngMu_); //!< failure-injection RNG, shared by
                                 //!< every concurrent caller
    PcasStats stats_;

    /** DRAM-side descriptor-slot allocator (bit i = slot i busy).
     *  Rebuilt empty on every construction: after a crash the PM-side
     *  status words are the truth and recover() frees them all. */
    std::atomic<std::uint32_t> slotMask_{0};
};

} // namespace fasp::pm

#endif // FASP_PM_PCAS_H
