/**
 * @file
 * PersistencyChecker: a pmemcheck-style dynamic analysis pass over the
 * PmDevice event stream.
 *
 * Every store, clflush and sfence the device executes drives a per-
 * cache-line state machine:
 *
 *      store          clflush           sfence
 *   CLEAN ----> DIRTY -------> FLUSHED -------> FENCED
 *                 ^  store        |  store (torn-durability window,
 *                 +---------------+  flagged and judged at the fence)
 *
 * Engines annotate their commit protocol through the narrow
 * PmDevice::txBegin()/txCommitPoint()/txEnd() API; the checker keeps
 * the set of lines stored inside the transaction and demands that each
 * of them is FENCED by the time the commit point (the store that makes
 * the transaction visible to recovery) executes. Five violation
 * classes result — see ViolationKind in checker_report.h.
 *
 * Lines written through PmDevice::writeScratch() (or ranges passed to
 * markScratch()) are best-effort by contract — free-list hints, freed
 * pages — and are exempt from the durability checks (V1/V3/V4/V5) but
 * still participate in redundant-flush detection.
 *
 * The checker is passive: it never changes device behaviour, and it is
 * crash-safe — onCrash() snapshots which lines were at risk (dirty,
 * hence possibly lost or torn) and resets, so recovery runs against a
 * clean analysis state.
 */

#ifndef FASP_PM_CHECKER_H
#define FASP_PM_CHECKER_H

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_annotations.h"
#include "common/types.h"
#include "pm/checker_report.h"

namespace fasp::pm {

/**
 * Per-cache-line persistency-ordering state machine. Attach to a
 * PmDevice with PmDevice::setChecker(); all hooks are then driven by
 * the device.
 *
 * Thread safety: every hook and query takes one internal mutex, so the
 * checker observes a total order of events. Transaction write sets and
 * the flushed-but-unfenced list are kept *per calling thread*, matching
 * the hardware: SFENCE only orders the issuing core's own write-backs,
 * and a commit protocol only vouches for the lines its own thread
 * stored. Per-line state remains global — the engines' latch protocol
 * guarantees at most one thread mutates a given line at a time, which
 * is what makes the per-line serialization meaningful (see DESIGN.md
 * §9).
 */
class PersistencyChecker
{
  public:
    /** State of one cache line; see file comment for transitions. */
    enum class LineState : std::uint8_t {
        Clean,   //!< no un-persisted store
        Dirty,   //!< stored, not flushed
        Flushed, //!< written back, writeback not yet ordered
        Fenced,  //!< writeback ordered: durable on any later crash
    };

    struct Config
    {
        /** Report V2 (clflush of a line with nothing to write back).
         *  On by default; a perf-tuning pass may turn it off to run
         *  the durability checks alone. */
        bool trackRedundantFlush = true;
    };

    PersistencyChecker() : PersistencyChecker(Config()) {}
    explicit PersistencyChecker(const Config &config);

    // --- Hooks driven by PmDevice ---------------------------------------

    void onStore(PmOffset off, std::size_t len, bool scratch,
                 std::uint64_t eventIndex, const char *site);
    void onFlush(PmOffset off, std::uint64_t eventIndex,
                 const char *site);
    void onFence(std::uint64_t eventIndex, const char *site);
    void onCrash();
    void onMarkScratch(PmOffset off, std::size_t len);

    /** An 8-byte atomic CAS store (PmDevice::casU64). Dirties the line
     *  like onStore but never arms the V4 flush->fence-window report:
     *  word-granular protocol stores (pcas publish / tag clear) are
     *  legal inside another thread's window, because the word cannot
     *  tear and its issuer settles its own durability (DESIGN.md §14).
     *  fasp-analyze's raw-cas rule keeps casU64 confined to the pcas
     *  layer, so this exemption cannot leak to ordinary stores. */
    void onCasStore(PmOffset off, std::uint64_t eventIndex,
                    const char *site);

    void onTxBegin();
    void onTxCommitPoint(std::uint64_t eventIndex, const char *site);
    void onTxEnd(bool committed, std::uint64_t eventIndex,
                 const char *site);

    // --- PCAS dirty-tag tracking (driven by pm::pcas, DESIGN.md §14) ----

    /** A persistent CAS published a tagged (not-yet-durable) value into
     *  the 8-byte word at @p wordOff. */
    void onTagSet(PmOffset wordOff, std::uint64_t eventIndex,
                  const char *site);

    /** The tag on @p wordOff was cleared (value now flushed+durable).
     *  Tolerates words the checker never saw tagged: recovery clears
     *  tags left behind by a crash that predates this checker. */
    void onTagClear(PmOffset wordOff);

    /** Every plain PmDevice::read() reports here. V6 fires if the read
     *  overlaps a currently tagged word: the caller consumed a value
     *  whose durability is unresolved instead of helping through the
     *  pcas layer. Cheap when no word is tagged (one relaxed load). */
    void onRead(PmOffset off, std::size_t len, std::uint64_t eventIndex,
                const char *site);

    /** Number of words currently carrying a PCAS dirty tag. */
    std::size_t taggedWordCount() const
    {
        return taggedCount_.load(std::memory_order_acquire);
    }

    // --- Checks and queries ----------------------------------------------

    /** V5 sweep: every non-scratch line must be CLEAN or FENCED. Call
     *  at orderly teardown (never after a crash). */
    void checkCleanShutdown(std::uint64_t eventIndex);

    /** Declare every currently un-persisted line deliberate (tests
     *  that abandon work in flight without simulating a crash). */
    void forgiveUnflushed();

    LineState lineState(PmOffset off) const;

    /** True if the line containing @p off was DIRTY when the last
     *  crash() hit — i.e. the crash policy was free to drop or tear
     *  it. FENCED and FLUSHED lines are never at risk: the simulated
     *  cache writes back on clflush, matching device semantics. */
    bool wasAtRiskAtCrash(PmOffset off) const;

    /** True while the *calling thread* has an open transaction. */
    bool txActive() const;

    /** The report is safe to read only while no hook can fire (workers
     *  joined or the checker detached) — a quiescence contract the
     *  intraprocedural analysis cannot see, hence the explicit opt-out
     *  on these two accessors. */
    CheckerReport &report() NO_THREAD_SAFETY_ANALYSIS
    {
        return report_;
    }
    const CheckerReport &report() const NO_THREAD_SAFETY_ANALYSIS
    {
        return report_;
    }

    /** Drop all line state and the report (not the at-risk snapshot). */
    void reset();

  private:
    struct LineInfo
    {
        LineState state = LineState::Clean;
        bool scratchOnly = false;    //!< every pending store is scratch
        bool flushAmbiguous = false; //!< stored-to between flush & fence
        std::uint8_t traceLen = 0;
        std::uint8_t traceHead = 0;
        std::array<LineTraceEvent, Violation::kTraceDepth> trace{};

        void record(LineTraceEvent::Op op, std::uint64_t eventIndex,
                    const char *site);
    };

    /** Per-thread protocol state (keyed by std::thread::id). */
    struct ThreadState
    {
        bool txActive = false;
        std::vector<PmOffset> txLines;          //!< insertion order
        std::unordered_set<PmOffset> txMembers; //!< dedup for txLines
        std::unordered_set<PmOffset> reported;  //!< lines already
                                                //!< reported this tx
        std::vector<PmOffset> flushedSinceFence;
    };

    /** State slot of the calling thread. */
    ThreadState &myState() REQUIRES(mu_);

    /** True if any 8-byte word of the line at @p base is tagged. */
    bool lineHasTaggedWord(PmOffset base) const REQUIRES(mu_);

    void storeLine(PmOffset base, bool scratch,
                   std::uint64_t eventIndex, const char *site,
                   ThreadState &ts) REQUIRES(mu_);
    void checkTxSetPersisted(ThreadState &ts, std::uint64_t eventIndex,
                             const char *site) REQUIRES(mu_);
    void reportLine(ViolationKind kind, PmOffset base,
                    const LineInfo &info, std::uint64_t eventIndex,
                    const char *site) REQUIRES(mu_);

    Config config_;
    /** The single checker mutex: serializes every hook and query so the
     *  analysis observes a total order of persistence events. */
    mutable Mutex mu_;
    CheckerReport report_ GUARDED_BY(mu_);
    std::unordered_map<PmOffset, LineInfo> lines_ GUARDED_BY(mu_);
    std::unordered_map<std::thread::id, ThreadState> threads_
        GUARDED_BY(mu_);
    std::unordered_set<PmOffset> atRiskAtCrash_ GUARDED_BY(mu_);

    /** Word offsets currently carrying a PCAS dirty tag. The atomic
     *  mirror of the set's size lets onRead() skip the mutex in the
     *  (overwhelmingly common) no-tags case. */
    std::unordered_set<PmOffset> taggedWords_ GUARDED_BY(mu_);
    std::atomic<std::size_t> taggedCount_{0};

    /** Lines that ever held a tagged word: pcas-managed header lines,
     *  permanently exempt from the V2 redundant-flush lint (a helper's
     *  flush can always race the owner's clear; DESIGN.md §14). Reset
     *  at crash along with the rest of the tracking state. */
    std::unordered_set<PmOffset> everTaggedLines_ GUARDED_BY(mu_);
};

} // namespace fasp::pm

#endif // FASP_PM_CHECKER_H
