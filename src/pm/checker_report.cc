#include "pm/checker_report.h"

#include <cinttypes>
#include <cstdio>

namespace fasp::pm {

const char *
violationKindName(ViolationKind kind)
{
    switch (kind) {
      case ViolationKind::UnflushedStoreAtCommit:
        return "unflushed-store-at-commit";
      case ViolationKind::RedundantFlush:
        return "redundant-flush";
      case ViolationKind::UnfencedFlushAtCommit:
        return "unfenced-flush-at-commit";
      case ViolationKind::StoreInFlushFenceWindow:
        return "store-in-flush-fence-window";
      case ViolationKind::DirtyAtShutdown:
        return "dirty-at-shutdown";
      case ViolationKind::TaggedRead:
        return "tagged-read";
      case ViolationKind::UnclearedTag:
        return "uncleared-tag";
    }
    return "?";
}

const char *
lineTraceOpName(LineTraceEvent::Op op)
{
    switch (op) {
      case LineTraceEvent::Op::Store:
        return "store";
      case LineTraceEvent::Op::ScratchStore:
        return "scratch-store";
      case LineTraceEvent::Op::Flush:
        return "clflush";
      case LineTraceEvent::Op::Fence:
        return "sfence";
    }
    return "?";
}

std::string
Violation::toString() const
{
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "[%s] line 0x%" PRIx64 " at event %" PRIu64 " (%s)",
                  violationKindName(kind),
                  static_cast<std::uint64_t>(lineBase), eventIndex,
                  site ? site : "unknown site");
    std::string out = buf;
    for (std::size_t i = 0; i < traceLen; ++i) {
        const LineTraceEvent &ev = trace[i];
        std::snprintf(buf, sizeof buf, "\n    #%" PRIu64 " %s (%s)",
                      ev.eventIndex, lineTraceOpName(ev.op),
                      ev.site ? ev.site : "unknown site");
        out += buf;
    }
    return out;
}

void
CheckerReport::add(Violation v)
{
    countByKind_[static_cast<std::size_t>(v.kind)]++;
    total_++;
    if (violations_.size() < kMaxStored)
        violations_.push_back(std::move(v));
    else
        dropped_++;
}

std::uint64_t
CheckerReport::count(ViolationKind kind) const
{
    return countByKind_[static_cast<std::size_t>(kind)];
}

void
CheckerReport::clear()
{
    violations_.clear();
    countByKind_.fill(0);
    total_ = 0;
    dropped_ = 0;
}

std::string
CheckerReport::toString() const
{
    if (empty())
        return "";
    std::string out = "persistency checker: " + std::to_string(total_) +
                      " violation(s)";
    for (const Violation &v : violations_) {
        out += "\n  ";
        out += v.toString();
    }
    if (dropped_ > 0) {
        out += "\n  ... and " + std::to_string(dropped_) +
               " more (not stored)";
    }
    return out;
}

} // namespace fasp::pm
