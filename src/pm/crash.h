/**
 * @file
 * Crash-point injection for failure-atomicity testing.
 *
 * The PM device raises a persistence event at every store, clflush, and
 * fence. An installed CrashInjector may request a crash at any event;
 * the device then drops (or adversarially part-persists) its simulated
 * CPU cache and throws CrashException, which test harnesses catch at the
 * top level before re-opening the database from the durable image.
 */

#ifndef FASP_PM_CRASH_H
#define FASP_PM_CRASH_H

#include <cstdint>
#include <exception>

namespace fasp::pm {

/** Kind of persistence event at which a crash may be injected. */
enum class PmEvent : std::uint8_t {
    Store,  //!< a store to PM (still volatile in the CPU cache)
    Flush,  //!< a clflush of one cache line
    Fence,  //!< an sfence/mfence
};

/** Thrown by PmDevice when an injected crash fires. */
class CrashException : public std::exception
{
  public:
    explicit CrashException(std::uint64_t event_index)
        : eventIndex_(event_index)
    {}

    const char *what() const noexcept override
    {
        return "injected PM crash";
    }

    /** Global persistence-event index at which the crash fired. */
    std::uint64_t eventIndex() const { return eventIndex_; }

  private:
    std::uint64_t eventIndex_;
};

/**
 * Decides, per persistence event, whether to crash. Implementations are
 * installed on a PmDevice; a true return triggers the crash.
 */
class CrashInjector
{
  public:
    virtual ~CrashInjector() = default;

    /**
     * @param event the event kind
     * @param index global 0-based persistence-event counter
     * @return true to crash the device at this event
     */
    virtual bool shouldCrash(PmEvent event, std::uint64_t index) = 0;
};

/** Crashes at exactly one global event index (exhaustive sweeps). */
class PointCrashInjector : public CrashInjector
{
  public:
    explicit PointCrashInjector(std::uint64_t target) : target_(target) {}

    bool shouldCrash(PmEvent, std::uint64_t index) override
    {
        return index == target_;
    }

  private:
    std::uint64_t target_;
};

} // namespace fasp::pm

#endif // FASP_PM_CRASH_H
