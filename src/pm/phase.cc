#include "pm/phase.h"

#include <atomic>

#include "common/logging.h"

namespace fasp::pm {

namespace {

/** Per-thread component stack mirroring the PhaseScope nesting. Kept
 *  as a fixed array (no heap) so push/pop stay a handful of
 *  instructions on the engines' hot paths. */
struct ThreadComponentStack
{
    static constexpr std::size_t kMaxDepth = 16;
    std::array<Component, kMaxDepth> stack{Component::None};
    std::size_t depth = 0;
};

thread_local ThreadComponentStack t_components;

/** Span-profiler observer; relaxed loads keep the uninstalled cost at
 *  one predictable branch per push/pop. */
std::atomic<detail::PhaseHook> g_phaseHook{nullptr};

} // namespace

Component
currentThreadComponent()
{
    return t_components.stack[t_components.depth];
}

namespace detail {

void
pushThreadComponent(Component comp)
{
    auto &s = t_components;
    FASP_ASSERT(s.depth + 1 < ThreadComponentStack::kMaxDepth);
    s.stack[++s.depth] = comp;
    if (PhaseHook hook = g_phaseHook.load(std::memory_order_relaxed))
        hook(comp, true);
}

void
popThreadComponent()
{
    auto &s = t_components;
    FASP_ASSERT(s.depth > 0);
    --s.depth;
    if (PhaseHook hook = g_phaseHook.load(std::memory_order_relaxed))
        hook(s.stack[s.depth], false);
}

void
setPhaseHook(PhaseHook hook)
{
    g_phaseHook.store(hook, std::memory_order_relaxed);
}

} // namespace detail

const char *
componentName(Component comp)
{
    switch (comp) {
      case Component::None: return "none";
      case Component::Search: return "search";
      case Component::VolatileCopy: return "volatile-buffer-caching";
      case Component::InPlaceInsert: return "in-place-record-insert";
      case Component::UpdateSlotHeader: return "update-slot-header";
      case Component::FlushRecord: return "clflush(record)";
      case Component::Defrag: return "defragment(page)";
      case Component::NvwalCompute: return "nvwal-computation";
      case Component::HeapMgmt: return "heap-management";
      case Component::LogFlush: return "log-flush";
      case Component::WalIndex: return "wal-index";
      case Component::Checkpoint: return "checkpointing";
      case Component::Atomic64BWrite: return "atomic-64B-write";
      case Component::CommitMisc: return "misc";
      case Component::Recovery: return "recovery";
      case Component::SqlFrontend: return "sql-frontend";
      case Component::NumComponents: break;
    }
    return "?";
}

PhaseTracker::PhaseTracker()
{
    reset();
}

void
PhaseTracker::reset()
{
    stack_.fill(Component::None);
    depth_ = 0;
    lastMark_ = Clock::now();
    wallNs_.fill(0);
    modelNs_.fill(0);
    flushes_.fill(0);
    fences_.fill(0);
    readMisses_.fill(0);
    scopes_.fill(0);
}

void
PhaseTracker::settle()
{
    auto now = Clock::now();
    auto delta = std::chrono::duration_cast<std::chrono::nanoseconds>(
        now - lastMark_).count();
    wallNs_[topIndex()] += static_cast<std::uint64_t>(delta);
    lastMark_ = now;
}

void
PhaseTracker::push(Component comp)
{
    FASP_ASSERT(depth_ + 1 < kMaxDepth);
    settle();
    stack_[++depth_] = comp;
    scopes_[static_cast<std::size_t>(comp)]++;
}

void
PhaseTracker::pop()
{
    FASP_ASSERT(depth_ > 0);
    settle();
    --depth_;
}

std::uint64_t
PhaseTracker::wallNs(Component comp) const
{
    return wallNs_[static_cast<std::size_t>(comp)];
}

std::uint64_t
PhaseTracker::modelNs(Component comp) const
{
    return modelNs_[static_cast<std::size_t>(comp)];
}

std::uint64_t
PhaseTracker::totalNs(Component comp) const
{
    return wallNs(comp) + modelNs(comp);
}

std::uint64_t
PhaseTracker::flushCount(Component comp) const
{
    return flushes_[static_cast<std::size_t>(comp)];
}

std::uint64_t
PhaseTracker::fenceCount(Component comp) const
{
    return fences_[static_cast<std::size_t>(comp)];
}

std::uint64_t
PhaseTracker::readMissCount(Component comp) const
{
    return readMisses_[static_cast<std::size_t>(comp)];
}

std::uint64_t
PhaseTracker::scopeCount(Component comp) const
{
    return scopes_[static_cast<std::size_t>(comp)];
}

std::uint64_t
PhaseTracker::grandTotalNs() const
{
    std::uint64_t sum = 0;
    for (std::size_t i = 1; i < kNumComponents; ++i)
        sum += wallNs_[i] + modelNs_[i];
    return sum;
}

std::uint64_t
PhaseTracker::grandTotalFlushes() const
{
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < kNumComponents; ++i)
        sum += flushes_[i];
    return sum;
}

} // namespace fasp::pm
