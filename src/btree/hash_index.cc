#include "btree/hash_index.h"

#include <set>

#include "btree/btree.h"
#include "common/byte_io.h"
#include "common/logging.h"

namespace fasp::btree {

namespace {

using page::PageIO;
using page::PageType;
using page::RecordRef;

/** Guard for corrupt chains. */
constexpr std::size_t kMaxChain = 1u << 16;

/** Serialize a 12-byte (key, pid) payload. */
void
makePidPayload(std::uint64_t key, PageId pid, std::uint8_t out[12])
{
    storeU64(out, key);
    storeU32(out + 8, pid);
}

} // namespace

std::uint64_t
HashIndex::mix(std::uint64_t key)
{
    std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
    h ^= h >> 32;
    h *= 0xd6e8feb86659fd93ull;
    h ^= h >> 32;
    return h;
}

// --- Creation / registration --------------------------------------------------

Result<HashIndex>
HashIndex::create(TxPageIO &io, TreeId id, std::uint32_t buckets)
{
    if (buckets == 0 || (buckets & (buckets - 1)) != 0)
        return statusInvalid("bucket count must be a power of two");

    PageIO &global = io.page(io.directoryPid(), /*for_write=*/false);
    if (page::lowerBound(global, id).found)
        return statusAlreadyExists("index id already registered");

    auto dir_pid = io.allocPage();
    if (!dir_pid.isOk())
        return dir_pid.status();
    PageIO &dir = io.page(*dir_pid, /*for_write=*/true);
    page::init(dir, PageType::Internal, 0, kInvalidPageId,
               /*reserved_slots=*/0);

    for (std::uint32_t b = 0; b < buckets; ++b) {
        auto head = io.allocPage();
        if (!head.isOk())
            return head.status();
        PageIO &leaf = io.page(*head, /*for_write=*/true);
        page::init(leaf, PageType::Leaf, 0, kInvalidPageId,
                   io.maxLeafSlots());

        std::uint8_t payload[12];
        makePidPayload(b, *head, payload);
        Status status = page::insertRecord(
            dir, b, std::span<const std::uint8_t>(payload, 12));
        if (status.code() == StatusCode::PageFull) {
            return statusInvalid(
                "bucket directory exceeds one page; use fewer buckets");
        }
        FASP_RETURN_IF_ERROR(status);
    }

    std::uint8_t payload[12];
    makePidPayload(id, *dir_pid, payload);
    PageIO &globalw = io.page(io.directoryPid(), /*for_write=*/true);
    FASP_RETURN_IF_ERROR(page::insertRecord(
        globalw, id, std::span<const std::uint8_t>(payload, 12)));
    return HashIndex(id);
}

Result<HashIndex>
HashIndex::open(TxPageIO &io, TreeId id)
{
    PageIO &global = io.page(io.directoryPid(), /*for_write=*/false);
    if (!page::lowerBound(global, id).found)
        return statusNotFound("no such index");
    return HashIndex(id);
}

Result<PageId>
HashIndex::directoryPage(TxPageIO &io)
{
    PageIO &global = io.page(io.directoryPid(), /*for_write=*/false);
    auto sr = page::lowerBound(global, id_);
    if (!sr.found)
        return statusNotFound("index not in directory");
    return page::childPid(global, sr.slot);
}

Status
HashIndex::drop(TxPageIO &io, TreeId id)
{
    HashIndex index(id);
    auto dir_pid = index.directoryPage(io);
    if (!dir_pid.isOk())
        return dir_pid.status();

    PageIO &dir = io.page(*dir_pid, /*for_write=*/false);
    std::uint16_t nrec = page::numRecords(dir);
    for (std::uint16_t b = 0; b < nrec; ++b) {
        PageId pid = page::childPid(dir, b);
        std::size_t guard = 0;
        while (pid != kInvalidPageId && ++guard < kMaxChain) {
            PageIO &leaf = io.page(pid, /*for_write=*/false);
            PageId next = page::aux(leaf);
            io.freePage(pid);
            pid = next;
        }
    }
    io.freePage(*dir_pid);

    PageIO &globalw = io.page(io.directoryPid(), /*for_write=*/true);
    auto sr = page::lowerBound(globalw, id);
    if (!sr.found)
        return statusCorruption("index vanished from directory");
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::eraseRecord(globalw, sr.slot, &old_ref));
    io.deferReclaim(io.directoryPid(), old_ref);
    return Status::ok();
}

// --- Lookup helpers ------------------------------------------------------------

Result<HashIndex::Bucket>
HashIndex::bucketFor(TxPageIO &io, PageId dir_pid, std::uint64_t key)
{
    PageIO &dir = io.page(dir_pid, /*for_write=*/false);
    std::uint16_t buckets = page::numRecords(dir);
    if (buckets == 0)
        return statusCorruption("empty bucket directory");
    Bucket bucket;
    bucket.index =
        static_cast<std::uint32_t>(mix(key) & (buckets - 1));
    auto sr = page::lowerBound(dir, bucket.index);
    if (!sr.found)
        return statusCorruption("bucket record missing");
    bucket.slot = sr.slot;
    bucket.head = page::childPid(dir, sr.slot);
    return bucket;
}

Result<HashIndex::Location>
HashIndex::find(TxPageIO &io, const Bucket &bucket, std::uint64_t key)
{
    pm::PhaseScope phase(io.tracker(), pm::Component::Search);
    Location loc{kInvalidPageId, 0, false};
    PageId pid = bucket.head;
    std::size_t guard = 0;
    while (pid != kInvalidPageId) {
        if (++guard > kMaxChain)
            return statusCorruption("hash chain cycle");
        PageIO &leaf = io.page(pid, /*for_write=*/false);
        auto sr = page::lowerBound(leaf, key);
        if (sr.found) {
            loc.pid = pid;
            loc.slot = sr.slot;
            loc.found = true;
            return loc;
        }
        pid = page::aux(leaf);
    }
    return loc;
}

// --- Mutations -------------------------------------------------------------------

Status
HashIndex::insert(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value)
{
    if (value.size() > BTree::maxInlineValue(io.pageSize())) {
        return Status(StatusCode::NotSupported,
                      "hash index values must fit inline");
    }
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    FASP_ASSIGN_OR_RETURN(Bucket bucket, bucketFor(io, dir_pid, key));
    FASP_ASSIGN_OR_RETURN(Location loc, find(io, bucket, key));
    if (loc.found)
        return statusAlreadyExists("duplicate key");

    std::vector<std::uint8_t> payload(8 + value.size());
    storeU64(payload.data(), key);
    std::copy(value.begin(), value.end(), payload.begin() + 8);
    auto payload_len = static_cast<std::uint16_t>(payload.size());

    pm::PhaseScope phase(io.tracker(), io.mutationComponent());

    // First chain page with room wins; remember a defraggable one.
    PageId pid = bucket.head;
    PageId prev = kInvalidPageId;
    PageId defrag_candidate = kInvalidPageId;
    PageId defrag_prev = kInvalidPageId;
    std::size_t guard = 0;
    while (pid != kInvalidPageId && ++guard <= kMaxChain) {
        PageIO &leaf = io.page(pid, /*for_write=*/false);
        bool capped = io.maxLeafSlots() != 0 &&
                      page::numRecords(leaf) >= io.maxLeafSlots();
        if (!capped) {
            switch (page::checkFit(leaf, payload_len, true)) {
              case page::FitResult::Fits: {
                PageIO &lw = io.page(pid, /*for_write=*/true);
                return page::insertRecord(
                    lw, key, std::span<const std::uint8_t>(payload));
              }
              case page::FitResult::NeedsDefrag:
                if (defrag_candidate == kInvalidPageId) {
                    defrag_candidate = pid;
                    defrag_prev = prev;
                }
                break;
              case page::FitResult::NeedsSplit:
                break;
            }
        }
        prev = pid;
        pid = page::aux(leaf);
    }

    if (defrag_candidate != kInvalidPageId) {
        // Copy-on-write compaction (paper §4.3), repointing either the
        // predecessor's aux or the directory record — both atomic
        // header updates.
        pm::PhaseScope defrag_phase(io.tracker(),
                                    pm::Component::Defrag);
        auto fresh = io.allocPage();
        if (!fresh.isOk())
            return fresh.status();
        PageIO &src = io.page(defrag_candidate, /*for_write=*/false);
        PageIO &dst = io.page(*fresh, /*for_write=*/true);
        FASP_RETURN_IF_ERROR(page::defragmentInto(src, dst));

        if (defrag_prev == kInvalidPageId) {
            std::uint8_t dir_payload[12];
            makePidPayload(bucket.index, *fresh, dir_payload);
            PageIO &dirw = io.page(dir_pid, /*for_write=*/true);
            RecordRef old_ref{};
            FASP_RETURN_IF_ERROR(page::updateRecord(
                dirw, bucket.slot,
                std::span<const std::uint8_t>(dir_payload, 12),
                &old_ref));
            io.deferReclaim(dir_pid, old_ref);
        } else {
            PageIO &prevw = io.page(defrag_prev, /*for_write=*/true);
            page::setAux(prevw, *fresh);
        }
        io.freePage(defrag_candidate);

        PageIO &dst_again = io.page(*fresh, /*for_write=*/true);
        if (page::checkFit(dst_again, payload_len, true) ==
            page::FitResult::Fits) {
            return page::insertRecord(
                dst_again, key,
                std::span<const std::uint8_t>(payload));
        }
        // Fall through: even compacted it will not fit; grow the chain.
    }

    // Grow the chain: fresh page prepended with one directory-record
    // update (a single atomic slot redirect).
    auto fresh = io.allocPage();
    if (!fresh.isOk())
        return fresh.status();
    PageIO &leaf = io.page(*fresh, /*for_write=*/true);
    page::init(leaf, PageType::Leaf, 0, bucket.head,
               io.maxLeafSlots());
    FASP_RETURN_IF_ERROR(page::insertRecord(
        leaf, key, std::span<const std::uint8_t>(payload)));

    std::uint8_t dir_payload[12];
    makePidPayload(bucket.index, *fresh, dir_payload);
    PageIO &dirw = io.page(dir_pid, /*for_write=*/true);
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::updateRecord(
        dirw, bucket.slot,
        std::span<const std::uint8_t>(dir_payload, 12), &old_ref));
    io.deferReclaim(dir_pid, old_ref);
    return Status::ok();
}

Status
HashIndex::update(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value)
{
    if (value.size() > BTree::maxInlineValue(io.pageSize())) {
        return Status(StatusCode::NotSupported,
                      "hash index values must fit inline");
    }
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    FASP_ASSIGN_OR_RETURN(Bucket bucket, bucketFor(io, dir_pid, key));
    FASP_ASSIGN_OR_RETURN(Location loc, find(io, bucket, key));
    if (!loc.found)
        return statusNotFound("update: missing key");

    std::vector<std::uint8_t> payload(8 + value.size());
    storeU64(payload.data(), key);
    std::copy(value.begin(), value.end(), payload.begin() + 8);

    pm::PhaseScope phase(io.tracker(), io.mutationComponent());
    PageIO &view = io.page(loc.pid, /*for_write=*/false);
    if (page::checkFit(view,
                       static_cast<std::uint16_t>(payload.size()),
                       /*needs_new_slot=*/false) ==
        page::FitResult::Fits) {
        PageIO &lw = io.page(loc.pid, /*for_write=*/true);
        RecordRef old_ref{};
        FASP_RETURN_IF_ERROR(page::updateRecord(
            lw, loc.slot, std::span<const std::uint8_t>(payload),
            &old_ref));
        io.deferReclaim(loc.pid, old_ref);
        return Status::ok();
    }

    // No room in place: move the record (erase + reinsert may land on
    // another chain page; the multi-page case simply commits through
    // the slot-header log).
    PageIO &lw = io.page(loc.pid, /*for_write=*/true);
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::eraseRecord(lw, loc.slot, &old_ref));
    io.deferReclaim(loc.pid, old_ref);
    return insert(io, key, value);
}

Status
HashIndex::get(TxPageIO &io, std::uint64_t key,
               std::vector<std::uint8_t> &value)
{
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    FASP_ASSIGN_OR_RETURN(Bucket bucket, bucketFor(io, dir_pid, key));
    FASP_ASSIGN_OR_RETURN(Location loc, find(io, bucket, key));
    if (!loc.found)
        return statusNotFound("key not found");
    PageIO &leaf = io.page(loc.pid, /*for_write=*/false);
    std::vector<std::uint8_t> payload;
    page::readPayload(leaf, loc.slot, payload);
    value.assign(payload.begin() + 8, payload.end());
    return Status::ok();
}

Result<bool>
HashIndex::contains(TxPageIO &io, std::uint64_t key)
{
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    FASP_ASSIGN_OR_RETURN(Bucket bucket, bucketFor(io, dir_pid, key));
    FASP_ASSIGN_OR_RETURN(Location loc, find(io, bucket, key));
    return loc.found;
}

Status
HashIndex::erase(TxPageIO &io, std::uint64_t key)
{
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    FASP_ASSIGN_OR_RETURN(Bucket bucket, bucketFor(io, dir_pid, key));
    FASP_ASSIGN_OR_RETURN(Location loc, find(io, bucket, key));
    if (!loc.found)
        return statusNotFound("erase: missing key");
    pm::PhaseScope phase(io.tracker(), io.mutationComponent());
    PageIO &lw = io.page(loc.pid, /*for_write=*/true);
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::eraseRecord(lw, loc.slot, &old_ref));
    io.deferReclaim(loc.pid, old_ref);
    return Status::ok();
}

// --- Iteration / stats -----------------------------------------------------------

Status
HashIndex::forEach(TxPageIO &io,
                   const std::function<bool(
                       std::uint64_t,
                       std::span<const std::uint8_t>)> &fn)
{
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    PageIO &dir = io.page(dir_pid, /*for_write=*/false);
    std::uint16_t buckets = page::numRecords(dir);
    std::vector<std::uint8_t> payload;
    for (std::uint16_t b = 0; b < buckets; ++b) {
        PageId pid = page::childPid(dir, b);
        std::size_t guard = 0;
        while (pid != kInvalidPageId && ++guard <= kMaxChain) {
            PageIO &leaf = io.page(pid, /*for_write=*/false);
            std::uint16_t nrec = page::numRecords(leaf);
            for (std::uint16_t i = 0; i < nrec; ++i) {
                std::uint64_t key = page::recordKey(leaf, i);
                page::readPayload(leaf, i, payload);
                if (!fn(key, std::span<const std::uint8_t>(
                                 payload.data() + 8,
                                 payload.size() - 8))) {
                    return Status::ok();
                }
            }
            pid = page::aux(leaf);
        }
    }
    return Status::ok();
}

Result<std::uint64_t>
HashIndex::count(TxPageIO &io)
{
    std::uint64_t n = 0;
    Status status =
        forEach(io, [&](std::uint64_t, std::span<const std::uint8_t>) {
            ++n;
            return true;
        });
    if (!status.isOk())
        return status;
    return n;
}

Result<HashStats>
HashIndex::stats(TxPageIO &io)
{
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    PageIO &dir = io.page(dir_pid, /*for_write=*/false);
    HashStats out;
    out.buckets = page::numRecords(dir);
    for (std::uint16_t b = 0; b < out.buckets; ++b) {
        PageId pid = page::childPid(dir, b);
        std::uint32_t chain = 0;
        std::size_t guard = 0;
        while (pid != kInvalidPageId && ++guard <= kMaxChain) {
            PageIO &leaf = io.page(pid, /*for_write=*/false);
            out.records += page::numRecords(leaf);
            ++chain;
            pid = page::aux(leaf);
        }
        out.pages += chain;
        out.longestChain = std::max(out.longestChain, chain);
    }
    return out;
}

Status
HashIndex::checkIntegrity(TxPageIO &io)
{
    FASP_ASSIGN_OR_RETURN(PageId dir_pid, directoryPage(io));
    PageIO &dir = io.page(dir_pid, /*for_write=*/false);
    FASP_RETURN_IF_ERROR(page::checkIntegrity(dir));

    std::uint16_t buckets = page::numRecords(dir);
    if (buckets == 0 || (buckets & (buckets - 1)) != 0)
        return statusCorruption("bucket count not a power of two");

    for (std::uint16_t b = 0; b < buckets; ++b) {
        if (page::recordKey(dir, b) != b)
            return statusCorruption("bucket directory keys not dense");
        std::set<std::uint64_t> seen;
        PageId pid = page::childPid(dir, b);
        std::size_t guard = 0;
        while (pid != kInvalidPageId) {
            if (++guard > kMaxChain)
                return statusCorruption("hash chain cycle");
            PageIO &leaf = io.page(pid, /*for_write=*/false);
            FASP_RETURN_IF_ERROR(page::checkIntegrity(leaf));
            if (page::pageType(leaf) != PageType::Leaf)
                return statusCorruption("chain page has wrong type");
            std::uint16_t nrec = page::numRecords(leaf);
            for (std::uint16_t i = 0; i < nrec; ++i) {
                std::uint64_t key = page::recordKey(leaf, i);
                if ((mix(key) & (buckets - 1)) != b)
                    return statusCorruption("record in wrong bucket");
                if (!seen.insert(key).second)
                    return statusCorruption("duplicate key in bucket");
            }
            pid = page::aux(leaf);
        }
    }
    return Status::ok();
}

} // namespace fasp::btree
