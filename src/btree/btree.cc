#include "btree/btree.h"

#include <algorithm>

#include "common/byte_io.h"
#include "common/logging.h"

namespace fasp::btree {

namespace {

using page::FitResult;
using page::PageIO;
using page::PageType;
using page::RecordRef;

/** Leaf payload kind byte. */
constexpr std::uint8_t kInline = 0;
constexpr std::uint8_t kOverflowRef = 1;

/** Maximum descent depth guard. */
constexpr std::size_t kMaxDepth = 64;

/** Bytes of overflow-page data per page: [u32 next][u32 len][data]. */
std::size_t
overflowCapacity(std::size_t page_size)
{
    return page_size - 8;
}

/** Serialize an internal record payload (separator, child). */
void
makeChildPayload(std::uint64_t key, PageId child, std::uint8_t out[12])
{
    storeU64(out, key);
    storeU32(out + 8, child);
}

/**
 * Adaptive slot-array reservation for a fresh page expected to start
 * with @p nrec records: current occupancy plus 50% headroom. Pages
 * holding similar-sized records then never strand free blocks behind
 * an unexpandable slot array (which would force extra copy-on-write
 * defragmentation); the cost is ~2 reserved bytes per anticipated
 * record.
 */
std::uint16_t
adaptiveReserve(std::uint16_t nrec)
{
    return static_cast<std::uint16_t>(nrec + nrec / 2 + 4);
}

} // namespace

// --- Creation / directory maintenance --------------------------------------

Result<BTree>
BTree::create(TxPageIO &io, TreeId id)
{
    PageIO &dir = io.page(io.directoryPid(), /*for_write=*/false);
    if (page::lowerBound(dir, id).found)
        return statusAlreadyExists("tree exists");

    auto root = io.allocPage();
    if (!root.isOk())
        return root.status();
    PageIO &root_io = io.page(*root, /*for_write=*/true);
    page::init(root_io, PageType::Leaf, 0, kInvalidPageId,
               io.maxLeafSlots() != 0 ? io.maxLeafSlots()
                                      : adaptiveReserve(0));

    std::uint8_t payload[12];
    makeChildPayload(id, *root, payload);
    PageIO &dirw = io.page(io.directoryPid(), /*for_write=*/true);
    Status status = page::insertRecord(
        dirw, id, std::span<const std::uint8_t>(payload, 12));
    if (!status.isOk())
        return status;
    return BTree(id);
}

Result<BTree>
BTree::open(TxPageIO &io, TreeId id)
{
    PageIO &dir = io.page(io.directoryPid(), /*for_write=*/false);
    if (!page::lowerBound(dir, id).found)
        return statusNotFound("no such tree");
    return BTree(id);
}

Result<PageId>
BTree::rootPid(TxPageIO &io)
{
    PageIO &dir = io.page(io.directoryPid(), /*for_write=*/false);
    auto sr = page::lowerBound(dir, id_);
    if (!sr.found)
        return statusNotFound("tree not in directory");
    return page::childPid(dir, sr.slot);
}

Status
BTree::setRoot(TxPageIO &io, PageId new_root)
{
    PageIO &dir = io.page(io.directoryPid(), /*for_write=*/true);
    auto sr = page::lowerBound(dir, id_);
    if (!sr.found)
        return statusCorruption("tree missing from directory");
    std::uint8_t payload[12];
    makeChildPayload(id_, new_root, payload);
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::updateRecord(
        dir, sr.slot, std::span<const std::uint8_t>(payload, 12),
        &old_ref));
    io.deferReclaim(io.directoryPid(), old_ref);
    return Status::ok();
}

Status
BTree::drop(TxPageIO &io, TreeId id)
{
    BTree tree(id);
    auto root = tree.rootPid(io);
    if (!root.isOk())
        return root.status();

    // Free every page bottom-up (iterative stack walk).
    std::vector<PageId> stack{*root};
    std::vector<std::uint8_t> payload;
    while (!stack.empty()) {
        PageId pid = stack.back();
        stack.pop_back();
        PageIO &view = io.page(pid, /*for_write=*/false);
        std::uint16_t nrec = page::numRecords(view);
        if (page::level(view) > 0) {
            for (std::uint16_t i = 0; i < nrec; ++i)
                stack.push_back(page::childPid(view, i));
            if (page::aux(view) != kInvalidPageId)
                stack.push_back(page::aux(view));
        } else {
            for (std::uint16_t i = 0; i < nrec; ++i) {
                page::readPayload(view, i, payload);
                tree.releaseOverflow(
                    io, std::span<const std::uint8_t>(payload));
            }
        }
        io.freePage(pid);
    }

    PageIO &dir = io.page(io.directoryPid(), /*for_write=*/true);
    auto sr = page::lowerBound(dir, id);
    if (!sr.found)
        return statusCorruption("tree missing from directory");
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::eraseRecord(dir, sr.slot, &old_ref));
    io.deferReclaim(io.directoryPid(), old_ref);
    return Status::ok();
}

// --- Descent ---------------------------------------------------------------

Status
BTree::descend(TxPageIO &io, std::uint64_t key, Path &path)
{
    // Root-to-leaf traversal: the paper's "Search" component (Fig. 6).
    pm::PhaseScope phase(io.tracker(), pm::Component::Search);
    path.clear();
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();
    PageId pid = *root;
    while (true) {
        if (path.size() > kMaxDepth)
            return statusCorruption("descent too deep (cycle?)");
        path.push_back(pid);
        PageIO &view = io.page(pid, /*for_write=*/false);
        if (page::level(view) == 0)
            return Status::ok();
        auto sr = page::lowerBound(view, key);
        if (sr.slot < page::numRecords(view)) {
            pid = page::childPid(view, sr.slot);
        } else {
            pid = page::aux(view);
            if (pid == kInvalidPageId)
                return statusCorruption("internal page missing aux");
        }
    }
}

// --- Overflow chains --------------------------------------------------------

Status
BTree::buildLeafPayload(TxPageIO &io, std::uint64_t key,
                        std::span<const std::uint8_t> value,
                        std::vector<std::uint8_t> &payload)
{
    if (value.size() <= maxInlineValue(io.pageSize())) {
        payload.resize(9 + value.size());
        storeU64(payload.data(), key);
        payload[8] = kInline;
        std::copy(value.begin(), value.end(), payload.begin() + 9);
        return Status::ok();
    }

    // Spill to an overflow chain: [u32 next][u32 len][data] per page.
    const std::size_t cap = overflowCapacity(io.pageSize());
    std::size_t npages = (value.size() + cap - 1) / cap;
    std::vector<PageId> pids(npages);
    for (std::size_t i = 0; i < npages; ++i) {
        auto pid = io.allocPage();
        if (!pid.isOk())
            return pid.status();
        pids[i] = *pid;
    }
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < npages; ++i) {
        PageIO &ovfl = io.page(pids[i], /*for_write=*/true);
        std::uint32_t next =
            i + 1 < npages ? pids[i + 1] : kInvalidPageId;
        std::size_t chunk = std::min(cap, value.size() - cursor);
        std::uint8_t head[8];
        storeU32(head, next);
        storeU32(head + 4, static_cast<std::uint32_t>(chunk));
        ovfl.writeContent(0, head, 8);
        ovfl.writeContent(8, value.data() + cursor, chunk);
        cursor += chunk;
    }

    payload.resize(9 + 8);
    storeU64(payload.data(), key);
    payload[8] = kOverflowRef;
    storeU32(payload.data() + 9, pids[0]);
    storeU32(payload.data() + 13,
             static_cast<std::uint32_t>(value.size()));
    return Status::ok();
}

Status
BTree::readLeafPayload(TxPageIO &io,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t> &value)
{
    if (payload.size() < 9)
        return statusCorruption("leaf payload too short");
    if (payload[8] == kInline) {
        value.assign(payload.begin() + 9, payload.end());
        return Status::ok();
    }
    if (payload[8] != kOverflowRef || payload.size() < 17)
        return statusCorruption("bad leaf payload kind");

    PageId pid = loadU32(payload.data() + 9);
    std::uint32_t total = loadU32(payload.data() + 13);
    value.clear();
    value.reserve(total);
    std::size_t guard = 0;
    const std::size_t max_pages =
        total / overflowCapacity(io.pageSize()) + 2;
    while (pid != kInvalidPageId) {
        if (++guard > max_pages)
            return statusCorruption("overflow chain too long");
        PageIO &ovfl = io.page(pid, /*for_write=*/false);
        std::uint8_t head[8];
        ovfl.readContent(0, head, 8);
        std::uint32_t next = loadU32(head);
        std::uint32_t len = loadU32(head + 4);
        if (len > overflowCapacity(io.pageSize()))
            return statusCorruption("overflow chunk too large");
        std::size_t old = value.size();
        value.resize(old + len);
        ovfl.readContent(8, value.data() + old, len);
        pid = next;
    }
    if (value.size() != total)
        return statusCorruption("overflow length mismatch");
    return Status::ok();
}

void
BTree::releaseOverflow(TxPageIO &io,
                       std::span<const std::uint8_t> payload)
{
    if (payload.size() < 17 || payload[8] != kOverflowRef)
        return;
    PageId pid = loadU32(payload.data() + 9);
    std::uint32_t total = loadU32(payload.data() + 13);
    std::size_t guard = 0;
    const std::size_t max_pages =
        total / overflowCapacity(io.pageSize()) + 2;
    while (pid != kInvalidPageId && ++guard <= max_pages) {
        PageIO &ovfl = io.page(pid, /*for_write=*/false);
        std::uint8_t head[4];
        ovfl.readContent(0, head, 4);
        io.freePage(pid);
        pid = loadU32(head);
    }
}
// --- Space making -----------------------------------------------------------

Result<PageId>
BTree::descendToLevel(TxPageIO &io, std::uint64_t key,
                      std::uint16_t target_level)
{
    pm::PhaseScope phase(io.tracker(), pm::Component::Search);
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();
    PageId pid = *root;
    for (std::size_t depth = 0; depth <= kMaxDepth; ++depth) {
        PageIO &view = io.page(pid, /*for_write=*/false);
        std::uint16_t lvl = page::level(view);
        if (lvl == target_level)
            return pid;
        if (lvl < target_level)
            return statusCorruption("descendToLevel overshot");
        auto sr = page::lowerBound(view, key);
        if (sr.slot < page::numRecords(view)) {
            pid = page::childPid(view, sr.slot);
        } else {
            pid = page::aux(view);
            if (pid == kInvalidPageId)
                return statusCorruption("internal page missing aux");
        }
    }
    return statusCorruption("descendToLevel too deep");
}

Result<PageId>
BTree::findParentOf(TxPageIO &io, PageId target)
{
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();
    std::vector<PageId> stack{*root};
    std::size_t visited = 0;
    while (!stack.empty()) {
        PageId pid = stack.back();
        stack.pop_back();
        if (++visited > 1u << 24)
            return statusCorruption("findParentOf: cycle");
        PageIO &view = io.page(pid, /*for_write=*/false);
        if (page::level(view) == 0)
            continue;
        std::uint16_t nrec = page::numRecords(view);
        for (std::uint16_t i = 0; i < nrec; ++i) {
            PageId child = page::childPid(view, i);
            if (child == target)
                return pid;
            stack.push_back(child);
        }
        PageId aux_child = page::aux(view);
        if (aux_child == target)
            return pid;
        if (aux_child != kInvalidPageId)
            stack.push_back(aux_child);
    }
    return statusNotFound("page has no parent");
}

Status
BTree::repointChild(TxPageIO &io, PageId old_pid, PageId new_pid)
{
    for (int attempt = 0; attempt < 8; ++attempt) {
        auto root = rootPid(io);
        if (!root.isOk())
            return root.status();
        if (*root == old_pid)
            return setRoot(io, new_pid);

        auto parent = findParentOf(io, old_pid);
        if (!parent.isOk())
            return parent.status();
        PageIO &view = io.page(*parent, /*for_write=*/false);

        if (page::aux(view) == old_pid) {
            PageIO &pw = io.page(*parent, /*for_write=*/true);
            page::setAux(pw, new_pid);
            return Status::ok();
        }
        std::uint16_t nrec = page::numRecords(view);
        std::uint16_t slot = nrec;
        for (std::uint16_t i = 0; i < nrec; ++i) {
            if (page::childPid(view, i) == old_pid) {
                slot = i;
                break;
            }
        }
        if (slot == nrec)
            return statusCorruption("repointChild: pointer missing");

        // The replacement pointer record goes into parent free space
        // (paper §4.3: "we update the pointer to the fragmented page
        // in its parent page"); make room first if needed.
        if (page::checkFit(view, 12, /*needs_new_slot=*/false) !=
            page::FitResult::Fits) {
            FASP_RETURN_IF_ERROR(
                makeRoom(io, *parent, 12, /*needs_new_slot=*/false,
                         page::recordKey(view, slot)));
            continue; // the parent may have moved or split: retry
        }
        std::uint8_t payload[12];
        makeChildPayload(page::recordKey(view, slot), new_pid, payload);
        PageIO &pw = io.page(*parent, /*for_write=*/true);
        RecordRef old_ref{};
        FASP_RETURN_IF_ERROR(page::updateRecord(
            pw, slot, std::span<const std::uint8_t>(payload, 12),
            &old_ref));
        io.deferReclaim(*parent, old_ref);
        return Status::ok();
    }
    return statusCorruption("repointChild did not converge");
}

Status
BTree::defragPage(TxPageIO &io, PageId pid)
{
    // On-demand copy-on-write defragmentation (paper §4.3, Fig. 7
    // "defragment(page)").
    pm::PhaseScope phase(io.tracker(), pm::Component::Defrag);
    // Debug-only hook; reading the env is benign even if a setenv
    // raced it (worst case: one lost diagnostic line).
    if (getenv("FASP_DEBUG_DEFRAG")) { // NOLINT(concurrency-mt-unsafe)
        PageIO &dbg = io.page(pid, false);
        fprintf(stderr,
                "defrag pid=%u level=%u nrec=%u gap=%u frag=%u\n",
                pid, page::level(dbg), page::numRecords(dbg),
                page::freeGap(dbg), page::fragFree(dbg));
    }
    auto new_pid = io.allocPage();
    if (!new_pid.isOk())
        return new_pid.status();

    PageIO &src = io.page(pid, /*for_write=*/false);
    PageIO &dst = io.page(*new_pid, /*for_write=*/true);
    FASP_RETURN_IF_ERROR(page::defragmentInto(src, dst));

    FASP_RETURN_IF_ERROR(repointChild(io, pid, *new_pid));
    io.freePage(pid);
    return Status::ok();
}

Status
BTree::insertSeparator(TxPageIO &io, std::uint64_t separator,
                       PageId left_pid, PageId split_pid,
                       std::uint16_t child_level)
{
    std::uint8_t payload[12];
    makeChildPayload(separator, left_pid, payload);
    std::uint16_t parent_level =
        static_cast<std::uint16_t>(child_level + 1);

    for (int attempt = 0; attempt < 16; ++attempt) {
        auto root = rootPid(io);
        if (!root.isOk())
            return root.status();
        PageIO &root_view = io.page(*root, /*for_write=*/false);

        if (page::level(root_view) == child_level) {
            // The split page was the root: grow a new root whose aux
            // is the original (right) page.
            if (*root != split_pid) {
                return statusCorruption(
                    "root level equals child level but pid differs");
            }
            auto new_root = io.allocPage();
            if (!new_root.isOk())
                return new_root.status();
            PageIO &nr = io.page(*new_root, /*for_write=*/true);
            page::init(nr, PageType::Internal, parent_level,
                       split_pid);
            FASP_RETURN_IF_ERROR(page::insertRecord(
                nr, separator,
                std::span<const std::uint8_t>(payload, 12)));
            return setRoot(io, *new_root);
        }

        auto target = descendToLevel(io, separator, parent_level);
        if (!target.isOk())
            return target.status();
        PageIO &view = io.page(*target, /*for_write=*/false);
        switch (page::checkFit(view, 12, /*needs_new_slot=*/true)) {
          case page::FitResult::Fits: {
            PageIO &tw = io.page(*target, /*for_write=*/true);
            return page::insertRecord(
                tw, separator,
                std::span<const std::uint8_t>(payload, 12));
          }
          case page::FitResult::NeedsDefrag:
            FASP_RETURN_IF_ERROR(defragPage(io, *target));
            break;
          case page::FitResult::NeedsSplit:
            FASP_RETURN_IF_ERROR(splitPage(io, *target, separator));
            break;
        }
    }
    return statusCorruption("insertSeparator did not converge");
}

Status
BTree::splitPage(TxPageIO &io, PageId pid, std::uint64_t pending_key)
{
    PageIO &src = io.page(pid, /*for_write=*/false);
    std::uint16_t nrec = page::numRecords(src);
    if (nrec < 2)
        return statusPageFull("page too full to split (record size)");

    bool leaf = page::level(src) == 0;
    std::uint16_t level = page::level(src);
    std::uint16_t median = nrec / 2;
    std::uint16_t pos = page::lowerBound(src, pending_key).slot;
    std::uint64_t separator;
    std::uint16_t move_count;
    std::uint32_t left_aux;

    auto clamp = [&](std::uint16_t v) {
        return std::max<std::uint16_t>(
            1, std::min<std::uint16_t>(v, nrec - 1));
    };

    if (leaf) {
        // Figure 4 (1)-(3): the lower keys move to a new LEFT sibling;
        // the separator is the largest key moving left, so the parent
        // entry of the original page never changes. Taking at least
        // pos+1 records puts the pending key's slot into the fresh
        // sibling (Figure 4 inserts key 14 into the new page).
        move_count =
            pos < nrec ? clamp(std::max<std::uint16_t>(
                             median, static_cast<std::uint16_t>(
                                         pos + 1)))
                       : clamp(median);
        separator = page::recordKey(src, move_count - 1);
        left_aux = kInvalidPageId;
    } else {
        // Internal: slots [0, move_count) move left; the boundary
        // record's child becomes the left sibling's aux and its key is
        // promoted (not duplicated).
        move_count = clamp(std::max(median, pos));
        separator = page::recordKey(src, move_count);
        left_aux = page::childPid(src, move_count);
    }

    auto left_pid = io.allocPage();
    if (!left_pid.isOk())
        return left_pid.status();
    std::size_t moved_bytes = 0;
    for (std::uint16_t i = 0; i < move_count; ++i) {
        moved_bytes += page::record(src, i).payloadLen +
                       page::kRecordHeaderBytes + 1;
    }
    std::uint16_t reserve =
        leaf && io.maxLeafSlots() != 0
            ? io.maxLeafSlots()
            : page::clampReserve(io.pageSize(),
                                 adaptiveReserve(move_count),
                                 moved_bytes, move_count);
    PageIO &left = io.page(*left_pid, /*for_write=*/true);
    page::init(left, leaf ? PageType::Leaf : PageType::Internal, level,
               left_aux, reserve);

    std::vector<std::uint8_t> payload;
    for (std::uint16_t i = 0; i < move_count; ++i) {
        std::uint64_t key = page::recordKey(src, i);
        page::readPayload(src, i, payload);
        FASP_RETURN_IF_ERROR(page::insertRecord(
            left, key, std::span<const std::uint8_t>(payload)));
    }

    // Drop the migrated slots (and, for internal pages, the promoted
    // median record) from the original page's slot header. The record
    // bytes stay: they are the pre-commit recovery image.
    std::uint16_t drop_count =
        leaf ? move_count : static_cast<std::uint16_t>(move_count + 1);
    PageIO &srcw = io.page(pid, /*for_write=*/true);
    std::vector<RecordRef> dropped;
    FASP_RETURN_IF_ERROR(
        page::dropLowerSlots(srcw, drop_count, &dropped));
    for (const RecordRef &ref : dropped)
        io.deferReclaim(pid, ref);

    // Figure 4 (4)-(5): link the new left sibling into the parent.
    return insertSeparator(io, separator, *left_pid, pid, level);
}

Status
BTree::makeRoom(TxPageIO &io, PageId pid, std::uint16_t payload_len,
                bool needs_new_slot, std::uint64_t pending_key)
{
    PageIO &view = io.page(pid, /*for_write=*/false);
    switch (page::checkFit(view, payload_len, needs_new_slot)) {
      case page::FitResult::Fits:
        return Status::ok();
      case page::FitResult::NeedsDefrag:
        return defragPage(io, pid);
      case page::FitResult::NeedsSplit:
        return splitPage(io, pid, pending_key);
    }
    return statusCorruption("unreachable");
}
// --- Public operations -------------------------------------------------------

Status
BTree::insert(TxPageIO &io, std::uint64_t key,
              std::span<const std::uint8_t> value)
{
    {
        Path path;
        FASP_RETURN_IF_ERROR(descend(io, key, path));
        PageIO &leaf = io.page(path.back(), /*for_write=*/false);
        if (page::lowerBound(leaf, key).found)
            return statusAlreadyExists("duplicate key");
    }

    std::vector<std::uint8_t> payload;
    {
        pm::PhaseScope phase(io.tracker(), io.mutationComponent());
        FASP_RETURN_IF_ERROR(buildLeafPayload(io, key, value, payload));
    }

    for (int attempt = 0; attempt < 16; ++attempt) {
        Path path;
        FASP_RETURN_IF_ERROR(descend(io, key, path));
        PageId leaf_pid = path.back();
        pm::PhaseScope phase(io.tracker(), io.mutationComponent());
        PageIO &leaf = io.page(leaf_pid, /*for_write=*/false);
        // FAST caps leaf slot counts so the header always fits one
        // cache line (paper 4.2); split early once the cap is hit.
        bool slot_capped =
            io.maxLeafSlots() != 0 &&
            page::numRecords(leaf) >= io.maxLeafSlots();
        if (slot_capped) {
            FASP_RETURN_IF_ERROR(splitPage(io, leaf_pid, key));
            continue;
        }
        if (page::checkFit(leaf,
                           static_cast<std::uint16_t>(payload.size()),
                           /*needs_new_slot=*/true) ==
            FitResult::Fits) {
            PageIO &lw = io.page(leaf_pid, /*for_write=*/true);
            return page::insertRecord(
                lw, key, std::span<const std::uint8_t>(payload));
        }
        FASP_RETURN_IF_ERROR(makeRoom(
            io, leaf_pid, static_cast<std::uint16_t>(payload.size()),
            /*needs_new_slot=*/true, key));
    }
    return statusCorruption("insert did not converge");
}

Status
BTree::update(TxPageIO &io, std::uint64_t key,
              std::span<const std::uint8_t> value)
{
    // Capture the old payload (overflow chain to release on success).
    std::vector<std::uint8_t> old_payload;
    {
        Path path;
        FASP_RETURN_IF_ERROR(descend(io, key, path));
        PageIO &leaf = io.page(path.back(), /*for_write=*/false);
        auto sr = page::lowerBound(leaf, key);
        if (!sr.found)
            return statusNotFound("update: missing key");
        page::readPayload(leaf, sr.slot, old_payload);
    }

    std::vector<std::uint8_t> payload;
    {
        pm::PhaseScope phase(io.tracker(), io.mutationComponent());
        FASP_RETURN_IF_ERROR(buildLeafPayload(io, key, value, payload));
    }

    for (int attempt = 0; attempt < 16; ++attempt) {
        Path path;
        FASP_RETURN_IF_ERROR(descend(io, key, path));
        PageId leaf_pid = path.back();
        pm::PhaseScope phase(io.tracker(), io.mutationComponent());
        PageIO &leaf = io.page(leaf_pid, /*for_write=*/false);
        auto sr = page::lowerBound(leaf, key);
        if (!sr.found)
            return statusCorruption("key vanished during update");
        if (page::checkFit(leaf,
                           static_cast<std::uint16_t>(payload.size()),
                           /*needs_new_slot=*/false) ==
            FitResult::Fits) {
            PageIO &lw = io.page(leaf_pid, /*for_write=*/true);
            RecordRef old_ref{};
            FASP_RETURN_IF_ERROR(page::updateRecord(
                lw, sr.slot, std::span<const std::uint8_t>(payload),
                &old_ref));
            io.deferReclaim(leaf_pid, old_ref);
            releaseOverflow(
                io, std::span<const std::uint8_t>(old_payload));
            return Status::ok();
        }
        FASP_RETURN_IF_ERROR(makeRoom(
            io, leaf_pid, static_cast<std::uint16_t>(payload.size()),
            /*needs_new_slot=*/false, key));
    }
    return statusCorruption("update did not converge");
}

Status
BTree::upsert(TxPageIO &io, std::uint64_t key,
              std::span<const std::uint8_t> value)
{
    Status status = update(io, key, value);
    if (status.code() == StatusCode::NotFound)
        return insert(io, key, value);
    return status;
}

Status
BTree::get(TxPageIO &io, std::uint64_t key,
           std::vector<std::uint8_t> &value)
{
    Path path;
    FASP_RETURN_IF_ERROR(descend(io, key, path));
    PageIO &leaf = io.page(path.back(), /*for_write=*/false);
    auto sr = page::lowerBound(leaf, key);
    if (!sr.found)
        return statusNotFound("key not found");
    std::vector<std::uint8_t> payload;
    page::readPayload(leaf, sr.slot, payload);
    return readLeafPayload(io, std::span<const std::uint8_t>(payload),
                           value);
}

Result<bool>
BTree::contains(TxPageIO &io, std::uint64_t key)
{
    Path path;
    Status status = descend(io, key, path);
    if (!status.isOk())
        return status;
    PageIO &leaf = io.page(path.back(), /*for_write=*/false);
    return page::lowerBound(leaf, key).found;
}

Status
BTree::erase(TxPageIO &io, std::uint64_t key)
{
    Path path;
    FASP_RETURN_IF_ERROR(descend(io, key, path));
    PageId leaf_pid = path.back();
    PageIO &leaf = io.page(leaf_pid, /*for_write=*/false);
    auto sr = page::lowerBound(leaf, key);
    if (!sr.found)
        return statusNotFound("erase: missing key");

    std::vector<std::uint8_t> payload;
    page::readPayload(leaf, sr.slot, payload);

    pm::PhaseScope phase(io.tracker(), io.mutationComponent());
    PageIO &lw = io.page(leaf_pid, /*for_write=*/true);
    RecordRef old_ref{};
    FASP_RETURN_IF_ERROR(page::eraseRecord(lw, sr.slot, &old_ref));
    io.deferReclaim(leaf_pid, old_ref);
    releaseOverflow(io, std::span<const std::uint8_t>(payload));
    if (page::numRecords(lw) == 0 && path.size() > 1)
        FASP_RETURN_IF_ERROR(pruneEmptyLeaf(io, path));
    return Status::ok();
}

Status
BTree::pruneEmptyLeaf(TxPageIO &io, const Path &path)
{
    // Unlink pages bottom-up along the descent path while they are
    // empty; collapse a separator-less internal root onto its child.
    for (std::size_t depth = path.size(); depth-- > 1;) {
        PageId child = path[depth];
        PageId parent_pid = path[depth - 1];
        PageIO &child_view = io.page(child, /*for_write=*/false);
        if (page::numRecords(child_view) != 0)
            return Status::ok();
        if (page::level(child_view) > 0 &&
            page::aux(child_view) != kInvalidPageId) {
            // An internal page with an aux child still routes keys.
            break;
        }

        PageIO &parent = io.page(parent_pid, /*for_write=*/false);
        std::uint16_t nrec = page::numRecords(parent);
        if (page::aux(parent) == child) {
            if (nrec == 0) {
                // Parent becomes childless: continue pruning upward
                // after detaching (mark its aux invalid).
                PageIO &pw = io.page(parent_pid, /*for_write=*/true);
                page::setAux(pw, kInvalidPageId);
                io.freePage(child);
                continue;
            }
            // The last separator's child becomes the new aux; its
            // upper bound widens to the parent's, which is valid
            // because the freed child held no keys.
            PageId promoted = page::childPid(
                parent, static_cast<std::uint16_t>(nrec - 1));
            PageIO &pw = io.page(parent_pid, /*for_write=*/true);
            page::setAux(pw, promoted);
            RecordRef old_ref{};
            FASP_RETURN_IF_ERROR(page::eraseRecord(
                pw, static_cast<std::uint16_t>(nrec - 1), &old_ref));
            io.deferReclaim(parent_pid, old_ref);
            io.freePage(child);
        } else {
            std::uint16_t slot = nrec;
            for (std::uint16_t i = 0; i < nrec; ++i) {
                if (page::childPid(parent, i) == child) {
                    slot = i;
                    break;
                }
            }
            if (slot == nrec)
                return statusCorruption(
                    "empty child missing from parent");
            // Dropping slot i folds its (key-less) range into the
            // next child's range — upper bounds stay valid.
            PageIO &pw = io.page(parent_pid, /*for_write=*/true);
            RecordRef old_ref{};
            FASP_RETURN_IF_ERROR(
                page::eraseRecord(pw, slot, &old_ref));
            io.deferReclaim(parent_pid, old_ref);
            io.freePage(child);
        }

        // Root collapse: an internal root left with no separators and
        // only an aux child is replaced by that child.
        if (depth - 1 == 0) {
            PageIO &root_view = io.page(parent_pid,
                                        /*for_write=*/false);
            if (page::level(root_view) > 0 &&
                page::numRecords(root_view) == 0 &&
                page::aux(root_view) != kInvalidPageId) {
                PageId only_child = page::aux(root_view);
                FASP_RETURN_IF_ERROR(setRoot(io, only_child));
                io.freePage(parent_pid);
            }
        }
        break;
    }
    return Status::ok();
}

// --- Scans / aggregation -----------------------------------------------------

Status
BTree::scan(TxPageIO &io, std::uint64_t lo, std::uint64_t hi,
            const std::function<bool(
                std::uint64_t, std::span<const std::uint8_t>)> &fn)
{
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();

    // Iterative DFS carrying pages in reverse order on a stack.
    std::vector<PageId> stack{*root};
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> value;
    std::size_t visited = 0;

    while (!stack.empty()) {
        PageId pid = stack.back();
        stack.pop_back();
        if (++visited > 1u << 24)
            return statusCorruption("scan visited too many pages");
        PageIO &view = io.page(pid, /*for_write=*/false);
        std::uint16_t nrec = page::numRecords(view);

        if (page::level(view) > 0) {
            // Children that can intersect [lo, hi], pushed in reverse
            // so the stack pops them in ascending key order.
            std::uint16_t start = page::lowerBound(view, lo).slot;
            std::vector<PageId> children;
            for (std::uint16_t i = start; i < nrec; ++i) {
                children.push_back(page::childPid(view, i));
                if (page::recordKey(view, i) >= hi)
                    break;
            }
            bool include_aux =
                nrec == 0 || page::recordKey(view, nrec - 1) < hi;
            if (include_aux && page::aux(view) != kInvalidPageId)
                children.push_back(page::aux(view));
            for (auto it = children.rbegin(); it != children.rend();
                 ++it) {
                stack.push_back(*it);
            }
            continue;
        }

        std::uint16_t start = page::lowerBound(view, lo).slot;
        for (std::uint16_t i = start; i < nrec; ++i) {
            std::uint64_t key = page::recordKey(view, i);
            if (key > hi)
                return Status::ok();
            page::readPayload(view, i, payload);
            FASP_RETURN_IF_ERROR(readLeafPayload(
                io, std::span<const std::uint8_t>(payload), value));
            if (!fn(key, std::span<const std::uint8_t>(value)))
                return Status::ok();
        }
    }
    return Status::ok();
}

Result<std::uint64_t>
BTree::lowerBoundKey(TxPageIO &io, std::uint64_t key)
{
    std::uint64_t found_key = 0;
    bool found = false;
    Status status = scan(io, key, ~std::uint64_t{0},
                         [&](std::uint64_t k,
                             std::span<const std::uint8_t>) {
                             found_key = k;
                             found = true;
                             return false;
                         });
    if (!status.isOk())
        return status;
    if (!found)
        return statusNotFound("no key >= bound");
    return found_key;
}

Result<std::uint64_t>
BTree::maxKey(TxPageIO &io)
{
    // Rightmost descent: follow aux children to the last leaf.
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();
    PageId pid = *root;
    for (std::size_t depth = 0; depth <= kMaxDepth; ++depth) {
        PageIO &view = io.page(pid, /*for_write=*/false);
        std::uint16_t nrec = page::numRecords(view);
        if (page::level(view) == 0) {
            if (nrec == 0)
                return statusNotFound("tree is empty");
            return page::recordKey(view, nrec - 1);
        }
        pid = page::aux(view);
        if (pid == kInvalidPageId)
            return statusCorruption("internal page missing aux");
    }
    return statusCorruption("maxKey descent too deep");
}

Result<std::uint64_t>
BTree::count(TxPageIO &io)
{
    std::uint64_t n = 0;
    Status status =
        scan(io, 0, ~std::uint64_t{0},
             [&](std::uint64_t, std::span<const std::uint8_t>) {
                 ++n;
                 return true;
             });
    if (!status.isOk())
        return status;
    return n;
}

Result<TreeStats>
BTree::stats(TxPageIO &io)
{
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();
    TreeStats out;
    std::vector<std::pair<PageId, std::uint32_t>> stack{{*root, 1}};
    std::vector<std::uint8_t> payload;
    while (!stack.empty()) {
        auto [pid, depth] = stack.back();
        stack.pop_back();
        PageIO &view = io.page(pid, /*for_write=*/false);
        out.depth = std::max(out.depth, depth);
        std::uint16_t nrec = page::numRecords(view);
        if (page::level(view) > 0) {
            out.internalPages++;
            for (std::uint16_t i = 0; i < nrec; ++i)
                stack.push_back({page::childPid(view, i), depth + 1});
            if (page::aux(view) != kInvalidPageId)
                stack.push_back({page::aux(view), depth + 1});
        } else {
            out.leafPages++;
            out.records += nrec;
            for (std::uint16_t i = 0; i < nrec; ++i) {
                page::readPayload(view, i, payload);
                if (payload.size() >= 17 &&
                    payload[8] == kOverflowRef) {
                    std::uint32_t total = loadU32(payload.data() + 13);
                    out.overflowPages += static_cast<std::uint32_t>(
                        (total + overflowCapacity(io.pageSize()) - 1) /
                        overflowCapacity(io.pageSize()));
                }
            }
        }
    }
    return out;
}

// --- Integrity ---------------------------------------------------------------

Status
BTree::checkSubtree(TxPageIO &io, PageId pid, std::uint16_t expect_level,
                    std::uint64_t lo, bool has_lo, std::uint64_t hi,
                    bool has_hi, std::uint32_t *leaf_depth,
                    std::uint32_t depth)
{
    if (depth > kMaxDepth)
        return statusCorruption("tree too deep");
    PageIO &view = io.page(pid, /*for_write=*/false);
    FASP_RETURN_IF_ERROR(page::checkIntegrity(view));
    if (page::level(view) != expect_level)
        return statusCorruption("level mismatch");

    std::uint16_t nrec = page::numRecords(view);
    for (std::uint16_t i = 0; i < nrec; ++i) {
        std::uint64_t key = page::recordKey(view, i);
        if (has_lo && key <= lo)
            return statusCorruption("key below subtree range");
        if (has_hi && key > hi)
            return statusCorruption("key above subtree range");
    }

    if (page::level(view) == 0) {
        if (*leaf_depth == 0)
            *leaf_depth = depth;
        else if (*leaf_depth != depth)
            return statusCorruption("leaves at unequal depth");
        // Overflow chains must be readable.
        std::vector<std::uint8_t> payload;
        std::vector<std::uint8_t> value;
        for (std::uint16_t i = 0; i < nrec; ++i) {
            page::readPayload(view, i, payload);
            FASP_RETURN_IF_ERROR(readLeafPayload(
                io, std::span<const std::uint8_t>(payload), value));
        }
        return Status::ok();
    }

    if (page::aux(view) == kInvalidPageId)
        return statusCorruption("internal page missing aux child");

    std::uint64_t prev = lo;
    bool have_prev = has_lo;
    for (std::uint16_t i = 0; i < nrec; ++i) {
        std::uint64_t sep = page::recordKey(view, i);
        FASP_RETURN_IF_ERROR(checkSubtree(
            io, page::childPid(view, i),
            static_cast<std::uint16_t>(expect_level - 1), prev,
            have_prev, sep, true, leaf_depth, depth + 1));
        prev = sep;
        have_prev = true;
    }
    return checkSubtree(io, page::aux(view),
                        static_cast<std::uint16_t>(expect_level - 1),
                        prev, have_prev, hi, has_hi, leaf_depth,
                        depth + 1);
}

Status
BTree::checkIntegrity(TxPageIO &io)
{
    auto root = rootPid(io);
    if (!root.isOk())
        return root.status();
    PageIO &view = io.page(*root, /*for_write=*/false);
    std::uint32_t leaf_depth = 0;
    return checkSubtree(io, *root, page::level(view), 0, false, 0,
                        false, &leaf_depth, 1);
}

} // namespace fasp::btree
