/**
 * @file
 * TxPageIO: the per-transaction page-access provider the B-tree
 * operates through.
 *
 * The B-tree code is engine-agnostic: FAST/FASH back this interface
 * with PM-direct content writes + volatile shadow headers, while
 * NVWAL / journal / legacy WAL back it with volatile buffer-cache
 * copies. Page allocation and extent reclamation are transactional, so
 * they are routed through the provider too.
 */

#ifndef FASP_BTREE_TX_PAGE_IO_H
#define FASP_BTREE_TX_PAGE_IO_H

#include "common/status.h"
#include "common/types.h"
#include "page/page_io.h"
#include "page/slotted_page.h"
#include "pm/phase.h"

namespace fasp::btree {

/** See file comment. */
class TxPageIO
{
  public:
    virtual ~TxPageIO() = default;

    /** Page size of the underlying database. */
    virtual std::size_t pageSize() const = 0;

    /**
     * Access page @p pid. The returned view lives until the
     * transaction ends.
     *
     * @param for_write the caller is about to mutate the page; the
     *        provider registers it dirty (shadow header / buffer-cache
     *        dirty flag).
     */
    virtual page::PageIO &page(PageId pid, bool for_write) = 0;

    /**
     * Allocate a fresh zeroed page. For the PM engines the page is
     * write-through (it is unreachable until the transaction commits
     * the pointer to it); the allocation itself commits with the
     * transaction.
     */
    virtual Result<PageId> allocPage() = 0;

    /** Schedule @p pid to be freed when the transaction commits. */
    virtual void freePage(PageId pid) = 0;

    /**
     * Schedule the record extent @p ref on @p pid for post-commit
     * reclamation onto the page's intra-page free list. The bytes must
     * stay untouched until commit (they are the recovery image).
     */
    virtual void deferReclaim(PageId pid, const page::RecordRef &ref) = 0;

    /** Directory page holding tree-id -> root-pid records. */
    virtual PageId directoryPid() const = 0;

    /** Phase tracker for breakdown accounting (may be null). */
    virtual pm::PhaseTracker *tracker() const { return nullptr; }

    /**
     * Component to charge record-mutation work to: InPlaceInsert for
     * the PM engines (records land directly in PM free space),
     * VolatileCopy for the buffer-cache engines (paper Figure 7).
     */
    virtual pm::Component mutationComponent() const
    {
        return pm::Component::InPlaceInsert;
    }

    /**
     * Leaf-page slot-count cap, 0 = unlimited. FAST restricts leaf
     * slot headers to one cache line so the in-place commit's atomic
     * write always suffices (paper §4.2: at most (64-12)/2 records per
     * leaf); pages split early once they reach the cap.
     */
    virtual std::uint16_t maxLeafSlots() const { return 0; }
};

} // namespace fasp::btree

#endif // FASP_BTREE_TX_PAGE_IO_H
