/**
 * @file
 * HashIndex: a persistent hash-based index over the same failure-
 * atomic slotted pages as the B+-tree.
 *
 * The paper argues its slotted-page optimization "can be used not only
 * for B+-trees (or any of its variants) but also for other hash-based
 * indexes" (Section 2.2). This class demonstrates that claim: a
 * fixed-size bucket directory maps hash(key) to a chain of slotted
 * leaf pages (chained via the pages' aux field). Every mutation is the
 * same record-in-free-space + slot-header-commit pattern, so FAST's
 * in-place commit and FASH's slot-header logging apply unchanged —
 * a single-record insert into a hash bucket commits with one atomic
 * header write, exactly like a B-tree leaf insert.
 *
 * Design notes:
 *  - The bucket directory is itself a slotted page (records =
 *    bucket index -> chain head pid), so directory updates are as
 *    failure-atomic as any other page update.
 *  - Bucket chains grow by prepending a fresh page (one directory
 *    record update — atomic); there is no rehashing. Choose the
 *    bucket count for the expected population; the directory must fit
 *    one page (~250 buckets at 4 KiB).
 *  - Values must fit inline (<= BTree::maxInlineValue); hash records
 *    do not use overflow chains.
 */

#ifndef FASP_BTREE_HASH_INDEX_H
#define FASP_BTREE_HASH_INDEX_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "btree/tx_page_io.h"
#include "common/status.h"
#include "common/types.h"

namespace fasp::btree {

/** Structural statistics of a hash index. */
struct HashStats
{
    std::uint64_t records = 0;
    std::uint32_t buckets = 0;
    std::uint32_t pages = 0;         //!< total chain pages
    std::uint32_t longestChain = 0;  //!< pages in the longest bucket
};

/**
 * Handle to one hash index; registered in the same tree directory as
 * B-trees (ids share the namespace), so handles survive restarts and
 * recovery.
 */
class HashIndex
{
  public:
    explicit HashIndex(TreeId id) : id_(id) {}

    TreeId id() const { return id_; }

    /**
     * Create an index with @p buckets chains (power of two; must fit
     * the one-page directory) registered under @p id.
     */
    static Result<HashIndex> create(TxPageIO &io, TreeId id,
                                    std::uint32_t buckets);

    /** Open an existing index; NotFound if @p id is unregistered. */
    static Result<HashIndex> open(TxPageIO &io, TreeId id);

    /** Delete the index: free every chain page and the directory. */
    static Status drop(TxPageIO &io, TreeId id);

    /** Insert (@p key, @p value); AlreadyExists on duplicates. */
    Status insert(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Replace @p key's value; NotFound if absent. */
    Status update(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Look up @p key. */
    Status get(TxPageIO &io, std::uint64_t key,
               std::vector<std::uint8_t> &value);

    Result<bool> contains(TxPageIO &io, std::uint64_t key);

    /** Delete @p key; NotFound if absent. */
    Status erase(TxPageIO &io, std::uint64_t key);

    /** Visit every record (bucket order, key order within a page). */
    Status forEach(TxPageIO &io,
                   const std::function<bool(
                       std::uint64_t,
                       std::span<const std::uint8_t>)> &fn);

    Result<std::uint64_t> count(TxPageIO &io);

    Result<HashStats> stats(TxPageIO &io);

    /** Verify directory + every chain page + hash placement. */
    Status checkIntegrity(TxPageIO &io);

  private:
    /** Fibonacci-style 64-bit hash mix. */
    static std::uint64_t mix(std::uint64_t key);

    /** The directory page id for this index. */
    Result<PageId> directoryPage(TxPageIO &io);

    /** Chain head pid + directory slot for @p key's bucket. */
    struct Bucket
    {
        std::uint32_t index;
        PageId head;
        std::uint16_t slot; //!< slot in the directory page
    };

    Result<Bucket> bucketFor(TxPageIO &io, PageId dir_pid,
                             std::uint64_t key);

    /** Locate @p key within bucket chain: page + slot. */
    struct Location
    {
        PageId pid;
        std::uint16_t slot;
        bool found;
    };

    Result<Location> find(TxPageIO &io, const Bucket &bucket,
                          std::uint64_t key);

    TreeId id_;
};

} // namespace fasp::btree

#endif // FASP_BTREE_HASH_INDEX_H
