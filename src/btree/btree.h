/**
 * @file
 * Persistent B+-tree over slotted pages (paper Section 4).
 *
 * - Variable-length values; fixed 64-bit keys (SQLite rowids).
 * - Values larger than maxInlineValue() spill to overflow-page chains,
 *   as in SQLite.
 * - Page splits allocate a *left* sibling and move the keys below the
 *   median into it, so the original page's parent entry never changes
 *   (paper Figure 4); splits propagate recursively and grow a new root
 *   when needed.
 * - Pages too fragmented for an incoming record are rebuilt via
 *   copy-on-write defragmentation (paper §4.3).
 * - All structural changes flow through TxPageIO, so commit semantics
 *   (in-place / slot-header logging / WAL) are the engine's concern.
 *
 * Leaf record payload: [u64 key][u8 kind][value | overflow ref] where
 * kind 0 = inline, 1 = overflow ([u32 firstPid][u32 totalLen]).
 * Internal record payload: [u64 separator][u32 childPid]; children at
 * slot i hold keys <= separator_i; the aux field is the rightmost
 * child (keys > every separator).
 */

#ifndef FASP_BTREE_BTREE_H
#define FASP_BTREE_BTREE_H

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "btree/tx_page_io.h"
#include "common/status.h"
#include "common/types.h"

namespace fasp::btree {

/** Aggregate structural statistics (tests / examples). */
struct TreeStats
{
    std::uint64_t records = 0;
    std::uint32_t depth = 0;
    std::uint32_t leafPages = 0;
    std::uint32_t internalPages = 0;
    std::uint32_t overflowPages = 0;
};

/**
 * Handle to one B-tree. Stateless besides the tree id: the root pid is
 * looked up in the directory page on every operation, so handles stay
 * valid across transactions, splits, and crash recovery.
 */
class BTree
{
  public:
    explicit BTree(TreeId id) : id_(id) {}

    TreeId id() const { return id_; }

    /** Largest value stored inline in a leaf (larger ones overflow).
     *  Sized so a leaf always holds at least four records (as SQLite's
     *  spill threshold guarantees); records at exactly a quarter page
     *  would otherwise fit only three per leaf and thrash splits. */
    static std::size_t maxInlineValue(std::size_t page_size)
    {
        return page_size / 4 - 64;
    }

    /**
     * Create a new tree: allocate an empty root leaf and register it in
     * the directory page under @p id.
     */
    static Result<BTree> create(TxPageIO &io, TreeId id);

    /** Open an existing tree; NotFound if @p id is not registered. */
    static Result<BTree> open(TxPageIO &io, TreeId id);

    /** Delete the tree: free every page and drop the directory entry. */
    static Status drop(TxPageIO &io, TreeId id);

    /** Insert (@p key, @p value); AlreadyExists on duplicate. */
    Status insert(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Replace the value of @p key; NotFound if absent. */
    Status update(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Insert or replace. */
    Status upsert(TxPageIO &io, std::uint64_t key,
                  std::span<const std::uint8_t> value);

    /** Look up @p key; fills @p value. NotFound if absent. */
    Status get(TxPageIO &io, std::uint64_t key,
               std::vector<std::uint8_t> &value);

    /** True iff @p key exists. */
    Result<bool> contains(TxPageIO &io, std::uint64_t key);

    /** Delete @p key; NotFound if absent. */
    Status erase(TxPageIO &io, std::uint64_t key);

    /** Visit every (key, value) with lo <= key <= hi in key order.
     *  Return false from @p fn to stop early. */
    Status scan(TxPageIO &io, std::uint64_t lo, std::uint64_t hi,
                const std::function<bool(
                    std::uint64_t, std::span<const std::uint8_t>)> &fn);

    /** Smallest key >= @p key, if any. */
    Result<std::uint64_t> lowerBoundKey(TxPageIO &io, std::uint64_t key);

    /** Largest key in the tree; NotFound when empty. */
    Result<std::uint64_t> maxKey(TxPageIO &io);

    /** Total record count (full scan). */
    Result<std::uint64_t> count(TxPageIO &io);

    /** Structural statistics (full walk). */
    Result<TreeStats> stats(TxPageIO &io);

    /**
     * Verify the whole tree: per-page integrity, separator/key range
     * nesting, uniform leaf depth, child level consistency, overflow
     * chain sanity.
     */
    Status checkIntegrity(TxPageIO &io);

    /** Current root pid (directory lookup). */
    Result<PageId> rootPid(TxPageIO &io);

  private:
    /** Root-to-leaf descent path: page ids, path[0] = root. */
    using Path = std::vector<PageId>;

    /** Descend to the leaf that owns @p key, recording the path. */
    Status descend(TxPageIO &io, std::uint64_t key, Path &path);

    /** Descend to the page at @p target_level whose range owns
     *  @p key (level 0 = leaf). */
    Result<PageId> descendToLevel(TxPageIO &io, std::uint64_t key,
                                  std::uint16_t target_level);

    /** Locate the parent of @p target by walking from the root (used
     *  only by the rare defragmentation repoint; O(pages)). */
    Result<PageId> findParentOf(TxPageIO &io, PageId target);

    /** Build a leaf payload, spilling large values to overflow pages. */
    Status buildLeafPayload(TxPageIO &io,
                            std::uint64_t key,
                            std::span<const std::uint8_t> value,
                            std::vector<std::uint8_t> &payload);

    /** Read the value from a leaf payload (follows overflow chains). */
    Status readLeafPayload(TxPageIO &io,
                           std::span<const std::uint8_t> payload,
                           std::vector<std::uint8_t> &value);

    /** Free the overflow chain referenced by @p payload, if any. */
    void releaseOverflow(TxPageIO &io,
                         std::span<const std::uint8_t> payload);

    /**
     * Make room on page @p pid for a payload of @p payload_len bytes:
     * copy-on-write defragmentation if the space is merely fragmented,
     * a left-sibling split if genuinely full. The page id may change
     * (defrag) or records may move (split); the caller re-descends.
     */
    Status makeRoom(TxPageIO &io, PageId pid,
                    std::uint16_t payload_len, bool needs_new_slot,
                    std::uint64_t pending_key);

    /** Copy-on-write defragmentation of @p pid (paper §4.3): rebuild
     *  into a fresh page and repoint the parent. */
    Status defragPage(TxPageIO &io, PageId pid);

    /** Left-sibling split of @p pid (paper Figure 4). The split point
     *  is biased so that @p pending_key's half is the *fresh* left
     *  sibling whenever possible: records moving there can be written
     *  freely, while the original page's space is pinned until commit
     *  (pre-commit immutability), exactly as the paper's Figure 4
     *  places the incoming key 14 in the new sibling. */
    Status splitPage(TxPageIO &io, PageId pid,
                     std::uint64_t pending_key);

    /** Replace the pointer to @p old_pid (parent record, parent aux,
     *  or the directory root entry) with @p new_pid. */
    Status repointChild(TxPageIO &io, PageId old_pid, PageId new_pid);

    /** Insert (separator -> left sibling) at the level above
     *  @p child_level, growing a new root if @p split_pid was the
     *  root. Re-resolves its target from the root on each attempt, so
     *  it is immune to concurrent restructuring by its own recursion. */
    Status insertSeparator(TxPageIO &io, std::uint64_t separator,
                           PageId left_pid, PageId split_pid,
                           std::uint16_t child_level);

    /** Update the directory record for this tree to @p new_root. */
    Status setRoot(TxPageIO &io, PageId new_root);

    /**
     * Delete-side maintenance: when an erase empties a leaf, unlink it
     * from its parent and free it; empty internal ancestors collapse
     * recursively, and an internal root with no separators left is
     * replaced by its only child (the tree shrinks). All of it is
     * ordinary slot-header / record mutation, so every engine's commit
     * protocol covers it unchanged.
     */
    Status pruneEmptyLeaf(TxPageIO &io, const Path &path);

    Status checkSubtree(TxPageIO &io, PageId pid, std::uint16_t level,
                        std::uint64_t lo, bool has_lo, std::uint64_t hi,
                        bool has_hi, std::uint32_t *leaf_depth,
                        std::uint32_t depth);

    TreeId id_;
};

} // namespace fasp::btree

#endif // FASP_BTREE_BTREE_H
