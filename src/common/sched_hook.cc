#include "common/sched_hook.h"

namespace fasp::mc {

namespace detail {
std::atomic<SchedulerHook *> g_hook{nullptr};
thread_local bool t_participating = false;
thread_local int t_hookDepth = 0;
} // namespace detail

const char *
hookOpName(HookOp op)
{
    switch (op) {
      case HookOp::ThreadStart:           return "thread-start";
      case HookOp::ThreadFinish:          return "thread-finish";
      case HookOp::MutexLock:             return "mutex-lock";
      case HookOp::MutexUnlock:           return "mutex-unlock";
      case HookOp::LatchAcquireShared:    return "latch-acquire-s";
      case HookOp::LatchAcquireExclusive: return "latch-acquire-x";
      case HookOp::LatchUpgrade:          return "latch-upgrade";
      case HookOp::LatchReleaseShared:    return "latch-release-s";
      case HookOp::LatchReleaseExclusive: return "latch-release-x";
      case HookOp::LatchDowngrade:        return "latch-downgrade";
      case HookOp::RtmBegin:              return "rtm-begin";
      case HookOp::RtmCommit:             return "rtm-commit";
      case HookOp::RtmAbort:              return "rtm-abort";
      case HookOp::PmStore:               return "pm-store";
      case HookOp::PmFlush:               return "pm-flush";
      case HookOp::PmFence:               return "pm-fence";
      case HookOp::UserYield:             return "user-yield";
      case HookOp::PmCas:                 return "pm-cas";
    }
    return "?";
}

void
installSchedulerHook(SchedulerHook *hook)
{
    detail::g_hook.store(hook, std::memory_order_release);
}

void
setThreadParticipating(bool on)
{
    detail::t_participating = on;
}

bool
threadParticipating()
{
    return detail::t_participating;
}

} // namespace fasp::mc
