/**
 * @file
 * Clang thread-safety (capability) annotations, plus the annotated
 * Mutex / MutexLock wrappers the rest of the tree locks with.
 *
 * The macros expand to Clang's `capability` attribute family when the
 * compiler supports it and to nothing everywhere else, so GCC builds
 * are untouched. With the `FASP_THREAD_SAFETY` CMake option a Clang
 * build adds `-Wthread-safety -Werror=thread-safety`, turning the
 * locking contract prose of DESIGN.md §9/§10 into compile errors on
 * every path of every build — the static counterpart to what the
 * PersistencyChecker and TSan verify dynamically on executed paths.
 *
 * Raw std::mutex is invisible to the analysis (libstdc++ carries no
 * annotations), which is why every lock in the tree is a fasp::Mutex
 * and every acquisition a fasp::MutexLock (or an annotated PageLatch
 * guard, see pager/latch_table.h). Where a locking pattern is genuinely
 * beyond the intraprocedural analysis — a latch set held across calls,
 * a lock handed from constructor to commit() — the escape hatches are
 * NO_THREAD_SAFETY_ANALYSIS (documented at each use) and
 * Mutex::assertHeld(), never silent omission of the guard annotation.
 */

#ifndef FASP_COMMON_THREAD_ANNOTATIONS_H
#define FASP_COMMON_THREAD_ANNOTATIONS_H

#include <mutex>

#include "common/sched_hook.h"

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FASP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FASP_THREAD_ANNOTATION
#define FASP_THREAD_ANNOTATION(x) // no-op off Clang
#endif

/** Marks a type as a lockable capability ("mutex", "latch", ...). */
#define CAPABILITY(x) FASP_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in its dtor. */
#define SCOPED_CAPABILITY FASP_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only with the capability held. */
#define GUARDED_BY(x) FASP_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is protected by the capability. */
#define PT_GUARDED_BY(x) FASP_THREAD_ANNOTATION(pt_guarded_by(x))

/** Documented lock-ordering edges (checked under -Wthread-safety-beta). */
#define ACQUIRED_BEFORE(...) \
    FASP_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    FASP_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** Caller must hold the capability (exclusively / shared). */
#define REQUIRES(...) \
    FASP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
    FASP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it past return. */
#define ACQUIRE(...) \
    FASP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
    FASP_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/** Function releases a capability the caller holds. */
#define RELEASE(...) \
    FASP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
    FASP_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
    FASP_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/** Function acquires the capability only when returning @p ret. */
#define TRY_ACQUIRE(ret, ...) \
    FASP_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
#define TRY_ACQUIRE_SHARED(ret, ...) \
    FASP_THREAD_ANNOTATION(try_acquire_shared_capability(ret, __VA_ARGS__))

/** Caller must NOT hold the capability (deadlock documentation). */
#define EXCLUDES(...) FASP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Tell the analysis the capability is held from here on (runtime
 *  assertion point for patterns it cannot follow, e.g. a lock taken in
 *  one function and relied on in another). */
#define ASSERT_CAPABILITY(x) \
    FASP_THREAD_ANNOTATION(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) FASP_THREAD_ANNOTATION(lock_returned(x))

/** Last-resort opt-out; every use carries a comment saying why the
 *  pattern is beyond the intraprocedural analysis. */
#define NO_THREAD_SAFETY_ANALYSIS \
    FASP_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace fasp {

/**
 * std::mutex with the capability annotations the analysis needs.
 * Same cost, same semantics; lock with MutexLock (RAII), never by
 * calling lock()/unlock() directly (fasp-lint rule `bare-mutex-lock`).
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE()
    {
        if (mc::SchedulerHook *h = mc::activeHook()) {
            // Model-check path: acquire cooperatively so the scheduler
            // sees (and controls) who holds the mutex. The try_lock
            // can only fail while another participating thread holds
            // the mutex; onBlocked parks us until it releases.
            h->atPoint(mc::HookOp::MutexLock, this, 1);
            for (;;) {
                // fasp-lint: allow(bare-mutex-lock) -- cooperative
                // acquire under the fasp-mc scheduler.
                if (mu_.try_lock())
                    return;
                h->onBlocked(mc::HookOp::MutexLock, this);
            }
        }
        // fasp-lint: allow(bare-mutex-lock) -- the one place the raw
        // primitive is touched; everything else goes through MutexLock.
        mu_.lock();
    }

    void unlock() RELEASE()
    {
        // fasp-lint: allow(bare-mutex-lock) -- see lock().
        mu_.unlock();
        if (mc::SchedulerHook *h = mc::activeHook())
            h->onRelease(mc::HookOp::MutexUnlock, this);
    }

    bool try_lock() TRY_ACQUIRE(true)
    {
        if (mc::SchedulerHook *h = mc::activeHook())
            h->atPoint(mc::HookOp::MutexLock, this, 1);
        // fasp-lint: allow(bare-mutex-lock) -- see lock().
        return mu_.try_lock();
    }

    /** Annotation-only assertion that the calling context holds this
     *  mutex (std::mutex cannot check ownership at runtime). Used where
     *  the acquisition happened beyond the analysis' sight — e.g. the
     *  buffered engines' whole-transaction lock taken in the
     *  transaction constructor. */
    void assertHeld() const ASSERT_CAPABILITY(this) {}

  private:
    std::mutex mu_;
};

/** RAII lock over a fasp::Mutex; the only sanctioned way to lock one. */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex *mu) ACQUIRE(mu) : mu_(mu)
    {
        // fasp-lint: allow(bare-mutex-lock) -- the RAII wrapper itself.
        mu_->lock();
    }

    ~MutexLock() RELEASE()
    {
        // fasp-lint: allow(bare-mutex-lock) -- the RAII wrapper itself.
        mu_->unlock();
    }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex *mu_;
};

} // namespace fasp

#endif // FASP_COMMON_THREAD_ANNOTATIONS_H
