/**
 * @file
 * Panic / warn / inform helpers (gem5-style severity split).
 *
 * faspPanic aborts: it flags a library bug, never a user error.
 * faspFatal exits(1): the condition is the caller's fault (bad config).
 */

#ifndef FASP_COMMON_LOGGING_H
#define FASP_COMMON_LOGGING_H

#include <cstdarg>

namespace fasp {

/** Print an unrecoverable internal-bug message and abort(). */
[[noreturn]] void faspPanic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a user-error message and exit(1). */
[[noreturn]] void faspFatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; execution continues. */
void faspWarn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void faspInform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setInformEnabled(bool enabled);

/** Assert an internal invariant; panics with location on failure. */
#define FASP_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::fasp::faspPanic("assertion '%s' failed at %s:%d", #cond,      \
                              __FILE__, __LINE__);                          \
        }                                                                   \
    } while (0)

} // namespace fasp

#endif // FASP_COMMON_LOGGING_H
