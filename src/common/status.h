/**
 * @file
 * Lightweight Status / Result error-handling types.
 *
 * The library reports recoverable conditions (page full, key missing,
 * transaction aborted, ...) through Status values rather than exceptions.
 * Exceptions are reserved for the crash-injection machinery (see
 * pm/crash.h) and for programming errors (faspPanic).
 */

#ifndef FASP_COMMON_STATUS_H
#define FASP_COMMON_STATUS_H

#include <string>
#include <utility>
#include <variant>

namespace fasp {

/** Category of a recoverable error. */
enum class StatusCode {
    Ok,
    NotFound,      //!< key / table / page absent
    AlreadyExists, //!< duplicate key or table
    PageFull,      //!< record does not fit even after defragmentation
    LogFull,       //!< persistent log region exhausted
    NoSpace,       //!< PM device / page allocator exhausted
    Corruption,    //!< invariant violated in persistent state
    InvalidArgument,
    TxConflict,    //!< transaction aborted (e.g. HTM fallback exhausted)
    NotSupported,
    IoError,
    ParseError,    //!< SQL syntax error
};

/** Human-readable name of a StatusCode. */
const char *statusCodeName(StatusCode code);

/**
 * Value-semantic status: either Ok or a code plus message.
 */
class Status
{
  public:
    /** Construct an Ok status. */
    Status() : code_(StatusCode::Ok) {}

    /** Construct a status with @p code and optional @p message. */
    explicit Status(StatusCode code, std::string message = {})
        : code_(code), message_(std::move(message))
    {}

    static Status ok() { return Status(); }

    bool isOk() const { return code_ == StatusCode::Ok; }
    explicit operator bool() const { return isOk(); }

    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "Ok" or "<CodeName>: <message>". */
    std::string toString() const;

    bool operator==(const Status &other) const
    {
        return code_ == other.code_;
    }

  private:
    StatusCode code_;
    std::string message_;
};

/** Shorthand constructors mirroring the common codes. */
inline Status
statusNotFound(std::string msg = {})
{
    return Status(StatusCode::NotFound, std::move(msg));
}

inline Status
statusAlreadyExists(std::string msg = {})
{
    return Status(StatusCode::AlreadyExists, std::move(msg));
}

inline Status
statusPageFull(std::string msg = {})
{
    return Status(StatusCode::PageFull, std::move(msg));
}

inline Status
statusCorruption(std::string msg = {})
{
    return Status(StatusCode::Corruption, std::move(msg));
}

inline Status
statusInvalid(std::string msg = {})
{
    return Status(StatusCode::InvalidArgument, std::move(msg));
}

inline Status
statusNoSpace(std::string msg = {})
{
    return Status(StatusCode::NoSpace, std::move(msg));
}

inline Status
statusParseError(std::string msg = {})
{
    return Status(StatusCode::ParseError, std::move(msg));
}

/**
 * Result<T>: either a value or an error Status. A minimal expected<T>
 * sufficient for this library (C++23 std::expected is unavailable).
 */
template <typename T>
class Result
{
  public:
    /** Implicit from value. */
    Result(T value) : state_(std::move(value)) {}

    /** Implicit from error status; must not be Ok. */
    Result(Status status) : state_(std::move(status)) {}

    bool isOk() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return isOk(); }

    /** Value access; undefined if !isOk(). */
    T &value() { return std::get<T>(state_); }
    const T &value() const { return std::get<T>(state_); }

    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }

    /** Error access; Ok status if this holds a value. */
    Status status() const
    {
        if (isOk())
            return Status::ok();
        return std::get<Status>(state_);
    }

    /** Move the value out, or return @p fallback on error. */
    T valueOr(T fallback) &&
    {
        if (isOk())
            return std::move(value());
        return fallback;
    }

  private:
    std::variant<T, Status> state_;
};

/** Propagate a non-Ok Status from an expression. */
#define FASP_RETURN_IF_ERROR(expr)                                          \
    do {                                                                    \
        ::fasp::Status fasp_status_ = (expr);                               \
        if (!fasp_status_.isOk())                                           \
            return fasp_status_;                                            \
    } while (0)

/** Token pasting with macro expansion (for unique local names). */
#define FASP_CONCAT_INNER(a, b) a##b
#define FASP_CONCAT(a, b) FASP_CONCAT_INNER(a, b)

/** Assign a Result's value to `lhs` or propagate its error Status. */
#define FASP_ASSIGN_OR_RETURN(lhs, expr)                                    \
    auto FASP_CONCAT(fasp_result_, __LINE__) = (expr);                      \
    if (!FASP_CONCAT(fasp_result_, __LINE__).isOk())                        \
        return FASP_CONCAT(fasp_result_, __LINE__).status();                \
    lhs = std::move(*FASP_CONCAT(fasp_result_, __LINE__))

} // namespace fasp

#endif // FASP_COMMON_STATUS_H
