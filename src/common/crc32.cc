#include "common/crc32.h"

#include <array>

namespace fasp {

namespace {

/** Build the CRC32C (polynomial 0x82f63b78, reflected) lookup table. */
std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            if (crc & 1)
                crc = (crc >> 1) ^ 0x82f63b78u;
            else
                crc >>= 1;
        }
        table[i] = crc;
    }
    return table;
}

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    static const auto table = makeTable();
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

} // namespace fasp
