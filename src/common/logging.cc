#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace fasp {

namespace {
bool informEnabled = true;

void
vreport(const char *prefix, const char *fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", prefix);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}
} // namespace

void
faspPanic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
faspFatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
faspWarn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
faspInform(const char *fmt, ...)
{
    if (!informEnabled)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
setInformEnabled(bool enabled)
{
    informEnabled = enabled;
}

} // namespace fasp
