#include "common/rng.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"

namespace fasp {

namespace {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    FASP_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        std::uint64_t threshold = -bound % bound;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * bound;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    FASP_ASSERT(lo <= hi);
    return lo + nextBounded(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

void
Rng::fillBytes(void *dst, std::size_t len)
{
    auto *out = static_cast<unsigned char *>(dst);
    while (len >= 8) {
        std::uint64_t word = next();
        std::memcpy(out, &word, 8);
        out += 8;
        len -= 8;
    }
    if (len > 0) {
        std::uint64_t word = next();
        std::memcpy(out, &word, len);
    }
}

double
ZipfGenerator::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    FASP_ASSERT(n > 0);
    alpha_ = 1.0 / (1.0 - theta_);
    zetan_ = zeta(n_, theta_);
    double zeta2 = zeta(2, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
}

std::uint64_t
ZipfGenerator::next(Rng &rng) const
{
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n_)
        rank = n_ - 1;
    return rank;
}

} // namespace fasp
