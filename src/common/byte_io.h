/**
 * @file
 * Unaligned little-endian load/store helpers for persistent structures.
 *
 * All on-PM integers are stored little-endian through these helpers so the
 * durable format is well-defined independent of host layout.
 */

#ifndef FASP_COMMON_BYTE_IO_H
#define FASP_COMMON_BYTE_IO_H

#include <cstdint>
#include <cstring>

namespace fasp {

/** Load a little-endian u16 from @p src. */
inline std::uint16_t
loadU16(const void *src)
{
    std::uint16_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

/** Load a little-endian u32 from @p src. */
inline std::uint32_t
loadU32(const void *src)
{
    std::uint32_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

/** Load a little-endian u64 from @p src. */
inline std::uint64_t
loadU64(const void *src)
{
    std::uint64_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

/** Store @p v little-endian at @p dst. */
inline void
storeU16(void *dst, std::uint16_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

/** Store @p v little-endian at @p dst. */
inline void
storeU32(void *dst, std::uint32_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

/** Store @p v little-endian at @p dst. */
inline void
storeU64(void *dst, std::uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

} // namespace fasp

#endif // FASP_COMMON_BYTE_IO_H
