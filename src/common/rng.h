/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * Benchmarks must be reproducible across runs, so all randomness in the
 * library flows through this seeded generator rather than std::random_device.
 */

#ifndef FASP_COMMON_RNG_H
#define FASP_COMMON_RNG_H

#include <cstdint>

namespace fasp {

/**
 * xoshiro256** PRNG seeded via SplitMix64. Fast, high quality, and
 * deterministic for a given seed.
 */
class Rng
{
  public:
    /** Construct with @p seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound) using Lemire's method; bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p. */
    bool nextBool(double p);

    /** Fill @p dst with @p len pseudo-random bytes. */
    void fillBytes(void *dst, std::size_t len);

  private:
    std::uint64_t state_[4];
};

/**
 * Zipfian distribution over [0, n) with skew parameter theta, using the
 * Gray et al. rejection-free method (as in YCSB). theta in (0, 1).
 */
class ZipfGenerator
{
  public:
    /** Distribution over @p n items with skew @p theta (default 0.99). */
    ZipfGenerator(std::uint64_t n, double theta = 0.99);

    /** Draw one sample in [0, n) using @p rng. */
    std::uint64_t next(Rng &rng) const;

    std::uint64_t itemCount() const { return n_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
};

} // namespace fasp

#endif // FASP_COMMON_RNG_H
