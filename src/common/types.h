/**
 * @file
 * Fundamental integer types and constants shared by every fasp module.
 */

#ifndef FASP_COMMON_TYPES_H
#define FASP_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace fasp {

/** Identifier of a fixed-size page inside a PM device. Page 0 is the
 *  superblock; kInvalidPageId marks "no page". */
using PageId = std::uint32_t;

/** Monotonically increasing transaction identifier. */
using TxId = std::uint64_t;

/** Identifier of a B-tree within one database (catalog, tables, ...). */
using TreeId = std::uint32_t;

/** Byte offset inside a PM device's flat address space. */
using PmOffset = std::uint64_t;

/** Sentinel for "no page". */
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/** CPU cache line size assumed by the persistence protocol (bytes).
 *  The paper's failure-atomic write unit is one cache line. */
inline constexpr std::size_t kCacheLineSize = 64;

/** Default database page size (bytes). SQLite and the paper use 4 KiB. */
inline constexpr std::size_t kDefaultPageSize = 4096;

/** Round @p off down to the start of its cache line. */
constexpr PmOffset
cacheLineBase(PmOffset off)
{
    return off & ~static_cast<PmOffset>(kCacheLineSize - 1);
}

/** Number of cache lines spanned by the byte range [off, off + len). */
constexpr std::size_t
cacheLineSpan(PmOffset off, std::size_t len)
{
    if (len == 0)
        return 0;
    PmOffset first = cacheLineBase(off);
    PmOffset last = cacheLineBase(off + len - 1);
    return static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
}

} // namespace fasp

#endif // FASP_COMMON_TYPES_H
