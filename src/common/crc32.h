/**
 * @file
 * CRC32C (Castagnoli) checksum used to validate log records and the
 * superblock after a crash.
 */

#ifndef FASP_COMMON_CRC32_H
#define FASP_COMMON_CRC32_H

#include <cstddef>
#include <cstdint>

namespace fasp {

/** Compute CRC32C of @p len bytes at @p data, continuing from @p seed. */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed = 0);

} // namespace fasp

#endif // FASP_COMMON_CRC32_H
