#include "common/status.h"

namespace fasp {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "Ok";
      case StatusCode::NotFound: return "NotFound";
      case StatusCode::AlreadyExists: return "AlreadyExists";
      case StatusCode::PageFull: return "PageFull";
      case StatusCode::LogFull: return "LogFull";
      case StatusCode::NoSpace: return "NoSpace";
      case StatusCode::Corruption: return "Corruption";
      case StatusCode::InvalidArgument: return "InvalidArgument";
      case StatusCode::TxConflict: return "TxConflict";
      case StatusCode::NotSupported: return "NotSupported";
      case StatusCode::IoError: return "IoError";
      case StatusCode::ParseError: return "ParseError";
    }
    return "Unknown";
}

std::string
Status::toString() const
{
    if (isOk())
        return "Ok";
    std::string out = statusCodeName(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace fasp
