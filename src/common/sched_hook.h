/**
 * @file
 * The fasp-mc scheduler hook: the seam between the annotated
 * synchronization/persistence wrappers and the model checker.
 *
 * PRs 2-3 funneled every scheduling-relevant event through a closed
 * set of wrappers: fasp::Mutex (thread_annotations.h), PageLatch
 * (pager/latch_table.h), the emulated RTM (htm/rtm.h) and PmDevice
 * (pm/device.h). This header gives those wrappers one optional
 * indirection point — a process-global SchedulerHook — that the
 * cooperative model-check scheduler (src/mc) installs to serialize
 * participating threads at every such event and enumerate their
 * interleavings.
 *
 * Cost when no checker runs: one relaxed thread_local read per
 * wrapper operation (activeHook() returns nullptr unless the calling
 * thread opted in), so production and benchmark paths are unaffected.
 *
 * Re-entrancy: wrapper implementations take *internal* locks of their
 * own (the device's cache-shard mutexes, the checker's bookkeeping
 * mutex, the RTM line locks). Those must not become scheduling points
 * — they are invisible implementation detail, and parking inside them
 * would deadlock the scheduler itself. Every wrapper therefore raises
 * its hook point first and then enters a HookDepthGuard scope, which
 * suppresses nested hook calls on the same thread.
 *
 * Deliberately include-light (this header is pulled in by
 * thread_annotations.h): nothing but <atomic>/<cstdint>.
 */

#ifndef FASP_COMMON_SCHED_HOOK_H
#define FASP_COMMON_SCHED_HOOK_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace fasp::mc {

/** The kinds of interception points the wrappers raise. */
enum class HookOp : std::uint8_t {
    ThreadStart = 0,       //!< worker registered, about to run its body
    ThreadFinish,          //!< worker body returned
    MutexLock,             //!< fasp::Mutex acquire attempt
    MutexUnlock,           //!< fasp::Mutex release (post-release notify)
    LatchAcquireShared,    //!< PageLatch shared acquire attempt
    LatchAcquireExclusive, //!< PageLatch exclusive acquire attempt
    LatchUpgrade,          //!< PageLatch shared->exclusive attempt
    LatchReleaseShared,    //!< PageLatch shared release
    LatchReleaseExclusive, //!< PageLatch exclusive release
    LatchDowngrade,        //!< PageLatch exclusive->shared
    RtmBegin,              //!< emulated-RTM attempt starts
    RtmCommit,             //!< emulated-RTM attempt committed
    RtmAbort,              //!< emulated-RTM attempt aborted
    PmStore,               //!< PmDevice::write/writeScratch
    PmFlush,               //!< PmDevice::clflush
    PmFence,               //!< PmDevice::sfence
    UserYield,             //!< explicit mc::yieldPoint() in a scenario
    PmCas,                 //!< PmDevice::casU64 (persistent CAS attempt)
};

const char *hookOpName(HookOp op);

/**
 * Installed by the model checker; called by the wrappers on
 * *participating* threads only (see setThreadParticipating).
 *
 * Protocol, per wrapper operation:
 *
 *   atPoint(op, addr, len)  raised BEFORE the operation takes effect.
 *       The hook may park the calling thread and run others; when it
 *       returns, the thread owns the (logical) CPU and performs the
 *       operation. @p addr identifies the resource (mutex/latch/rtm
 *       object address, or durable-image byte address for PM ops) and
 *       @p len its extent (PM ops; 1 otherwise).
 *
 *   onBlocked(op, addr)     the operation could not take effect (mutex
 *       already held, latch CAS failed). The thread is descheduled
 *       until the resource is released — return true to retry the
 *       operation — or until the scheduler force-wakes it to take its
 *       bounded-wait conflict path — return false (latches only:
 *       the caller returns acquisition failure, which the engines turn
 *       into a LatchConflict abort-retry).
 *
 *   onRelease(op, addr)     raised AFTER a release made the resource
 *       available, so the hook can mark blocked threads runnable. Not
 *       itself a scheduling point (the releasing thread keeps running
 *       until its next atPoint).
 */
class SchedulerHook
{
  public:
    virtual ~SchedulerHook() = default;

    virtual void atPoint(HookOp op, const void *addr,
                         std::size_t len) = 0;
    virtual bool onBlocked(HookOp op, const void *addr) = 0;
    virtual void onRelease(HookOp op, const void *addr) = 0;
};

namespace detail {
extern std::atomic<SchedulerHook *> g_hook;
extern thread_local bool t_participating;
extern thread_local int t_hookDepth;
} // namespace detail

/** The hook to raise from the calling context, or nullptr (the common
 *  case: no checker installed, thread not participating, or inside a
 *  HookDepthGuard). */
inline SchedulerHook *
activeHook()
{
    if (!detail::t_participating || detail::t_hookDepth != 0)
        return nullptr;
    return detail::g_hook.load(std::memory_order_acquire);
}

/** Install @p hook process-wide (nullptr to remove). Quiescent only:
 *  no participating thread may be running. */
void installSchedulerHook(SchedulerHook *hook);

/** Opt the calling thread in/out of interception. Worker threads of a
 *  model-check run opt in; the controller and all ordinary threads
 *  never do. */
void setThreadParticipating(bool on);

bool threadParticipating();

/**
 * Suppresses hook points on the calling thread for its scope. Wrappers
 * enter one right after raising their own point, so the internal locks
 * they take never become scheduling points; the model checker itself
 * uses it to run recovery/oracle code on a forked crash image from a
 * participating thread's context.
 */
class HookDepthGuard
{
  public:
    HookDepthGuard() { ++detail::t_hookDepth; }
    ~HookDepthGuard() { --detail::t_hookDepth; }

    HookDepthGuard(const HookDepthGuard &) = delete;
    HookDepthGuard &operator=(const HookDepthGuard &) = delete;
};

/** Explicit scheduling point for model-check scenario bodies: marks a
 *  spot where unsynchronized code interleaves (e.g. between the read
 *  and the write of a read-modify-write). No-op outside a run. */
inline void
yieldPoint()
{
    if (SchedulerHook *h = activeHook())
        h->atPoint(HookOp::UserYield, nullptr, 1);
}

} // namespace fasp::mc

#endif // FASP_COMMON_SCHED_HOOK_H
