#include "bench_util/runner.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "btree/btree.h"
#include "core/fasp_engine.h"
#include "common/logging.h"
#include "db/database.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace fasp::benchutil {

using core::Engine;
using core::EngineConfig;
using core::EngineKind;
using pm::Component;

double
BenchResult::perTxnNs(Component comp) const
{
    if (txns == 0)
        return 0;
    return static_cast<double>(tracker.totalNs(comp)) /
           static_cast<double>(txns);
}

double
BenchResult::flushesPerTxn() const
{
    if (txns == 0)
        return 0;
    return static_cast<double>(tracker.grandTotalFlushes()) /
           static_cast<double>(txns);
}

double
pageUpdateNs(const BenchResult &result)
{
    return result.perTxnNs(Component::VolatileCopy) +
           result.perTxnNs(Component::InPlaceInsert) +
           result.perTxnNs(Component::UpdateSlotHeader) +
           result.perTxnNs(Component::FlushRecord) +
           result.perTxnNs(Component::Defrag);
}

double
commitNs(const BenchResult &result, EngineKind kind)
{
    double total = result.perTxnNs(Component::NvwalCompute) +
                   result.perTxnNs(Component::HeapMgmt) +
                   result.perTxnNs(Component::LogFlush) +
                   result.perTxnNs(Component::WalIndex) +
                   result.perTxnNs(Component::Atomic64BWrite) +
                   result.perTxnNs(Component::CommitMisc);
    // The paper excludes lazy checkpointing from commit time; the
    // eager checkpointing of FAST/FASH (and the journal's in-place
    // database write) IS part of each commit.
    if (kind != EngineKind::Nvwal && kind != EngineKind::LegacyWal)
        total += result.perTxnNs(Component::Checkpoint);
    return total;
}

Groups
groupComponents(const BenchResult &result, EngineKind kind)
{
    Groups groups;
    groups.searchNs = result.perTxnNs(Component::Search);
    groups.pageUpdateNs = pageUpdateNs(result);
    groups.commitNs = commitNs(result, kind);
    return groups;
}

std::array<EngineKind, 3>
paperEngines()
{
    return {EngineKind::Nvwal, EngineKind::Fash, EngineKind::Fast};
}

std::array<EngineKind, 5>
allEngines()
{
    return {EngineKind::Journal, EngineKind::LegacyWal,
            EngineKind::Nvwal, EngineKind::Fash, EngineKind::Fast};
}

std::string
latencyLabel(const pm::LatencyModel &latency)
{
    return std::to_string(latency.pmReadNs) + "/" +
           std::to_string(latency.pmWriteNs);
}

namespace {

/**
 * Match argv[i] against --NAME, accepting both `--NAME=value` and
 * `--NAME value` spellings. On a match, *value points at the value
 * (or nullptr for a bare flag) and *consumed is how many argv slots
 * the flag used (1 or 2).
 */
bool
matchFlag(int argc, char **argv, int i, const char *name,
          bool wantsValue, const char **value, int *consumed)
{
    const char *arg = argv[i];
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) != 0)
        return false;
    if (arg[len] == '\0') {
        if (!wantsValue) {
            *value = nullptr;
            *consumed = 1;
            return true;
        }
        if (i + 1 < argc) {
            *value = argv[i + 1];
            *consumed = 2;
            return true;
        }
        return false; // --flag at argv end with no value: not ours
    }
    if (arg[len] == '=' && wantsValue) {
        *value = arg + len + 1;
        *consumed = 1;
        return true;
    }
    return false; // e.g. --ns=... must not match --n
}

BenchArgs
parseImpl(int &argc, char **argv, bool strip)
{
    BenchArgs args;
    int out = 1;
    int i = 1;
    while (i < argc) {
        const char *value = nullptr;
        int consumed = 0;
        bool matched = false;
        if (matchFlag(argc, argv, i, "--n", true, &value, &consumed)) {
            args.numTxns =
                static_cast<std::size_t>(std::atoll(value));
            matched = true;
        } else if (matchFlag(argc, argv, i, "--quick", false, &value,
                             &consumed)) {
            args.numTxns = 2000;
            matched = true;
        } else if (matchFlag(argc, argv, i, "--smoke", false, &value,
                             &consumed)) {
            args.smoke = true;
            args.numTxns = 300;
            matched = true;
        } else if (matchFlag(argc, argv, i, "--json", true, &value,
                             &consumed)) {
            args.jsonPath = value;
            matched = true;
        } else if (matchFlag(argc, argv, i, "--clients", true, &value,
                             &consumed)) {
            args.clients =
                static_cast<std::size_t>(std::atoll(value));
            matched = true;
        } else if (matchFlag(argc, argv, i, "--metrics", true, &value,
                             &consumed)) {
            args.metricsPath = value;
            obs::setEnabled(true);
            matched = true;
        } else if (matchFlag(argc, argv, i, "--trace", true, &value,
                             &consumed)) {
            args.tracePath = value;
            obs::setEnabled(true);
            matched = true;
        } else if (matchFlag(argc, argv, i, "--flight-recorder", false,
                             &value, &consumed)) {
            args.flightRecorder = true;
            obs::FlightRecorder::setEnabled(true);
            matched = true;
        }
        if (matched) {
            i += consumed;
            continue;
        }
        if (strip)
            argv[out++] = argv[i];
        ++i;
    }
    if (strip) {
        argc = out;
        argv[argc] = nullptr;
    }
    if (args.numTxns == 0)
        args.numTxns = 1;
    return args;
}

} // namespace

BenchArgs
BenchArgs::parse(int argc, char **argv)
{
    return parseImpl(argc, argv, false);
}

BenchArgs
BenchArgs::parseAndStrip(int &argc, char **argv)
{
    return parseImpl(argc, argv, true);
}

void
BenchArgs::writeMetrics(const std::string &benchName) const
{
    if (!metricsPath.empty() &&
        obs::writeMetricsFile(metricsPath, benchName))
        std::printf("metrics written to %s\n", metricsPath.c_str());
    if (!tracePath.empty() && obs::writeTraceFile(tracePath))
        std::printf("trace written to %s\n", tracePath.c_str());
}

namespace {

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::size_t
autoDeviceSize(const BenchConfig &config)
{
    std::size_t data = config.numTxns * config.recordsPerTxn *
                       (config.recordSize + 96);
    std::size_t size = 3 * data + (48u << 20);
    // Round up to 1 MiB.
    size = (size + (1u << 20) - 1) & ~((std::size_t{1} << 20) - 1);
    return size;
}

} // namespace

BenchResult
runInsertBench(const BenchConfig &config)
{
    pm::PmConfig pm_cfg;
    pm_cfg.size = config.deviceSize ? config.deviceSize
                                    : autoDeviceSize(config);
    pm_cfg.mode = pm::PmMode::Direct;
    pm_cfg.latency = config.latency;
    pm_cfg.useClwb = config.useClwb;
    pm::PmDevice device(pm_cfg);

    EngineConfig engine_cfg;
    engine_cfg.kind = config.kind;
    engine_cfg.rtm = config.rtm;
    engine_cfg.inPlaceCommitVia = config.commitVia;
    engine_cfg.pcas = config.pcas;
    engine_cfg.format.logLen = 16u << 20;
    auto engine_res = Engine::create(device, engine_cfg, true);
    if (!engine_res.isOk())
        faspFatal("bench: engine create failed: %s",
                  engine_res.status().toString().c_str());
    std::unique_ptr<Engine> engine = std::move(*engine_res);

    auto tree_res = engine->createTree(2);
    if (!tree_res.isOk())
        faspFatal("bench: tree create failed");
    btree::BTree tree = *tree_res;

    // Measure from a clean slate (the setup above is not counted).
    BenchResult result;
    device.setPhaseTracker(&result.tracker);
    device.invalidateTagCache();
    device.stats().reset();
    engine->stats().reset();

    // With --metrics, bill PM events to phases/sites for this engine
    // and collect a per-transaction latency distribution.
    obs::PmAttribution attribution;
    obs::Histogram *txn_hist = nullptr;
    if (obs::enabled()) {
        device.setObserver(&attribution);
        txn_hist = &obs::MetricsRegistry::global().histogram(
            std::string("bench.txn_ns.") +
            core::engineKindName(config.kind));
    }

    workload::KeyStream keys(config.keys, config.seed);
    workload::ValueGen values =
        workload::ValueGen::fixed(config.recordSize, config.seed + 1);
    std::vector<std::uint8_t> value;

    auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < config.numTxns; ++i) {
        std::uint64_t txn_t0 = 0;
        std::uint64_t txn_m0 = 0;
        if (txn_hist) {
            txn_t0 = nowNs();
            txn_m0 = pm::PmDevice::threadModelNs();
        }
        auto tx = engine->begin();
        for (std::size_t j = 0; j < config.recordsPerTxn; ++j) {
            values.next(value);
            Status status = tree.insert(
                tx->pageIO(), keys.next(),
                std::span<const std::uint8_t>(value));
            if (status.code() == StatusCode::AlreadyExists) {
                --j; // 64-bit collision: vanishingly rare, retry
                continue;
            }
            if (!status.isOk())
                faspFatal("bench insert failed: %s",
                          status.toString().c_str());
        }
        Status status = tx->commit();
        if (!status.isOk())
            faspFatal("bench commit failed: %s",
                      status.toString().c_str());
        if (txn_hist) {
            txn_hist->record((nowNs() - txn_t0) +
                             (pm::PmDevice::threadModelNs() - txn_m0));
        }
    }
    auto wall_end = std::chrono::steady_clock::now();

    result.txns = config.numTxns;
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    result.pmStats = device.stats();
    result.engineStats = engine->stats();
    if (auto *fasp = dynamic_cast<core::FaspEngine *>(engine.get())) {
        result.rtmStats = fasp->rtm().stats();
        result.pcasStats = fasp->pcas().stats();
    }
    device.setPhaseTracker(nullptr);
    if (obs::enabled()) {
        device.setObserver(nullptr);
        obs::PhaseLedger::global().fold(
            core::engineKindName(config.kind), attribution);
    }
    return result;
}

SqlBenchResult
runSqlBench(const SqlBenchConfig &config)
{
    pm::PmConfig pm_cfg;
    pm_cfg.size = std::max<std::size_t>(
        128u << 20, 4 * config.numOps * (config.valueSize + 128));
    pm_cfg.mode = pm::PmMode::Direct;
    pm_cfg.latency = config.latency;
    pm::PmDevice device(pm_cfg);

    EngineConfig engine_cfg;
    engine_cfg.kind = config.kind;
    engine_cfg.format.logLen = 16u << 20;
    auto db_res = db::Database::open(device, engine_cfg, true);
    if (!db_res.isOk())
        faspFatal("bench: database open failed: %s",
                  db_res.status().toString().c_str());
    auto database = std::move(*db_res);

    auto created = database->exec(
        "CREATE TABLE kv (id INTEGER PRIMARY KEY, payload TEXT)");
    if (!created.isOk())
        faspFatal("bench: create table failed");

    // Payload text reused across statements (sized once).
    std::string payload(config.valueSize, 'x');

    pm::PhaseTracker tracker;
    device.setPhaseTracker(&tracker);
    device.invalidateTagCache();

    obs::PmAttribution attribution;
    obs::Histogram *op_hist = nullptr;
    if (obs::enabled()) {
        device.setObserver(&attribution);
        op_hist = &obs::MetricsRegistry::global().histogram(
            std::string("bench.sql_op_ns.") +
            core::engineKindName(config.kind));
    }

    workload::MixedWorkload workload(config.mix, config.seed);
    SqlBenchResult result;
    double model_total_start =
        static_cast<double>(device.stats().modelNs);
    auto bench_start = std::chrono::steady_clock::now();

    std::string sql;
    for (std::size_t i = 0; i < config.numOps; ++i) {
        workload::Op op = workload.next();
        sql.clear();
        switch (op.type) {
          case workload::OpType::Insert:
            sql = "INSERT INTO kv VALUES (" +
                  std::to_string(op.key) + ", '" + payload + "')";
            break;
          case workload::OpType::Update:
            sql = "UPDATE kv SET payload = '" + payload +
                  "' WHERE id = " + std::to_string(op.key);
            break;
          case workload::OpType::Delete:
            sql = "DELETE FROM kv WHERE id = " +
                  std::to_string(op.key);
            break;
          case workload::OpType::Lookup:
            sql = "SELECT payload FROM kv WHERE id = " +
                  std::to_string(op.key);
            break;
        }

        std::uint64_t model_before = device.stats().modelNs;
        auto op_start = std::chrono::steady_clock::now();
        auto rs = database->exec(sql);
        auto op_end = std::chrono::steady_clock::now();
        if (!rs.isOk())
            faspFatal("bench sql failed: %s (%s)",
                      rs.status().toString().c_str(), sql.c_str());
        double ns =
            std::chrono::duration<double, std::nano>(op_end - op_start)
                .count() +
            static_cast<double>(device.stats().modelNs - model_before);
        if (op_hist)
            op_hist->record(static_cast<std::uint64_t>(ns));

        switch (op.type) {
          case workload::OpType::Insert:
            result.insertNs += ns;
            result.inserts++;
            break;
          case workload::OpType::Update:
            result.updateNs += ns;
            result.updates++;
            break;
          case workload::OpType::Delete:
            result.deleteNs += ns;
            result.deletes++;
            break;
          case workload::OpType::Lookup:
            result.lookupNs += ns;
            result.lookups++;
            break;
        }
    }
    auto bench_end = std::chrono::steady_clock::now();

    if (result.inserts)
        result.insertNs /= static_cast<double>(result.inserts);
    if (result.updates)
        result.updateNs /= static_cast<double>(result.updates);
    if (result.deletes)
        result.deleteNs /= static_cast<double>(result.deletes);
    if (result.lookups)
        result.lookupNs /= static_cast<double>(result.lookups);

    double total_seconds =
        std::chrono::duration<double>(bench_end - bench_start).count() +
        (static_cast<double>(device.stats().modelNs) -
         model_total_start) *
            1e-9;
    result.opsPerSecond =
        static_cast<double>(config.numOps) / total_seconds;
    device.setPhaseTracker(nullptr);
    if (obs::enabled()) {
        device.setObserver(nullptr);
        obs::PhaseLedger::global().fold(
            core::engineKindName(config.kind), attribution);
    }
    return result;
}

} // namespace fasp::benchutil
