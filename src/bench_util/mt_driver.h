/**
 * @file
 * Multi-threaded benchmark driver: N client threads hammering one
 * engine, for the paper's multi-client throughput experiments
 * (fig12_throughput --clients mode).
 *
 * Timing model. The testbed emulates PM latency by accounting (see
 * pm/latency.h), and CI machines may have a single core, so wall-clock
 * time says nothing about how concurrent clients would scale on real
 * hardware. Instead each client accumulates
 *
 *     its own CPU time (CLOCK_THREAD_CPUTIME_ID)
 *   + its own modelled PM stall time (PmDevice::threadModelNs)
 *
 * and the run's duration is the *maximum* over clients — on a machine
 * with >= N cores the clients run in parallel and the slowest one
 * bounds the makespan. Contention is still real: latch conflicts and
 * RTM contention aborts cost retries, which show up as extra CPU and
 * PM charges on the threads that lose races. Throughput therefore
 * scales with clients exactly insofar as the engine's concurrency
 * control allows, which is the property under test.
 */

#ifndef FASP_BENCH_UTIL_MT_DRIVER_H
#define FASP_BENCH_UTIL_MT_DRIVER_H

#include <cstdint>

#include "bench_util/runner.h"
#include "core/engine.h"
#include "pm/latency.h"
#include "workload/workload.h"

namespace fasp::benchutil {

/** One multi-client benchmark point. */
struct MtConfig
{
    core::EngineKind kind = core::EngineKind::Fast;
    pm::LatencyModel latency = pm::LatencyModel::of(300, 300);
    std::size_t threads = 4;
    std::size_t txnsPerThread = 2000; //!< single-insert txns per client
    std::size_t recordSize = 64;
    std::uint64_t seed = 42;
    std::size_t deviceSize = 0;       //!< 0 = sized automatically

    /** FAST in-place commit mechanism (PCAS default vs RTM). */
    core::InPlaceCommitVia commitVia = core::InPlaceCommitVia::Pcas;
    pm::PcasConfig pcas;              //!< PCAS failure injection

    /** Attach a PersistencyChecker for the run and report its
     *  violation count (validation pass; slower). */
    bool attachChecker = false;
};

/** Everything measured for one multi-client point. */
struct MtResult
{
    std::size_t threads = 0;
    std::uint64_t txns = 0;           //!< committed transactions
    double wallSeconds = 0;           //!< host wall clock (noise on
                                      //!< oversubscribed machines)
    double modeledSeconds = 0;        //!< max over clients of CPU +
                                      //!< modelled PM time
    double txnsPerSecond = 0;         //!< txns / modeledSeconds
    std::uint64_t conflictRetries = 0;//!< LatchConflict aborts retried
    std::uint64_t checkerViolations = 0;
    core::EngineStats engineStats;
    htm::RtmStats rtmStats;
    pm::PcasStats pcasStats;
    pm::PmStats pmStats;
};

/**
 * Run the paper's insert workload with config.threads concurrent
 * clients against one fresh engine. Each client commits
 * config.txnsPerThread single-insert transactions, retrying on
 * LatchConflict; afterwards a single-threaded full scan verifies the
 * B-tree contains exactly the committed keys (fatal on mismatch).
 */
MtResult runMtInsertBench(const MtConfig &config);

/** One multi-client YCSB benchmark point. */
struct MtYcsbConfig
{
    core::EngineKind kind = core::EngineKind::Fast;
    pm::LatencyModel latency = pm::LatencyModel::of(300, 300);
    std::size_t threads = 4;
    std::size_t opsPerThread = 2000;
    std::size_t recordSize = 64;
    std::uint64_t seed = 42;
    std::size_t deviceSize = 0;            //!< 0 = sized automatically

    char mix = 'A';                        //!< YCSB mix A-F
    std::size_t preloadPerThread = 1000;   //!< records loaded up front
    workload::KeyOrder order = workload::KeyOrder::Hashed;

    core::InPlaceCommitVia commitVia = core::InPlaceCommitVia::Pcas;
    pm::PcasConfig pcas;
    bool attachChecker = false;
};

/** Everything measured for one multi-client YCSB point. */
struct MtYcsbResult
{
    std::size_t threads = 0;
    std::uint64_t ops = 0;             //!< completed operations
    std::uint64_t opCounts[5] = {};    //!< per YcsbOp (enum order)
    std::uint64_t scannedRecords = 0;  //!< records visited by scans
    double wallSeconds = 0;
    double modeledSeconds = 0;         //!< makespan as in MtResult
    double opsPerSecond = 0;
    double meanOpUs = 0;               //!< per-op CPU + modelled PM time
    double p50OpUs = 0;
    double p99OpUs = 0;
    std::uint64_t conflictRetries = 0;
    std::uint64_t checkerViolations = 0;
    core::EngineStats engineStats;
    pm::PmStats pmStats;
};

/**
 * Run YCSB mix config.mix with config.threads concurrent clients
 * against one fresh engine. Each client owns a disjoint slice of the
 * logical keyspace (indexOffset/indexStride), preloads
 * config.preloadPerThread records, then issues config.opsPerThread
 * operations from its mix stream, retrying on LatchConflict. RMW runs
 * read + update in ONE transaction. A post-run verification asserts
 * every client's inserted keys are present (fatal on mismatch).
 */
MtYcsbResult runMtYcsbBench(const MtYcsbConfig &config);

} // namespace fasp::benchutil

#endif // FASP_BENCH_UTIL_MT_DRIVER_H
