#include "bench_util/table.h"

#include <algorithm>

namespace fasp::benchutil {

void
Table::print(const std::string &title) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::printf("\n== %s ==\n", title.c_str());
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::printf("%-*s", static_cast<int>(widths[c] + 2),
                        row[c].c_str());
        }
        std::printf("\n");
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::fmt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace fasp::benchutil
