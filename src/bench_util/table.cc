#include "bench_util/table.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace fasp::benchutil {

void
Table::print(const std::string &title) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size();
             ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::printf("\n== %s ==\n", title.c_str());
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            std::printf("%-*s", static_cast<int>(widths[c] + 2),
                        row[c].c_str());
        }
        std::printf("\n");
    };
    print_row(header_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
Table::fmt(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::fmt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

namespace {

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Emit a cell: as a bare number if it parses fully as one. */
void
appendJsonCell(std::string &out, const std::string &cell)
{
    if (!cell.empty()) {
        char *end = nullptr;
        std::strtod(cell.c_str(), &end);
        if (end && *end == '\0' && end != cell.c_str()) {
            out += cell;
            return;
        }
    }
    appendJsonString(out, cell);
}

} // namespace

void
JsonReport::add(const std::string &title, const Table &table)
{
    if (!enabled())
        return;
    tables_.emplace_back(title, table);
}

void
JsonReport::write() const
{
    if (!enabled())
        return;
    std::string out = "{\"bench\": ";
    appendJsonString(out, bench_);
    out += ", \"tables\": [";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
        const auto &[title, table] = tables_[t];
        if (t)
            out += ", ";
        out += "\n  {\"title\": ";
        appendJsonString(out, title);
        out += ", \"columns\": [";
        for (std::size_t c = 0; c < table.header().size(); ++c) {
            if (c)
                out += ", ";
            appendJsonString(out, table.header()[c]);
        }
        out += "], \"rows\": [";
        for (std::size_t r = 0; r < table.rows().size(); ++r) {
            if (r)
                out += ", ";
            out += "\n    [";
            const auto &row = table.rows()[r];
            for (std::size_t c = 0; c < row.size(); ++c) {
                if (c)
                    out += ", ";
                appendJsonCell(out, row[c]);
            }
            out += "]";
        }
        out += "]}";
    }
    out += "\n]}\n";

    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f)
        faspFatal("cannot open json report path: %s", path_.c_str());
    if (std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
        std::fclose(f);
        faspFatal("short write to json report: %s", path_.c_str());
    }
    std::fclose(f);
}

} // namespace fasp::benchutil
