/**
 * @file
 * Aligned-text table printer for benchmark output, plus a JSON report
 * writer emitting the same tables machine-readably (one schema across
 * every bench, consumed by the CI bench-smoke artifacts).
 */

#ifndef FASP_BENCH_UTIL_TABLE_H
#define FASP_BENCH_UTIL_TABLE_H

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace fasp::benchutil {

/**
 * Collects rows of string cells and prints them with aligned columns.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one row (cell count should match the header). */
    void addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Print to stdout with a title and separator rule. */
    void print(const std::string &title) const;

    const std::vector<std::string> &header() const { return header_; }

    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

    /** Format helpers. */
    static std::string fmt(double v, int decimals = 2);
    static std::string fmt(std::uint64_t v);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Machine-readable mirror of a bench run. Collects the same tables the
 * bench prints and writes
 *
 *   {"bench": "<name>", "tables": [
 *       {"title": "...", "columns": [...], "rows": [[...], ...]}, ...]}
 *
 * to a file. Every add/write is a no-op when constructed with an empty
 * path, so benches call it unconditionally and `--json=PATH` switches
 * the output on. Cells that parse fully as numbers are emitted as JSON
 * numbers, everything else as strings.
 */
class JsonReport
{
  public:
    JsonReport(std::string path, std::string bench)
        : path_(std::move(path)), bench_(std::move(bench))
    {}

    bool enabled() const { return !path_.empty(); }

    /** Record @p table under @p title (call next to table.print). */
    void add(const std::string &title, const Table &table);

    /** Write the report file; fatal on I/O error. */
    void write() const;

  private:
    std::string path_;
    std::string bench_;
    std::vector<std::pair<std::string, Table>> tables_;
};

} // namespace fasp::benchutil

#endif // FASP_BENCH_UTIL_TABLE_H
