/**
 * @file
 * Aligned-text table printer for benchmark output.
 */

#ifndef FASP_BENCH_UTIL_TABLE_H
#define FASP_BENCH_UTIL_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace fasp::benchutil {

/**
 * Collects rows of string cells and prints them with aligned columns.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one row (cell count should match the header). */
    void addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Print to stdout with a title and separator rule. */
    void print(const std::string &title) const;

    /** Format helpers. */
    static std::string fmt(double v, int decimals = 2);
    static std::string fmt(std::uint64_t v);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fasp::benchutil

#endif // FASP_BENCH_UTIL_TABLE_H
