#include "bench_util/mt_driver.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "common/logging.h"
#include "core/fasp_engine.h"
#include "obs/metrics.h"
#include "pager/latch_table.h"
#include "pm/checker.h"
#include "pm/device.h"

namespace fasp::benchutil {

using core::Engine;
using core::EngineConfig;
using core::EngineKind;

namespace {

std::size_t
autoDeviceSize(const MtConfig &config)
{
    std::size_t records = config.threads * config.txnsPerThread;
    std::size_t data = records * (config.recordSize + 96);
    std::size_t size = 3 * data + (48u << 20);
    size = (size + (1u << 20) - 1) & ~((std::size_t{1} << 20) - 1);
    return size;
}

/** Calling thread's CPU time in ns. */
std::uint64_t
threadCpuNs()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

struct ClientResult
{
    std::uint64_t committed = 0;
    std::uint64_t retries = 0;
    std::uint64_t activeNs = 0; //!< CPU + modelled PM time
    std::vector<std::uint64_t> keys;
};

void
clientLoop(Engine &engine, btree::BTree tree, const MtConfig &config,
           std::size_t tid, ClientResult &out)
{
    workload::KeyStream keys(workload::KeyPattern::UniformRandom,
                             config.seed + 1000 * (tid + 1));
    workload::ValueGen values = workload::ValueGen::fixed(
        config.recordSize, config.seed + tid + 1);
    std::vector<std::uint8_t> value;
    out.keys.reserve(config.txnsPerThread);

    // Concurrent per-txn latency recording: each client thread writes
    // the shared histogram (relaxed atomics) and its own trace ring.
    obs::Histogram *txn_hist = nullptr;
    if (obs::enabled()) {
        txn_hist = &obs::MetricsRegistry::global().histogram(
            std::string("bench.txn_ns.") +
            core::engineKindName(config.kind));
    }

    pm::PmDevice::resetThreadModelNs();
    std::uint64_t cpu_start = threadCpuNs();

    std::uint64_t backoff_us = 0;
    while (out.committed < config.txnsPerThread) {
        std::uint64_t key = keys.next();
        values.next(value);
        std::uint64_t txn_cpu0 = txn_hist ? threadCpuNs() : 0;
        std::uint64_t txn_m0 =
            txn_hist ? pm::PmDevice::threadModelNs() : 0;
        Status status = Status::ok();
        try {
            status = engine.insert(
                tree, key, std::span<const std::uint8_t>(value));
        } catch (const LatchConflict &) {
            // Conflict-abort: the transaction rolled back; retry the
            // same key from scratch after an exponential backoff, so a
            // conflicting transaction stuck behind the scheduler (or a
            // commit mutex) gets the cycles to finish. The sleep is
            // not charged as active time — on real hardware the other
            // client's core makes progress during it.
            out.retries++;
            backoff_us = backoff_us ? std::min<std::uint64_t>(
                                          backoff_us * 2, 256)
                                    : 1;
            std::this_thread::sleep_for(
                std::chrono::microseconds(backoff_us));
            continue;
        }
        if (status.code() == StatusCode::AlreadyExists)
            continue; // 64-bit key collision: draw another
        if (!status.isOk())
            faspFatal("mt bench insert failed: %s",
                      status.toString().c_str());
        backoff_us = 0;
        out.keys.push_back(key);
        out.committed++;
        if (txn_hist) {
            txn_hist->record((threadCpuNs() - txn_cpu0) +
                             (pm::PmDevice::threadModelNs() - txn_m0));
        }
    }

    out.activeNs = (threadCpuNs() - cpu_start) +
                   pm::PmDevice::threadModelNs();
}

} // namespace

MtResult
runMtInsertBench(const MtConfig &config)
{
    FASP_ASSERT(config.threads >= 1);

    pm::PmConfig pm_cfg;
    pm_cfg.size = config.deviceSize ? config.deviceSize
                                    : autoDeviceSize(config);
    pm_cfg.mode = pm::PmMode::Direct;
    pm_cfg.latency = config.latency;
    pm::PmDevice device(pm_cfg);

    EngineConfig engine_cfg;
    engine_cfg.kind = config.kind;
    engine_cfg.inPlaceCommitVia = config.commitVia;
    engine_cfg.pcas = config.pcas;
    engine_cfg.format.logLen = 16u << 20;
    auto engine_res = Engine::create(device, engine_cfg, true);
    if (!engine_res.isOk())
        faspFatal("mt bench: engine create failed: %s",
                  engine_res.status().toString().c_str());
    std::unique_ptr<Engine> engine = std::move(*engine_res);

    auto tree_res = engine->createTree(2);
    if (!tree_res.isOk())
        faspFatal("mt bench: tree create failed");
    btree::BTree tree = *tree_res;

    pm::PersistencyChecker checker;
    if (config.attachChecker)
        device.setChecker(&checker);
    obs::PmAttribution attribution;
    if (obs::enabled())
        device.setObserver(&attribution);
    device.invalidateTagCache();
    device.stats().reset();
    engine->stats().reset();

    std::vector<ClientResult> clients(config.threads);
    std::vector<std::thread> workers;
    workers.reserve(config.threads);

    auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < config.threads; ++t) {
        workers.emplace_back(clientLoop, std::ref(*engine), tree,
                             std::cref(config), t,
                             std::ref(clients[t]));
    }
    for (auto &w : workers)
        w.join();
    auto wall_end = std::chrono::steady_clock::now();

    MtResult result;
    result.threads = config.threads;
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    // Makespan model: clients of the latch-based engines overlap
    // except where they conflict (and the losers' retries are already
    // charged to them), so the slowest client bounds the run. The
    // buffered baselines hold a whole-transaction mutex — client work
    // never overlaps, and blocking on a mutex burns no CPU — so their
    // makespan is the *sum* of per-client active time.
    bool overlapping = config.kind == EngineKind::Fast ||
                       config.kind == EngineKind::Fash;
    std::uint64_t makespan = 0;
    for (const ClientResult &c : clients) {
        result.txns += c.committed;
        result.conflictRetries += c.retries;
        makespan = overlapping ? std::max(makespan, c.activeNs)
                               : makespan + c.activeNs;
    }
    result.modeledSeconds = static_cast<double>(makespan) * 1e-9;
    result.txnsPerSecond =
        result.modeledSeconds > 0
            ? static_cast<double>(result.txns) / result.modeledSeconds
            : 0;
    result.engineStats = engine->stats();
    result.pmStats = device.stats();
    if (auto *fasp = dynamic_cast<core::FaspEngine *>(engine.get())) {
        result.rtmStats = fasp->rtm().stats();
        result.pcasStats = fasp->pcas().stats();
    }

    if (config.attachChecker) {
        device.setChecker(nullptr);
        result.checkerViolations = checker.report().total();
    }
    if (obs::enabled()) {
        device.setObserver(nullptr);
        obs::PhaseLedger::global().fold(
            core::engineKindName(config.kind), attribution);
    }

    // Single-threaded consistency check: the tree must hold exactly
    // the committed keys.
    auto counted = tree.count(engine->begin()->pageIO());
    if (!counted.isOk())
        faspFatal("mt bench: post-run count failed");
    if (*counted != result.txns)
        faspFatal("mt bench: tree holds %llu records, %llu committed",
                  static_cast<unsigned long long>(*counted),
                  static_cast<unsigned long long>(result.txns));
    std::vector<std::uint8_t> read_back;
    for (const ClientResult &c : clients) {
        for (std::uint64_t key : c.keys) {
            Status status = engine->get(tree, key, read_back);
            if (!status.isOk())
                faspFatal("mt bench: committed key %llu missing: %s",
                          static_cast<unsigned long long>(key),
                          status.toString().c_str());
        }
    }
    return result;
}

namespace {

std::size_t
autoYcsbDeviceSize(const MtYcsbConfig &config)
{
    std::size_t records = config.threads *
        (config.preloadPerThread + config.opsPerThread);
    std::size_t data = records * (config.recordSize + 96);
    std::size_t size = 3 * data + (48u << 20);
    size = (size + (1u << 20) - 1) & ~((std::size_t{1} << 20) - 1);
    return size;
}

struct YcsbClientResult
{
    std::uint64_t ops = 0;
    std::uint64_t opCounts[5] = {};
    std::uint64_t scanned = 0;
    std::uint64_t retries = 0;
    std::uint64_t activeNs = 0;
    std::vector<std::uint64_t> opNs; //!< per-op CPU + modelled PM time
};

/** One YCSB op as one (or for RMW, one two-step) transaction.
 *  Throws LatchConflict for the caller's retry loop. */
Status
runYcsbOp(Engine &engine, btree::BTree &tree,
          const workload::YcsbOpSpec &op,
          std::span<const std::uint8_t> value,
          std::vector<std::uint8_t> &scratch, std::uint64_t &scanned)
{
    switch (op.type) {
      case workload::YcsbOp::Read:
        return engine.get(tree, op.key, scratch);
      case workload::YcsbOp::Update:
        return engine.update(tree, op.key, value);
      case workload::YcsbOp::Insert: {
        Status status = engine.insert(tree, op.key, value);
        // A hashed-index collision across clients: the record exists,
        // which is all the workload model requires.
        if (status.code() == StatusCode::AlreadyExists)
            return Status::ok();
        return status;
      }
      case workload::YcsbOp::Scan: {
        std::uint32_t remaining = op.scanLen;
        std::uint64_t visited = 0;
        Status status = engine.scan(
            tree, op.key, ~std::uint64_t{0},
            [&](std::uint64_t, std::span<const std::uint8_t>) {
                ++visited;
                return --remaining > 0;
            });
        scanned += visited;
        return status;
      }
      case workload::YcsbOp::ReadModifyWrite: {
        auto tx = engine.begin();
        Status status = tree.get(tx->pageIO(), op.key, scratch);
        if (status.isOk())
            status = tree.update(tx->pageIO(), op.key, value);
        if (!status.isOk()) {
            tx->rollback();
            return status;
        }
        return tx->commit();
      }
    }
    faspPanic("bad ycsb op");
}

void
ycsbClientLoop(Engine &engine, btree::BTree tree,
               const MtYcsbConfig &config, std::size_t tid,
               YcsbClientResult &out)
{
    workload::YcsbWorkload::Options wl_opt;
    wl_opt.mix = workload::ycsbMix(config.mix);
    wl_opt.seed = config.seed + 1000 * (tid + 1);
    wl_opt.preload = config.preloadPerThread;
    wl_opt.order = config.order;
    wl_opt.indexOffset = tid;
    wl_opt.indexStride = config.threads;
    workload::YcsbWorkload wl(wl_opt);

    workload::ValueGen values = workload::ValueGen::fixed(
        config.recordSize, config.seed + tid + 1);
    std::vector<std::uint8_t> value;
    std::vector<std::uint8_t> scratch;
    out.opNs.reserve(config.opsPerThread);

    pm::PmDevice::resetThreadModelNs();
    std::uint64_t cpu_start = threadCpuNs();

    std::uint64_t backoff_us = 0;
    while (out.ops < config.opsPerThread) {
        workload::YcsbOpSpec op = wl.next();
        values.next(value);
        std::uint64_t op_cpu0 = threadCpuNs();
        std::uint64_t op_m0 = pm::PmDevice::threadModelNs();
        Status status = Status::ok();
        // Retry THIS op on latch conflicts: the workload already
        // advanced its state for it (an Insert consumed a key index),
        // so drawing a fresh op instead would silently drop the key
        // the post-run verification — rightly — expects.
        for (;;) {
            try {
                status = runYcsbOp(engine, tree, op,
                                   std::span<const std::uint8_t>(value),
                                   scratch, out.scanned);
                break;
            } catch (const LatchConflict &) {
                out.retries++;
                backoff_us = backoff_us ? std::min<std::uint64_t>(
                                              backoff_us * 2, 256)
                                        : 1;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(backoff_us));
            }
        }
        if (!status.isOk())
            faspFatal("ycsb %s on key %llu failed: %s",
                      workload::ycsbOpName(op.type),
                      static_cast<unsigned long long>(op.key),
                      status.toString().c_str());
        backoff_us = 0;
        out.opCounts[static_cast<std::size_t>(op.type)]++;
        out.ops++;
        out.opNs.push_back((threadCpuNs() - op_cpu0) +
                           (pm::PmDevice::threadModelNs() - op_m0));
    }

    out.activeNs = (threadCpuNs() - cpu_start) +
                   pm::PmDevice::threadModelNs();
}

} // namespace

MtYcsbResult
runMtYcsbBench(const MtYcsbConfig &config)
{
    FASP_ASSERT(config.threads >= 1);

    pm::PmConfig pm_cfg;
    pm_cfg.size = config.deviceSize ? config.deviceSize
                                    : autoYcsbDeviceSize(config);
    pm_cfg.mode = pm::PmMode::Direct;
    pm_cfg.latency = config.latency;
    pm::PmDevice device(pm_cfg);

    EngineConfig engine_cfg;
    engine_cfg.kind = config.kind;
    engine_cfg.inPlaceCommitVia = config.commitVia;
    engine_cfg.pcas = config.pcas;
    engine_cfg.format.logLen = 16u << 20;
    auto engine_res = Engine::create(device, engine_cfg, true);
    if (!engine_res.isOk())
        faspFatal("ycsb bench: engine create failed: %s",
                  engine_res.status().toString().c_str());
    std::unique_ptr<Engine> engine = std::move(*engine_res);

    auto tree_res = engine->createTree(2);
    if (!tree_res.isOk())
        faspFatal("ycsb bench: tree create failed");
    btree::BTree tree = *tree_res;

    // Preload every client's slice single-threaded (load phase is not
    // measured; YCSB times only the transaction phase).
    {
        workload::ValueGen values =
            workload::ValueGen::fixed(config.recordSize, config.seed);
        std::vector<std::uint8_t> value;
        for (std::size_t t = 0; t < config.threads; ++t) {
            workload::YcsbWorkload::Options wl_opt;
            wl_opt.mix = workload::ycsbMix(config.mix);
            wl_opt.preload = config.preloadPerThread;
            wl_opt.order = config.order;
            wl_opt.indexOffset = t;
            wl_opt.indexStride = config.threads;
            workload::YcsbWorkload wl(wl_opt);
            for (std::uint64_t i = 0; i < config.preloadPerThread; ++i) {
                values.next(value);
                Status status = engine->insert(
                    tree, wl.keyOfIndex(i),
                    std::span<const std::uint8_t>(value));
                if (!status.isOk() &&
                    status.code() != StatusCode::AlreadyExists)
                    faspFatal("ycsb bench: preload failed: %s",
                              status.toString().c_str());
            }
        }
    }

    pm::PersistencyChecker checker;
    if (config.attachChecker)
        device.setChecker(&checker);
    obs::PmAttribution attribution;
    if (obs::enabled())
        device.setObserver(&attribution);
    device.invalidateTagCache();
    device.stats().reset();
    engine->stats().reset();

    std::vector<YcsbClientResult> clients(config.threads);
    std::vector<std::thread> workers;
    workers.reserve(config.threads);

    auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < config.threads; ++t) {
        workers.emplace_back(ycsbClientLoop, std::ref(*engine), tree,
                             std::cref(config), t,
                             std::ref(clients[t]));
    }
    for (auto &w : workers)
        w.join();
    auto wall_end = std::chrono::steady_clock::now();

    MtYcsbResult result;
    result.threads = config.threads;
    result.wallSeconds =
        std::chrono::duration<double>(wall_end - wall_start).count();
    bool overlapping = config.kind == EngineKind::Fast ||
                       config.kind == EngineKind::Fash;
    std::uint64_t makespan = 0;
    std::vector<std::uint64_t> all_op_ns;
    for (const YcsbClientResult &c : clients) {
        result.ops += c.ops;
        result.scannedRecords += c.scanned;
        result.conflictRetries += c.retries;
        for (std::size_t i = 0; i < 5; ++i)
            result.opCounts[i] += c.opCounts[i];
        makespan = overlapping ? std::max(makespan, c.activeNs)
                               : makespan + c.activeNs;
        all_op_ns.insert(all_op_ns.end(), c.opNs.begin(), c.opNs.end());
    }
    result.modeledSeconds = static_cast<double>(makespan) * 1e-9;
    result.opsPerSecond =
        result.modeledSeconds > 0
            ? static_cast<double>(result.ops) / result.modeledSeconds
            : 0;
    if (!all_op_ns.empty()) {
        std::sort(all_op_ns.begin(), all_op_ns.end());
        std::uint64_t sum = 0;
        for (std::uint64_t ns : all_op_ns)
            sum += ns;
        result.meanOpUs = static_cast<double>(sum) /
                          static_cast<double>(all_op_ns.size()) * 1e-3;
        result.p50OpUs = static_cast<double>(
                             all_op_ns[all_op_ns.size() / 2]) * 1e-3;
        result.p99OpUs = static_cast<double>(
                             all_op_ns[all_op_ns.size() * 99 / 100]) *
                         1e-3;
    }
    result.engineStats = engine->stats();
    result.pmStats = device.stats();

    if (config.attachChecker) {
        device.setChecker(nullptr);
        result.checkerViolations = checker.report().total();
    }
    if (obs::enabled()) {
        device.setObserver(nullptr);
        obs::PhaseLedger::global().fold(
            core::engineKindName(config.kind), attribution);
    }

    // Post-run verification: every key each client's workload believes
    // inserted (preload + issued inserts) must be present.
    std::vector<std::uint8_t> read_back;
    for (std::size_t t = 0; t < config.threads; ++t) {
        workload::YcsbWorkload::Options wl_opt;
        wl_opt.mix = workload::ycsbMix(config.mix);
        wl_opt.preload = config.preloadPerThread;
        wl_opt.order = config.order;
        wl_opt.indexOffset = t;
        wl_opt.indexStride = config.threads;
        workload::YcsbWorkload wl(wl_opt);
        std::uint64_t issued =
            config.preloadPerThread +
            clients[t].opCounts[static_cast<std::size_t>(
                workload::YcsbOp::Insert)];
        for (std::uint64_t i = 0; i < issued; ++i) {
            Status status =
                engine->get(tree, wl.keyOfIndex(i), read_back);
            if (!status.isOk())
                faspFatal("ycsb bench: key %llu missing post-run: %s",
                          static_cast<unsigned long long>(
                              wl.keyOfIndex(i)),
                          status.toString().c_str());
        }
    }
    return result;
}

} // namespace fasp::benchutil
