/**
 * @file
 * Benchmark harness: spins up a fresh database per (engine, latency)
 * point, runs the paper's workloads, and reports per-transaction
 * component breakdowns in the groups the paper's figures use.
 *
 * Reported times are `compute wall time + modelled PM latency`,
 * mirroring the paper's Quartz emulation (see pm/latency.h); being
 * accounting-based, they are deterministic up to CPU noise in the
 * wall-time share.
 */

#ifndef FASP_BENCH_UTIL_RUNNER_H
#define FASP_BENCH_UTIL_RUNNER_H

#include <array>
#include <memory>
#include <string>

#include "core/engine.h"
#include "pm/device.h"
#include "pm/phase.h"
#include "workload/workload.h"

namespace fasp::benchutil {

/** One benchmark point. */
struct BenchConfig
{
    core::EngineKind kind = core::EngineKind::Fast;
    pm::LatencyModel latency = pm::LatencyModel::of(300, 300);
    std::size_t numTxns = 20000;
    std::size_t recordSize = 64;       //!< value bytes per record
    std::size_t recordsPerTxn = 1;
    workload::KeyPattern keys = workload::KeyPattern::UniformRandom;
    std::uint64_t seed = 42;
    std::size_t deviceSize = 0;        //!< 0 = sized automatically
    htm::RtmConfig rtm;                //!< FAST abort injection
    bool useClwb = false;              //!< CLWB vs CLFLUSH ablation

    /** FAST in-place commit mechanism (PCAS default vs RTM). */
    core::InPlaceCommitVia commitVia = core::InPlaceCommitVia::Pcas;
    pm::PcasConfig pcas;               //!< PCAS failure injection
};

/** Everything measured for one point. */
struct BenchResult
{
    pm::PhaseTracker tracker;
    pm::PmStats pmStats;
    core::EngineStats engineStats;
    htm::RtmStats rtmStats;
    pm::PcasStats pcasStats;
    std::uint64_t txns = 0;
    double wallSeconds = 0;

    /** Average ns/transaction attributed to @p comp. */
    double perTxnNs(pm::Component comp) const;

    /** clflush instructions per transaction. */
    double flushesPerTxn() const;
};

/** The paper's figure groups. */
struct Groups
{
    double searchNs = 0;     //!< Fig. 6 "Search"
    double pageUpdateNs = 0; //!< Fig. 6 "Page Update"
    double commitNs = 0;     //!< Fig. 6 "Commit"

    double totalNs() const
    {
        return searchNs + pageUpdateNs + commitNs;
    }
};

/**
 * Group per-txn component times as the paper's Figure 6 does. Lazy
 * checkpointing (NVWAL / legacy WAL) is excluded from Commit, as in
 * the paper ("NVWAL performs checkpointing in a lazy manner").
 */
Groups groupComponents(const BenchResult &result,
                       core::EngineKind kind);

/** Sum of the Figure 7 Page Update sub-components per txn. */
double pageUpdateNs(const BenchResult &result);

/** Sum of the Figure 8 Commit sub-components per txn. */
double commitNs(const BenchResult &result, core::EngineKind kind);

/**
 * The paper's main workload: @p numTxns transactions, each inserting
 * @p recordsPerTxn records with random keys.
 */
BenchResult runInsertBench(const BenchConfig &config);

/** Every engine kind, in the paper's comparison order. */
std::array<core::EngineKind, 3> paperEngines();

/** All five engines (for the ablation tables). */
std::array<core::EngineKind, 5> allEngines();

/** "300/600" style label for a latency model. */
std::string latencyLabel(const pm::LatencyModel &latency);

/** Parse "--n NNN" / "--n=NNN" / "--quick" style benchmark argv knobs.
 *  Both `--flag=value` and `--flag value` forms are accepted, at any
 *  argv position.
 *
 *   --n=NNN       transaction/op count
 *   --quick       2000 txns (fast local iteration)
 *   --smoke       300 txns (CI smoke: exercises every code path, no
 *                 measurement value)
 *   --json=PATH   also write the printed tables as a JSON report
 *   --clients=N   multi-client mode with N threads (benches that
 *                 support it; 0 = single-threaded latency sweep)
 *   --metrics=PATH  enable the obs layer and write its export here
 *                 (Prometheus text when PATH ends in ".prom", JSON
 *                 otherwise)
 *   --trace=PATH  enable the obs layer and dump the trace rings as a
 *                 chrome://tracing JSON file here
 *   --flight-recorder  enable the persistent flight recorder (off by
 *                 default; adds ~2 PM records per transaction)
 */
struct BenchArgs
{
    std::size_t numTxns = 20000;
    bool smoke = false;
    std::string jsonPath;
    std::size_t clients = 0;
    std::string metricsPath;
    std::string tracePath;
    bool flightRecorder = false;

    static BenchArgs parse(int argc, char **argv);

    /** Like parse(), but removes the recognised flags from argv (in
     *  place, compacting; argc is updated) so a wrapped arg parser —
     *  e.g. Google Benchmark's — never sees them. */
    static BenchArgs parseAndStrip(int &argc, char **argv);

    /** Write the obs export to metricsPath and the chrome trace to
     *  tracePath (each a no-op when its flag was not given). Every
     *  bench main calls this after its run. */
    void writeMetrics(const std::string &benchName) const;
};

// --- SQL-level workloads (Figures 11-12) ------------------------------------

/** Per-op-type measurements through the full SQL path. */
struct SqlBenchResult
{
    /** Average response time (wall + model) per op type, ns. */
    double insertNs = 0;
    double updateNs = 0;
    double deleteNs = 0;
    double lookupNs = 0;
    std::uint64_t inserts = 0;
    std::uint64_t updates = 0;
    std::uint64_t deletes = 0;
    std::uint64_t lookups = 0;

    /** Aggregate throughput over all ops (ops per modelled second). */
    double opsPerSecond = 0;
};

/** Configuration of the SQL workload. */
struct SqlBenchConfig
{
    core::EngineKind kind = core::EngineKind::Fast;
    pm::LatencyModel latency = pm::LatencyModel::of(300, 300);
    std::size_t numOps = 6000;
    workload::MixedWorkload::Mix mix;
    std::size_t valueSize = 100;
    std::uint64_t seed = 42;
};

/** Mobibench-style mixed op workload through Database::exec. */
SqlBenchResult runSqlBench(const SqlBenchConfig &config);

} // namespace fasp::benchutil

#endif // FASP_BENCH_UTIL_RUNNER_H
