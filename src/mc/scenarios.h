/**
 * @file
 * The workloads fasp-mc explores (DESIGN.md §13 "Scenarios").
 *
 * A Scenario describes one small multi-threaded interaction: how to
 * seed the database (setup, executed once — the durable image is then
 * snapshotted and every schedule starts from it), one closure per
 * worker thread, and the oracles — verify() after each completed
 * schedule, verifyCrash() against an engine recovered from a crash
 * image forked at an explored fence.
 *
 * Two families live here:
 *
 *  - Engine scenarios (same-page-insert, insert-vs-split, ...): drive
 *    real Engine transactions and must be violation-free; fasp-mc
 *    failing one of these is a real engine bug.
 *
 *  - Negative fixtures (bug-*): seeded bugs that the checker MUST flag
 *    within a bounded schedule budget; they keep the model checker
 *    honest and are run as must-fail checks in CI.
 */

#ifndef FASP_MC_SCENARIOS_H
#define FASP_MC_SCENARIOS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mc/scheduler.h"

namespace fasp::core {
class Engine;
struct EngineConfig;
} // namespace fasp::core

namespace fasp::pm {
class PmDevice;
} // namespace fasp::pm

namespace fasp::mc {

class Scenario
{
  public:
    virtual ~Scenario() = default;

    virtual const char *name() const = 0;
    virtual const char *description() const = 0;
    virtual int threadCount() const = 0;

    /** False for the toy fixtures that drive the PM device directly;
     *  the harness then creates no engine and starts from a zeroed
     *  image. */
    virtual bool usesEngine() const { return true; }

    /** True for seeded-bug fixtures: exploration MUST find a
     *  violation (the CLI inverts the exit code for these). */
    virtual bool expectsViolation() const { return false; }

    /** Engine-config adjustments for this scenario, applied before the
     *  format (e.g. a small page size so multi-level split chains stay
     *  reachable within a tiny seed set). */
    virtual void tuneConfig(core::EngineConfig &cfg) const
    {
        (void)cfg;
    }

    /** Seed the database; runs once, before the image snapshot. */
    virtual void setup(core::Engine &engine) { (void)engine; }

    /** Clear per-schedule state (committed markers); runs before every
     *  schedule. */
    virtual void reset() {}

    /** The closure worker @p tid executes under the scheduler.
     *  @p engine is null when usesEngine() is false. */
    virtual std::function<void()> body(int tid, core::Engine *engine,
                                       pm::PmDevice &device) = 0;

    /** Post-schedule oracle (quiescent, hooks uninstalled). */
    virtual void verify(core::Engine *engine, pm::PmDevice &device,
                        std::vector<McViolation> &out)
    {
        (void)engine;
        (void)device;
        (void)out;
    }

    /** Crash-fork oracle: @p recovered was recovered from an image
     *  forked at a fence mid-schedule. Committed markers reflect the
     *  fork instant (every thread is stopped while this runs). */
    virtual void verifyCrash(core::Engine &recovered,
                             pm::PmDevice &forkDevice,
                             std::vector<McViolation> &out)
    {
        (void)recovered;
        (void)forkDevice;
        (void)out;
    }

    /** Crash-fork oracle for usesEngine()==false scenarios: the fork
     *  device holds the raw crash image — the scenario owns whatever
     *  recovery protocol applies to it. */
    virtual void verifyCrashRaw(pm::PmDevice &forkDevice,
                                std::vector<McViolation> &out)
    {
        (void)forkDevice;
        (void)out;
    }
};

/** Registered scenario names, in presentation order. */
std::vector<std::string> scenarioNames();

/** Instantiate by name; null for unknown names. */
std::unique_ptr<Scenario> makeScenario(const std::string &name);

} // namespace fasp::mc

#endif // FASP_MC_SCENARIOS_H
