/**
 * @file
 * CoopScheduler: the deterministic cooperative scheduler at the heart
 * of fasp-mc (DESIGN.md §13).
 *
 * The instrumented primitives (fasp::Mutex, pager::PageLatch, htm::Rtm,
 * pm::PmDevice) raise a SchedulerHook point *before* every visible
 * synchronization or persistence operation. CoopScheduler implements
 * that hook so that at any instant exactly one worker thread is
 * running; every other participant is parked on a per-thread condition
 * variable. When the running thread reaches a point it parks itself and
 * — still holding the scheduler lock — decides who runs next (a
 * decision-vector prefix replays a recorded schedule; past the prefix a
 * deterministic default policy applies) and hands the CPU over
 * directly. OS scheduling therefore never influences the interleaving:
 * the recorded decision vector IS the schedule, and re-running it
 * reproduces the execution bit for bit.
 *
 * Blocking is modelled without ever sleeping inside the primitives:
 * an acquire that fails raises onBlocked and the thread leaves the
 * eligible set until some thread releases the resource (onRelease marks
 * the waiters runnable again — without waking them; the wake happens
 * only when a later decision grants them the CPU and they retry the
 * CAS). Latch acquisition has a second exit: when every runnable thread
 * is latch-blocked the scheduler force-wakes one with a *conflict*
 * verdict (onBlocked returns false), modelling the production
 * spin-budget expiry that turns into a LatchConflict abort. If every
 * blocked thread is mutex-blocked there is no such exit: that is a real
 * deadlock, reported as a violation and the run aborted.
 */

#ifndef FASP_MC_SCHEDULER_H
#define FASP_MC_SCHEDULER_H

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sched_hook.h"

namespace fasp::mc {

/** Maximum worker threads per run; scenarios use two or three. */
constexpr std::size_t kMaxThreads = 4;

/** The operation a thread is about to perform at its pending point. */
struct PendingOp
{
    HookOp op = HookOp::ThreadStart;
    const void *addr = nullptr;
    std::size_t len = 1;

    /** Stable small id for the resource behind addr: dense
     *  first-seen-order numbering per run, so traces are byte-identical
     *  across processes even though addresses are not. PM addresses are
     *  first rounded down to their 64-byte line. */
    std::uint32_t token = 0;
};

/** One scheduling decision, with everything the explorer needs to
 *  branch: who was eligible, what each eligible thread would have done,
 *  and whether the step was forced (no alternatives exist). */
struct StepRecord
{
    std::uint8_t chosen = 0;
    std::uint8_t prevRunning = 0xff; //!< thread that ran before this
                                     //!< decision (0xff: none)
    bool forced = false;             //!< forced latch-conflict wake
    std::uint8_t eligible = 0;       //!< bitmask of runnable threads
    std::array<PendingOp, kMaxThreads> pending{}; //!< valid where
                                                  //!< eligible (and at
                                                  //!< `chosen` always)
};

/** A property the run violated; the explorer aggregates these. */
struct McViolation
{
    enum class Kind : std::uint8_t {
        Deadlock,      //!< every live thread mutex-blocked
        Livelock,      //!< per-run step budget exhausted
        Checker,       //!< persistency checker reported
        Oracle,        //!< scenario's serializability oracle failed
        Recovery,      //!< recovery on a forked crash image failed
        Fsck,          //!< page invariant (slottedFsck) failed
        ScenarioError, //!< worker body threw / op unexpectedly failed
        Diverged,      //!< replayed prefix did not reproduce
    };

    Kind kind;
    std::string message;
};

const char *mcViolationKindName(McViolation::Kind kind);

/** Thrown into participating threads when the scheduler aborts a run
 *  (deadlock / livelock / divergence): unwinds the worker body. */
struct RunAborted
{};

/** Everything one schedule execution produced. */
struct RunResult
{
    std::vector<StepRecord> steps;
    std::vector<McViolation> violations;
    std::size_t fencePoints = 0; //!< PmFence points granted
};

class CoopScheduler : public SchedulerHook
{
  public:
    struct Options
    {
        /** Decision-vector prefix: steps_[i].chosen is forced to
         *  prefix[i] while i < prefix.size(); past the end the default
         *  policy (continue the previous thread, else lowest eligible)
         *  takes over. */
        std::vector<std::uint8_t> prefix;

        /** Livelock guard: abort the run after this many decisions. */
        std::size_t maxSteps = 200000;
    };

    /** Invoked when a PmFence point is granted, before the fence
     *  executes — the instant a crash image is forked. Runs with every
     *  thread stopped, under the scheduler lock and a HookDepthGuard
     *  (so engine work inside the callback raises no points). May
     *  append violations. */
    using FenceFn = std::function<void(std::size_t fenceIndex,
                                       std::vector<McViolation> &out)>;

    /** Execute one schedule: spawn a thread per body, serialize them
     *  per `opt`, join everything, and report. The hook is installed
     *  for the duration of the call and removed before returning. */
    RunResult run(const std::vector<std::function<void()>> &bodies,
                  const Options &opt, FenceFn onFence = {});

    // --- SchedulerHook ---------------------------------------------------
    void atPoint(HookOp op, const void *addr, std::size_t len) override;
    bool onBlocked(HookOp op, const void *addr) override;
    void onRelease(HookOp op, const void *addr) override;

  private:
    enum class TState : std::uint8_t {
        Spawning, //!< thread created, ThreadStart point not yet parked
        Parked,   //!< at a point, waiting to be granted the CPU
        Running,  //!< the one thread currently executing
        Blocked,  //!< acquire failed; not eligible until a release
        Finished, //!< body returned (or unwound)
    };

    struct ThreadSlot
    {
        TState state = TState::Spawning;
        PendingOp pending{};
        const void *blockedOn = nullptr;
        bool blockedOnLatch = false;
        bool granted = false;
        bool forcedConflict = false;
        bool thrownAbort = false; //!< RunAborted already delivered
        std::condition_variable cv;
    };

    std::uint32_t tokenForLocked(HookOp op, const void *addr);
    void decideLocked(std::unique_lock<std::mutex> &lk);
    void grantLocked(int idx, bool forced);
    void abortRunLocked(McViolation::Kind kind, std::string msg);
    void maybeThrowAbortLocked(int self);
    void finishSelf(int self);
    void workerMain(int idx, const std::function<void()> &body);
    std::size_t countState(TState s) const;
    std::string describeBlockedLocked() const;

    std::mutex mu_;
    std::condition_variable controllerCv_;
    std::array<ThreadSlot, kMaxThreads> threads_;
    std::size_t nthreads_ = 0;
    int running_ = -1;
    std::uint8_t lastRunning_ = 0xff;
    bool aborting_ = false;
    bool done_ = false;
    std::vector<StepRecord> steps_;
    std::vector<McViolation> violations_;
    std::vector<std::uint8_t> prefix_;
    std::size_t maxSteps_ = 0;
    std::size_t fenceCount_ = 0;
    FenceFn onFence_;
    std::map<std::pair<std::uint8_t, std::uintptr_t>, std::uint32_t>
        tokens_;
    std::uint32_t nextToken_ = 0;

    static thread_local int t_self;
};

} // namespace fasp::mc

#endif // FASP_MC_SCHEDULER_H
