/**
 * @file
 * Explorer: bounded-preemption stateless search over schedules
 * (DESIGN.md §13).
 *
 * fasp-mc is a CHESS-style stateless model checker: it re-executes the
 * scenario once per schedule, each time forcing the CoopScheduler
 * through a decision-vector prefix and letting the deterministic
 * default policy finish the run. The explorer maintains a DFS over
 * prefixes with two DPOR-lite pruning sources feeding the backtrack
 * sets:
 *
 *  - eager branching: at every recorded step, alternatives are queued
 *    only for eligible threads whose pending operation is *dependent*
 *    on the operation the chosen thread executed (two independent
 *    operations commute — exploring both orders proves nothing);
 *
 *  - race analysis: after each run, for every executed step the nearest
 *    earlier dependent step by another thread gets the later thread
 *    queued as an alternative, catching conflicts that were not yet
 *    pending when the earlier decision was made.
 *
 * Schedules that switch away from a runnable thread more than
 * `preemptionBound` times are pruned (bounded-preemption search: most
 * concurrency bugs need very few preemptions).
 *
 * Each run starts from a snapshot image taken after scenario setup;
 * the device is rewound in place, a fresh persistency checker is
 * attached, and (for engine scenarios) the engine is re-opened without
 * formatting. At explored fences the harness can fork the crash image
 * a power failure at that instant would leave, load it into a scratch
 * device, run recovery plus forensics on it, and apply the scenario's
 * crash oracle — all while the real run stays suspended.
 */

#ifndef FASP_MC_EXPLORER_H
#define FASP_MC_EXPLORER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "mc/scenarios.h"
#include "mc/trace.h"
#include "pm/checker.h"
#include "pm/device.h"

namespace fasp::mc {

struct ExploreOptions
{
    core::EngineKind engine = core::EngineKind::Fast;
    std::uint64_t seed = 1;
    std::uint64_t maxSchedules = 2000;
    int preemptionBound = 2;

    /** Fork a crash image at every Nth explored fence (0: never). */
    std::uint32_t crashEvery = 0;
    pm::CrashPolicy crashPolicy = pm::CrashPolicy::TornLines;

    std::size_t maxStepsPerRun = 200000;

    /** Keep exploring after a violating schedule. */
    bool keepGoing = false;

    /** Directory for trace files (empty: none are written). Violating
     *  schedules are always dumped when set. */
    std::string traceDir;

    /** Additionally dump every Nth schedule's trace (0: violations
     *  only). The determinism test uses 1 and byte-compares runs. */
    std::uint32_t traceEvery = 0;
};

struct ScheduleFailure
{
    std::uint64_t scheduleIndex = 0;
    std::vector<McViolation> violations;
    std::string tracePath; //!< empty if no traceDir configured
};

struct ExploreResult
{
    std::uint64_t schedules = 0; //!< distinct schedules executed
    std::uint64_t totalSteps = 0;
    std::uint64_t crashForks = 0;
    std::uint64_t maxDepth = 0;  //!< longest schedule (steps)
    bool exhausted = false;      //!< search space fully covered
    std::vector<ScheduleFailure> failures;
};

class Explorer
{
  public:
    /** Builds the harness: devices, engine format + scenario setup,
     *  snapshot. Panics if setup itself fails (that is a harness bug,
     *  not a finding). */
    Explorer(Scenario &scenario, const ExploreOptions &opt);
    ~Explorer();

    Explorer(const Explorer &) = delete;
    Explorer &operator=(const Explorer &) = delete;

    ExploreResult explore();

    /** Re-execute one recorded schedule, cross-checking every decision
     *  against the trace (op + resource token). Divergence is reported
     *  as a violation in the result. */
    RunResult replay(const TraceFile &trace);

    /** Fill the reproducibility header of a trace for this harness. */
    TraceFile traceTemplate() const;

  private:
    struct PathNode
    {
        std::uint8_t chosen = 0;
        bool forced = false;
        std::uint8_t eligible = 0;
        std::uint8_t prevRunning = 0xff;
        std::array<PendingOp, kMaxThreads> pending{};
        int preemptions = 0;       //!< cumulative BEFORE this step
        std::uint32_t doneMask = 0;
        std::vector<std::uint8_t> todo;
    };

    RunResult runOnce(const std::vector<std::uint8_t> &prefix,
                      std::uint64_t scheduleIndex);
    void crashFork(std::size_t fenceIndex, std::uint64_t scheduleIndex,
                   std::vector<McViolation> &out);
    void fsckSweep(pm::PmDevice &device, bool trustScratch,
                   std::vector<McViolation> &out);
    bool wouldPreempt(const PathNode &node, std::uint8_t pick) const;
    void addAlternative(std::size_t nodeIndex, std::uint8_t pick);
    std::string writeTraceFor(const RunResult &run,
                              std::uint64_t scheduleIndex);

    Scenario &scenario_;
    ExploreOptions opt_;
    core::EngineConfig cfg_;
    std::unique_ptr<pm::PmDevice> device_;
    std::unique_ptr<pm::PmDevice> forkDevice_;
    std::vector<std::uint8_t> snapshot_;
    std::vector<std::uint8_t> forkImage_; //!< reused scratch buffer
    std::unique_ptr<pm::PersistencyChecker> checker_;
    CoopScheduler sched_;
    std::vector<PathNode> path_;
    std::uint64_t crashForkCount_ = 0;
};

/** Parse an engine kind name ("FAST", "NVWAL", ...; case-insensitive).
 *  Returns false for unknown names. */
bool parseEngineKind(const std::string &name, core::EngineKind &out);

} // namespace fasp::mc

#endif // FASP_MC_EXPLORER_H
