#include "mc/scenarios.h"

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>

#include "btree/btree.h"
#include "common/logging.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "page/slotted_page.h"
#include "pager/latch_table.h"
#include "pm/device.h"
#include "pm/pcas.h"

namespace fasp::mc {

namespace {

constexpr TreeId kTreeId = 1;

std::vector<std::uint8_t>
val(std::size_t n, std::uint8_t fill)
{
    return std::vector<std::uint8_t>(n, fill);
}

/** Shared plumbing for the real-engine scenarios: per-thread
 *  committed/failed markers and the bounded LatchConflict retry loop
 *  every concurrent client of the FAST engine needs. */
class EngineScenario : public Scenario
{
  public:
    void reset() override
    {
        for (auto &f : committed_)
            f.store(false, std::memory_order_relaxed);
        for (auto &f : failed_)
            f.store(false, std::memory_order_relaxed);
        for (auto &s : starved_)
            s.store(false, std::memory_order_relaxed);
        for (auto &m : failMsg_)
            m.clear();
    }

  protected:
    static constexpr int kRetryBudget = 128;

    bool committedAt(int tid) const
    {
        return committed_[static_cast<std::size_t>(tid)].load(
            std::memory_order_relaxed);
    }

    /** Run one single-op transaction, retrying latch conflicts with a
     *  yield point between attempts (the production retry idiom). A
     *  non-Ok status marks the thread failed — verify() turns that
     *  into a violation. Exhausting the budget marks it *starved*:
     *  under an adversarial schedule the bounded retry loop can
     *  legitimately give up (SQLite returns SQLITE_BUSY there), so
     *  the oracle accepts it — but then demands the operation left no
     *  trace at all. */
    void runOp(int tid, const std::function<Status()> &op)
    {
        auto t = static_cast<std::size_t>(tid);
        for (int attempt = 0; attempt < kRetryBudget; ++attempt) {
            try {
                Status s = op();
                if (s.isOk()) {
                    committed_[t].store(true,
                                        std::memory_order_relaxed);
                } else {
                    failMsg_[t] = s.toString();
                    failed_[t].store(true, std::memory_order_relaxed);
                }
                return;
            } catch (const LatchConflict &) {
                yieldPoint();
            }
        }
        starved_[t].store(true, std::memory_order_relaxed);
    }

    bool starvedAt(int tid) const
    {
        return starved_[static_cast<std::size_t>(tid)].load(
            std::memory_order_relaxed);
    }

    void checkAllCommitted(std::vector<McViolation> &out) const
    {
        for (int i = 0; i < threadCount(); ++i) {
            auto t = static_cast<std::size_t>(i);
            if (failed_[t].load(std::memory_order_relaxed) ||
                (!committedAt(i) && !starvedAt(i))) {
                std::string why = failMsg_[t].empty()
                                      ? std::string("no commit marker")
                                      : failMsg_[t];
                out.push_back({McViolation::Kind::Oracle,
                               std::string(name()) + ": T" +
                                   std::to_string(i) +
                                   " failed to commit: " + why});
            }
        }
    }

    static void checkTree(core::Engine &engine,
                          std::vector<McViolation> &out,
                          const char *when)
    {
        auto tx = engine.begin();
        btree::BTree tree(kTreeId);
        Status s = tree.checkIntegrity(tx->pageIO());
        tx->rollback();
        if (!s.isOk()) {
            out.push_back({McViolation::Kind::Fsck,
                           std::string("tree integrity (") + when +
                               "): " + s.toString()});
        }
    }

    static void checkKeyEquals(core::Engine &engine, std::uint64_t key,
                               const std::vector<std::uint8_t> &want,
                               std::vector<McViolation> &out,
                               const char *when)
    {
        btree::BTree tree(kTreeId);
        std::vector<std::uint8_t> got;
        Status s = engine.get(tree, key, got);
        if (!s.isOk()) {
            out.push_back({McViolation::Kind::Oracle,
                           std::string("key ") + std::to_string(key) +
                               " missing (" + when +
                               "): " + s.toString()});
        } else if (got != want) {
            out.push_back({McViolation::Kind::Oracle,
                           std::string("key ") + std::to_string(key) +
                               " has wrong value (" + when + ")"});
        }
    }

    /** The key must be entirely absent (a starved/failed operation
     *  may leave no partial trace). */
    static void checkKeyAbsent(core::Engine &engine, std::uint64_t key,
                               std::vector<McViolation> &out,
                               const char *when)
    {
        btree::BTree tree(kTreeId);
        std::vector<std::uint8_t> got;
        Status s = engine.get(tree, key, got);
        if (s.isOk()) {
            out.push_back({McViolation::Kind::Oracle,
                           std::string("key ") + std::to_string(key) +
                               " present although its transaction "
                               "never committed (" +
                               when + ")"});
        }
    }

    /** Crash-fork oracle for an operation whose commit marker is not
     *  set: the fork may have caught it after its durable commit
     *  point but before the marker store, so absent OR exactly-right
     *  are both fine; anything else is a torn commit. */
    static void checkKeyAbsentOrEquals(
        core::Engine &engine, std::uint64_t key,
        const std::vector<std::uint8_t> &want,
        std::vector<McViolation> &out, const char *when)
    {
        btree::BTree tree(kTreeId);
        std::vector<std::uint8_t> got;
        Status s = engine.get(tree, key, got);
        if (s.isOk() && got != want) {
            out.push_back({McViolation::Kind::Oracle,
                           std::string("key ") + std::to_string(key) +
                               " holds a torn value (" + when + ")"});
        }
    }

    std::array<std::atomic<bool>, kMaxThreads> committed_{};
    std::array<std::atomic<bool>, kMaxThreads> failed_{};
    std::array<std::atomic<bool>, kMaxThreads> starved_{};
    /** Written only by the owning worker, read after the join. */
    std::array<std::string, kMaxThreads> failMsg_{};
};

/** N threads insert distinct keys into the same (seeded) leaf. */
class SamePageInsert final : public EngineScenario
{
  public:
    explicit SamePageInsert(int threads) : threads_(threads) {}

    const char *name() const override
    {
        return threads_ == 3 ? "same-page-insert-3t"
                             : "same-page-insert";
    }

    const char *description() const override
    {
        return "concurrent inserts of distinct keys into one leaf";
    }

    int threadCount() const override { return threads_; }

    void setup(core::Engine &engine) override
    {
        auto tree = engine.createTree(kTreeId);
        if (!tree.isOk())
            faspPanic("scenario setup: createTree failed");
        for (std::uint64_t k : {10, 20}) {
            Status s = engine.insert(*tree, k, seedValue());
            if (!s.isOk())
                faspPanic("scenario setup: seed insert failed");
        }
    }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)device;
        return [this, tid, engine] {
            btree::BTree tree(kTreeId);
            runOp(tid, [&] {
                return engine->insert(tree, keyFor(tid),
                                      valueFor(tid));
            });
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)device;
        checkAllCommitted(out);
        for (std::uint64_t k : {10, 20})
            checkKeyEquals(*engine, k, seedValue(), out, "verify");
        for (int i = 0; i < threads_; ++i) {
            if (committedAt(i))
                checkKeyEquals(*engine, keyFor(i), valueFor(i), out,
                               "verify");
            else
                checkKeyAbsent(*engine, keyFor(i), out, "verify");
        }
        checkTree(*engine, out, "verify");
    }

    void verifyCrash(core::Engine &recovered, pm::PmDevice &forkDevice,
                     std::vector<McViolation> &out) override
    {
        (void)forkDevice;
        for (std::uint64_t k : {10, 20})
            checkKeyEquals(recovered, k, seedValue(), out, "crash");
        for (int i = 0; i < threads_; ++i) {
            if (committedAt(i))
                checkKeyEquals(recovered, keyFor(i), valueFor(i), out,
                               "crash");
            else
                checkKeyAbsentOrEquals(recovered, keyFor(i),
                                       valueFor(i), out, "crash");
        }
        checkTree(recovered, out, "crash");
    }

  private:
    static std::vector<std::uint8_t> seedValue()
    {
        return val(8, 0x5e);
    }

    static std::uint64_t keyFor(int tid)
    {
        return 100 + static_cast<std::uint64_t>(tid);
    }

    static std::vector<std::uint8_t> valueFor(int tid)
    {
        return val(8, static_cast<std::uint8_t>(0xa0 + tid));
    }

    int threads_;
};

/** Two threads race updates of one key; the oracle accepts any
 *  serialization but nothing else (lost pre-images, mixes). */
class SamePageUpdate final : public EngineScenario
{
  public:
    const char *name() const override { return "same-page-update"; }

    const char *description() const override
    {
        return "racing updates of one key; final value must be one "
               "of the committed writes";
    }

    int threadCount() const override { return 2; }

    void setup(core::Engine &engine) override
    {
        auto tree = engine.createTree(kTreeId);
        if (!tree.isOk())
            faspPanic("scenario setup: createTree failed");
        if (!engine.insert(*tree, kKey, oldValue()).isOk())
            faspPanic("scenario setup: seed insert failed");
    }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)device;
        return [this, tid, engine] {
            btree::BTree tree(kTreeId);
            runOp(tid, [&] {
                return engine->update(tree, kKey, valueFor(tid));
            });
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)device;
        checkAllCommitted(out);
        checkValueIn(*engine, /*atCrash=*/false, out, "verify");
        checkTree(*engine, out, "verify");
    }

    void verifyCrash(core::Engine &recovered, pm::PmDevice &forkDevice,
                     std::vector<McViolation> &out) override
    {
        (void)forkDevice;
        checkValueIn(recovered, /*atCrash=*/true, out, "crash");
        checkTree(recovered, out, "crash");
    }

  private:
    /** Post-run the value must come from a *committed* update, or be
     *  the pre-image iff nobody committed (a starved update must not
     *  leak). At a crash fork any in-flight update may be past its
     *  commit fence but not yet marked, so both new values stay in
     *  the acceptable set and the pre-image is only excluded once
     *  both updates are known committed. */
    void checkValueIn(core::Engine &engine, bool atCrash,
                      std::vector<McViolation> &out,
                      const char *when) const
    {
        bool ok0 = atCrash || committedAt(0);
        bool ok1 = atCrash || committedAt(1);
        bool okOld = atCrash ? !(committedAt(0) && committedAt(1))
                             : (!committedAt(0) && !committedAt(1));
        btree::BTree tree(kTreeId);
        std::vector<std::uint8_t> got;
        Status s = engine.get(tree, kKey, got);
        if (!s.isOk()) {
            out.push_back({McViolation::Kind::Oracle,
                           std::string("updated key missing (") +
                               when + "): " + s.toString()});
            return;
        }
        if (ok0 && got == valueFor(0))
            return;
        if (ok1 && got == valueFor(1))
            return;
        if (okOld && got == oldValue())
            return;
        out.push_back({McViolation::Kind::Oracle,
                       std::string("key holds a value no committed "
                                   "update wrote (") +
                           when + ")"});
    }

    static constexpr std::uint64_t kKey = 50;

    static std::vector<std::uint8_t> oldValue()
    {
        return val(8, 0x11);
    }

    static std::vector<std::uint8_t> valueFor(int tid)
    {
        return val(8, static_cast<std::uint8_t>(0xb0 + tid));
    }
};

/** Two inserts into a nearly-full leaf: one of them must split it
 *  while the other lands concurrently. */
class InsertVsSplit final : public EngineScenario
{
  public:
    const char *name() const override { return "insert-vs-split"; }

    const char *description() const override
    {
        return "concurrent inserts into a nearly-full leaf forcing a "
               "split";
    }

    int threadCount() const override { return 2; }

    void setup(core::Engine &engine) override
    {
        auto tree = engine.createTree(kTreeId);
        if (!tree.isOk())
            faspPanic("scenario setup: createTree failed");
        // Eight ~400-byte records nearly fill a 4 KiB leaf; the two
        // worker inserts below cannot both fit, so one forces a split.
        for (std::uint64_t k = 10; k <= 80; k += 10) {
            if (!engine.insert(*tree, k, seedValue(k)).isOk())
                faspPanic("scenario setup: seed insert failed");
        }
    }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)device;
        return [this, tid, engine] {
            btree::BTree tree(kTreeId);
            runOp(tid, [&] {
                return engine->insert(tree, keyFor(tid),
                                      valueFor(tid));
            });
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)device;
        checkAllCommitted(out);
        checkContents(*engine, /*atCrash=*/false, out, "verify");
    }

    void verifyCrash(core::Engine &recovered, pm::PmDevice &forkDevice,
                     std::vector<McViolation> &out) override
    {
        (void)forkDevice;
        checkContents(recovered, /*atCrash=*/true, out, "crash");
    }

  private:
    void checkContents(core::Engine &engine, bool atCrash,
                       std::vector<McViolation> &out,
                       const char *when) const
    {
        for (std::uint64_t k = 10; k <= 80; k += 10)
            checkKeyEquals(engine, k, seedValue(k), out, when);
        for (int i = 0; i < 2; ++i) {
            if (committedAt(i))
                checkKeyEquals(engine, keyFor(i), valueFor(i), out,
                               when);
            else if (atCrash)
                checkKeyAbsentOrEquals(engine, keyFor(i), valueFor(i),
                                       out, when);
            else
                checkKeyAbsent(engine, keyFor(i), out, when);
        }
        checkTree(engine, out, when);
    }

    static std::vector<std::uint8_t> seedValue(std::uint64_t k)
    {
        return val(400, static_cast<std::uint8_t>(k));
    }

    static std::uint64_t keyFor(int tid)
    {
        return 41 + static_cast<std::uint64_t>(tid);
    }

    static std::vector<std::uint8_t> valueFor(int tid)
    {
        return val(400, static_cast<std::uint8_t>(0xc0 + tid));
    }
};

/** A growing update that needs in-page defragmentation races a reader:
 *  the reader must only ever observe the old or the new value. */
class DefragVsRead final : public EngineScenario
{
  public:
    const char *name() const override { return "defrag-vs-read"; }

    const char *description() const override
    {
        return "page defragmentation racing a reader of the same leaf";
    }

    int threadCount() const override { return 2; }

    void reset() override
    {
        EngineScenario::reset();
        badRead_.store(false, std::memory_order_relaxed);
        readErr_.store(false, std::memory_order_relaxed);
    }

    void setup(core::Engine &engine) override
    {
        auto tree = engine.createTree(kTreeId);
        if (!tree.isOk())
            faspPanic("scenario setup: createTree failed");
        // Nine ~400-byte records pack the leaf; erasing two interior
        // keys leaves fragmented free blocks smaller than the 500-byte
        // record the updater writes, so the update must defragment.
        for (std::uint64_t k = 1; k <= 9; ++k) {
            if (!engine.insert(*tree, k, val(400, 0x22)).isOk())
                faspPanic("scenario setup: seed insert failed");
        }
        for (std::uint64_t k : {3, 5}) {
            if (!engine.erase(*tree, k).isOk())
                faspPanic("scenario setup: seed erase failed");
        }
    }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)device;
        if (tid == 0) {
            return [this, engine] {
                btree::BTree tree(kTreeId);
                runOp(0, [&] {
                    return engine->update(tree, kHotKey, newValue());
                });
            };
        }
        return [this, engine] {
            btree::BTree tree(kTreeId);
            for (int i = 0; i < 4; ++i) {
                std::vector<std::uint8_t> got;
                try {
                    Status s = engine->get(tree, kHotKey, got);
                    if (!s.isOk())
                        readErr_.store(true,
                                       std::memory_order_relaxed);
                    else if (got != val(400, 0x22) &&
                             got != newValue())
                        badRead_.store(true,
                                       std::memory_order_relaxed);
                    if (!engine->get(tree, 8, got).isOk())
                        readErr_.store(true,
                                       std::memory_order_relaxed);
                } catch (const LatchConflict &) {
                    // Reads under contention may conflict-abort.
                }
                yieldPoint();
            }
            committed_[1].store(true, std::memory_order_relaxed);
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)device;
        checkAllCommitted(out);
        if (badRead_.load(std::memory_order_relaxed)) {
            out.push_back({McViolation::Kind::Oracle,
                           "reader observed a torn/intermediate value "
                           "during defragmentation"});
        }
        if (readErr_.load(std::memory_order_relaxed)) {
            out.push_back({McViolation::Kind::Oracle,
                           "reader lost a key mid-defragmentation"});
        }
        if (committedAt(0))
            checkKeyEquals(*engine, kHotKey, newValue(), out,
                           "verify");
        else
            checkKeyEquals(*engine, kHotKey, val(400, 0x22), out,
                           "verify");
        checkTree(*engine, out, "verify");
    }

    void verifyCrash(core::Engine &recovered, pm::PmDevice &forkDevice,
                     std::vector<McViolation> &out) override
    {
        (void)forkDevice;
        btree::BTree tree(kTreeId);
        std::vector<std::uint8_t> got;
        Status s = recovered.get(tree, kHotKey, got);
        if (!s.isOk()) {
            out.push_back({McViolation::Kind::Oracle,
                           "hot key missing after crash recovery: " +
                               s.toString()});
        } else if (got != val(400, 0x22) && got != newValue()) {
            out.push_back({McViolation::Kind::Oracle,
                           "hot key neither old nor new value after "
                           "crash recovery"});
        }
        checkTree(recovered, out, "crash");
    }

  private:
    static constexpr std::uint64_t kHotKey = 2;

    static std::vector<std::uint8_t> newValue()
    {
        return val(500, 0xd0);
    }

    std::atomic<bool> badRead_{false};
    std::atomic<bool> readErr_{false};
};

/** An insert racing a split that propagates across multiple pages:
 *  with 512-byte pages, 96 sequential seed keys leave the rightmost
 *  leaf full (7 records) under a full single-internal root (30
 *  separators), so the next insert splits the leaf, pushes separator
 *  #31 into the parent, splits the parent, and grows a new root — a
 *  three-page split chain (the paper's multi-page structure
 *  modification, §3.3). The second worker inserts into the same leaf
 *  region mid-chain; both inserts must commit exactly, and the tree
 *  must come out one level deeper. */
class InsertSplitChain final : public EngineScenario
{
  public:
    const char *name() const override { return "insert-split-chain"; }

    const char *description() const override
    {
        return "insert racing a leaf->parent->root split chain across "
               "three pages";
    }

    int threadCount() const override { return 2; }

    void tuneConfig(core::EngineConfig &cfg) const override
    {
        // Small pages make the parent fillable with a 96-key seed; the
        // default 4 KiB parent would need ~2300 keys to saturate.
        cfg.format.pageSize = 512;
    }

    void setup(core::Engine &engine) override
    {
        auto tree = engine.createTree(kTreeId);
        if (!tree.isOk())
            faspPanic("scenario setup: createTree failed");
        for (std::uint64_t k = 1; k <= kSeedKeys; ++k) {
            if (!engine.insert(*tree, k * 10, seedValue(k)).isOk())
                faspPanic("scenario setup: seed insert failed");
        }
    }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)device;
        return [this, tid, engine] {
            btree::BTree tree(kTreeId);
            runOp(tid, [&] {
                return engine->insert(tree, keyFor(tid),
                                      valueFor(tid));
            });
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)device;
        checkAllCommitted(out);
        checkContents(*engine, /*atCrash=*/false, out, "verify");
        // Either worker's insert overflows the full rightmost leaf,
        // whose separator overflows the full root: if one committed,
        // the chain must have run to completion and deepened the tree.
        if (committedAt(0) || committedAt(1))
            checkDepth(*engine, out, "verify");
    }

    void verifyCrash(core::Engine &recovered, pm::PmDevice &forkDevice,
                     std::vector<McViolation> &out) override
    {
        (void)forkDevice;
        checkContents(recovered, /*atCrash=*/true, out, "crash");
    }

  private:
    static constexpr std::uint64_t kSeedKeys = 96;

    void checkContents(core::Engine &engine, bool atCrash,
                       std::vector<McViolation> &out,
                       const char *when) const
    {
        for (std::uint64_t k = 1; k <= kSeedKeys; ++k)
            checkKeyEquals(engine, k * 10, seedValue(k), out, when);
        for (int i = 0; i < 2; ++i) {
            if (committedAt(i))
                checkKeyEquals(engine, keyFor(i), valueFor(i), out,
                               when);
            else if (atCrash)
                checkKeyAbsentOrEquals(engine, keyFor(i), valueFor(i),
                                       out, when);
            else
                checkKeyAbsent(engine, keyFor(i), out, when);
        }
        checkTree(engine, out, when);
    }

    static void checkDepth(core::Engine &engine,
                           std::vector<McViolation> &out,
                           const char *when)
    {
        auto tx = engine.begin();
        btree::BTree tree(kTreeId);
        auto root = tree.rootPid(tx->pageIO());
        std::uint16_t lvl = 0;
        if (root.isOk())
            lvl = page::level(tx->pageIO().page(*root, false));
        tx->rollback();
        if (lvl < 2) {
            out.push_back({McViolation::Kind::Oracle,
                           std::string("insert-split-chain: the split "
                                       "chain never propagated to a "
                                       "new root (") +
                               when + ")"});
        }
    }

    static std::vector<std::uint8_t> seedValue(std::uint64_t k)
    {
        return val(54, static_cast<std::uint8_t>(k));
    }

    /** T0 appends past the maximum; T1 lands inside the rightmost
     *  leaf (between seed keys 950 and 960). */
    static std::uint64_t keyFor(int tid)
    {
        return tid == 0 ? kSeedKeys * 10 + 10 : kSeedKeys * 10 - 5;
    }

    static std::vector<std::uint8_t> valueFor(int tid)
    {
        return val(54, static_cast<std::uint8_t>(0xc0 + tid));
    }
};

/** Seeded bug: read-modify-write of a shared PM counter without any
 *  lock. The yield point between load and store is where the lost
 *  update hides; fasp-mc must find the interleaving. */
class BugLockElision final : public Scenario
{
  public:
    const char *name() const override { return "bug-lock-elision"; }

    const char *description() const override
    {
        return "seeded lost-update race on an unlocked PM counter "
               "(must be caught)";
    }

    int threadCount() const override { return 2; }
    bool usesEngine() const override { return false; }
    bool expectsViolation() const override { return true; }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)tid;
        (void)engine;
        return [&device] {
            std::uint64_t v = device.readU64(kOff);
            yieldPoint(); // the racy window
            device.writeU64(kOff, v + 1);
            device.clflush(kOff);
            device.sfence();
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)engine;
        std::uint64_t v = device.readU64(kOff);
        if (v != 2) {
            out.push_back({McViolation::Kind::Oracle,
                           "lost update: counter is " +
                               std::to_string(v) + ", expected 2"});
        }
    }

  private:
    static constexpr PmOffset kOff = 4096;
};

/** Two writers race a PCAS flip of one header-style word — the
 *  latch-free publish race the engines never produce themselves (the
 *  page latch serializes commits), so the dirty-tag helping path and
 *  the window between publish-CAS, flush, fence and tag-clear only get
 *  schedule coverage here. Crash forks land at every explored fence —
 *  in particular the one between the publish flush and the tag clear —
 *  and the raw-image oracle runs Pcas::recover() plus the tag strip
 *  that FaspEngine::sweepHeaderTags() performs on real headers. */
class PcasHeaderFlip final : public Scenario
{
  public:
    const char *name() const override { return "pcas-header-flip"; }

    const char *description() const override
    {
        return "two writers race a PCAS header-word flip; crash forks "
               "at protocol fences must recover an untorn value";
    }

    int threadCount() const override { return 2; }
    bool usesEngine() const override { return false; }

    void reset() override
    {
        pcas_.reset();
        for (auto &f : committed_)
            f.store(false, std::memory_order_relaxed);
        failed_.store(false, std::memory_order_relaxed);
    }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)engine;
        // First body() call of the schedule (main thread, before the
        // scheduler starts): bind the PCAS instance and seed the word.
        if (!pcas_) {
            pcas_ = std::make_unique<pm::Pcas>(device, kDescOff,
                                               pm::PcasConfig{});
            device.writeU64(kWordOff, kOld);
            device.clflush(kWordOff);
            device.sfence();
        }
        return [this, tid] {
            std::uint64_t want = newFor(tid);
            for (int attempt = 0; attempt < 32; ++attempt) {
                // read() helps a tagged value to durability first, so
                // the expected value below is always a logical one.
                std::uint64_t cur = pcas_->read(kWordOff);
                if (pcas_->cas(kWordOff, cur, want) ==
                    pm::PcasResult::Ok) {
                    committed_[static_cast<std::size_t>(tid)].store(
                        true, std::memory_order_relaxed);
                    return;
                }
                yieldPoint();
            }
            failed_.store(true, std::memory_order_relaxed);
        };
    }

    void verify(core::Engine *engine, pm::PmDevice &device,
                std::vector<McViolation> &out) override
    {
        (void)engine;
        if (failed_.load(std::memory_order_relaxed)) {
            out.push_back({McViolation::Kind::Oracle,
                           "a writer exhausted its CAS retry budget "
                           "with failure injection off"});
        }
        for (int i = 0; i < 2; ++i) {
            if (!committed_[static_cast<std::size_t>(i)].load(
                    std::memory_order_relaxed)) {
                out.push_back({McViolation::Kind::Oracle,
                               "T" + std::to_string(i) +
                                   " never committed its flip"});
            }
        }
        std::uint64_t v = device.readU64(kWordOff);
        if (pm::pcasTagged(v)) {
            out.push_back({McViolation::Kind::Oracle,
                           "word still carries a protocol flag after "
                           "both writers returned"});
        } else if (v != newFor(0) && v != newFor(1)) {
            out.push_back({McViolation::Kind::Oracle,
                           "word holds a value no writer published"});
        }
    }

    void verifyCrashRaw(pm::PmDevice &forkDevice,
                        std::vector<McViolation> &out) override
    {
        // The scenario owns recovery for its word: descriptor pass,
        // then the tag strip the engine's header sweep would do.
        pm::Pcas recovered(forkDevice, kDescOff, pm::PcasConfig{});
        recovered.recover();
        std::uint64_t raw = forkDevice.readU64(kWordOff);
        std::uint64_t v = pm::pcasStrip(raw);
        if ((raw & pm::kPmwcasDescBit) != 0) {
            out.push_back({McViolation::Kind::Recovery,
                           "descriptor pointer survived recovery"});
            return;
        }
        bool both = committed_[0].load(std::memory_order_relaxed) &&
                    committed_[1].load(std::memory_order_relaxed);
        if (v == kOld && !both)
            return; // no flip durable yet — fine unless both fenced
        if (v == newFor(0) || v == newFor(1))
            return;
        out.push_back(
            {McViolation::Kind::Recovery,
             "crash image recovered a torn header word: " +
                 std::to_string(v)});
    }

  private:
    /** Descriptor region at 4 KiB, the raced word right after it. */
    static constexpr PmOffset kDescOff = 4096;
    static constexpr PmOffset kWordOff =
        kDescOff + pm::Pcas::kDescRegionBytes;

    /** Header-shaped values: four packed u16 fields, flag-free. */
    static constexpr std::uint64_t kOld = 0x0001002000300040ull;

    static std::uint64_t newFor(int tid)
    {
        return kOld + 0x0100ull + static_cast<std::uint64_t>(tid);
    }

    std::unique_ptr<pm::Pcas> pcas_;
    std::array<std::atomic<bool>, 2> committed_{};
    std::atomic<bool> failed_{false};
};

/** Seeded bug: a commit whose data line was never flushed before the
 *  commit point. The persistency checker must flag it on the very
 *  first schedule. */
class BugMissingFlush final : public Scenario
{
  public:
    const char *name() const override { return "bug-missing-flush"; }

    const char *description() const override
    {
        return "seeded commit with an unflushed data line (must be "
               "caught)";
    }

    int threadCount() const override { return 1; }
    bool usesEngine() const override { return false; }
    bool expectsViolation() const override { return true; }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)tid;
        (void)engine;
        return [&device] {
            device.txBegin();
            device.writeU64(kDataOff, 0xfeedfacecafef00dull);
            device.writeU64(kMarkOff, 1);
            device.clflush(kMarkOff);
            device.sfence();
            // BUG: kDataOff's line is still dirty here — a crash after
            // the marker persists would recover garbage data.
            // fasp-analyze: allow(v3s) -- seeded bug: this scenario
            // exists so the model checker proves it catches exactly
            // this violation (expectsViolation() == true).
            device.txCommitPoint();
            device.txEnd(true);
            // Late flush keeps the shutdown sweep quiet so the report
            // pinpoints the commit-point violation alone.
            device.clflush(kDataOff);
            device.sfence();
        };
    }

  private:
    static constexpr PmOffset kDataOff = 4096;
    static constexpr PmOffset kMarkOff = 4096 + 64;
};

/** Seeded bug: classic ABBA mutex cycle behind a yield point; the
 *  scheduler's deadlock detector must fire. */
class BugDeadlock final : public Scenario
{
  public:
    const char *name() const override { return "bug-deadlock"; }

    const char *description() const override
    {
        return "seeded ABBA mutex deadlock (must be caught)";
    }

    int threadCount() const override { return 2; }
    bool usesEngine() const override { return false; }
    bool expectsViolation() const override { return true; }

    std::function<void()> body(int tid, core::Engine *engine,
                               pm::PmDevice &device) override
    {
        (void)engine;
        (void)device;
        return [this, tid] {
            Mutex *first = tid == 0 ? &muA_ : &muB_;
            Mutex *second = tid == 0 ? &muB_ : &muA_;
            MutexLock a(first);
            yieldPoint();
            MutexLock b(second);
        };
    }

  private:
    Mutex muA_;
    Mutex muB_;
};

} // namespace

std::vector<std::string>
scenarioNames()
{
    return {
        "same-page-insert", "same-page-insert-3t", "same-page-update",
        "insert-vs-split",  "insert-split-chain",  "defrag-vs-read",
        "pcas-header-flip", "bug-lock-elision",    "bug-missing-flush",
        "bug-deadlock",
    };
}

std::unique_ptr<Scenario>
makeScenario(const std::string &name)
{
    if (name == "same-page-insert")
        return std::make_unique<SamePageInsert>(2);
    if (name == "same-page-insert-3t")
        return std::make_unique<SamePageInsert>(3);
    if (name == "same-page-update")
        return std::make_unique<SamePageUpdate>();
    if (name == "insert-vs-split")
        return std::make_unique<InsertVsSplit>();
    if (name == "insert-split-chain")
        return std::make_unique<InsertSplitChain>();
    if (name == "defrag-vs-read")
        return std::make_unique<DefragVsRead>();
    if (name == "pcas-header-flip")
        return std::make_unique<PcasHeaderFlip>();
    if (name == "bug-lock-elision")
        return std::make_unique<BugLockElision>();
    if (name == "bug-missing-flush")
        return std::make_unique<BugMissingFlush>();
    if (name == "bug-deadlock")
        return std::make_unique<BugDeadlock>();
    return nullptr;
}

} // namespace fasp::mc
