#include "mc/trace.h"

#include <cstring>
#include <fstream>

namespace fasp::mc {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'S', 'P', 'M', 'C', '0', '1'};

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
getBytes(const std::string &in, std::size_t &pos, void *dst,
         std::size_t len)
{
    if (pos + len > in.size())
        return false;
    std::memcpy(dst, in.data() + pos, len);
    pos += len;
    return true;
}

bool
getU32(const std::string &in, std::size_t &pos, std::uint32_t &v)
{
    std::uint8_t b[4];
    if (!getBytes(in, pos, b, 4))
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return true;
}

bool
getU64(const std::string &in, std::size_t &pos, std::uint64_t &v)
{
    std::uint8_t b[8];
    if (!getBytes(in, pos, b, 8))
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return true;
}

bool
getString(const std::string &in, std::size_t &pos, std::string &s)
{
    std::uint32_t len;
    if (!getU32(in, pos, len) || pos + len > in.size())
        return false;
    s.assign(in, pos, len);
    pos += len;
    return true;
}

} // namespace

std::vector<TraceStep>
traceStepsFromRun(const RunResult &run)
{
    std::vector<TraceStep> out;
    out.reserve(run.steps.size());
    for (const StepRecord &rec : run.steps) {
        TraceStep ts;
        ts.chosen = rec.chosen;
        ts.op = static_cast<std::uint8_t>(rec.pending[rec.chosen].op);
        ts.flags = rec.forced ? 1 : 0;
        ts.token = rec.pending[rec.chosen].token;
        out.push_back(ts);
    }
    return out;
}

Status
writeTrace(const std::string &path, const TraceFile &trace)
{
    std::string buf;
    buf.append(kMagic, sizeof(kMagic));
    putU32(buf, static_cast<std::uint32_t>(trace.scenario.size()));
    buf += trace.scenario;
    putU32(buf, static_cast<std::uint32_t>(trace.engine.size()));
    buf += trace.engine;
    putU64(buf, trace.seed);
    putU32(buf, trace.crashEvery);
    buf.push_back(static_cast<char>(trace.crashPolicy));
    putU64(buf, trace.scheduleIndex);
    putU32(buf, static_cast<std::uint32_t>(trace.steps.size()));
    for (const TraceStep &s : trace.steps) {
        buf.push_back(static_cast<char>(s.chosen));
        buf.push_back(static_cast<char>(s.op));
        buf.push_back(static_cast<char>(s.flags));
        putU32(buf, s.token);
    }

    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return Status(StatusCode::IoError,
                      "cannot open trace for writing: " + path);
    f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    f.flush();
    if (!f)
        return Status(StatusCode::IoError,
                      "short write to trace: " + path);
    return Status::ok();
}

Result<TraceFile>
readTrace(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return Status(StatusCode::IoError,
                      "cannot open trace: " + path);
    std::string buf((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());

    std::size_t pos = 0;
    char magic[8];
    if (!getBytes(buf, pos, magic, 8) ||
        std::memcmp(magic, kMagic, 8) != 0) {
        return Status(StatusCode::ParseError,
                      "not a fasp-mc trace: " + path);
    }

    TraceFile t;
    std::uint32_t nsteps = 0;
    std::uint8_t policy = 0;
    bool ok = getString(buf, pos, t.scenario) &&
              getString(buf, pos, t.engine) &&
              getU64(buf, pos, t.seed) &&
              getU32(buf, pos, t.crashEvery) &&
              getBytes(buf, pos, &policy, 1) &&
              getU64(buf, pos, t.scheduleIndex) &&
              getU32(buf, pos, nsteps);
    if (!ok)
        return Status(StatusCode::ParseError,
                      "truncated trace header: " + path);
    t.crashPolicy = policy;
    t.steps.reserve(nsteps);
    for (std::uint32_t i = 0; i < nsteps; ++i) {
        TraceStep s;
        std::uint8_t raw[3];
        if (!getBytes(buf, pos, raw, 3) || !getU32(buf, pos, s.token))
            return Status(StatusCode::ParseError,
                          "truncated trace step " + std::to_string(i) +
                              ": " + path);
        s.chosen = raw[0];
        s.op = raw[1];
        s.flags = raw[2];
        t.steps.push_back(s);
    }
    if (pos != buf.size())
        return Status(StatusCode::ParseError,
                      "trailing bytes in trace: " + path);
    return t;
}

} // namespace fasp::mc
