#include "mc/scheduler.h"

#include <sstream>

#include "common/logging.h"

namespace fasp::mc {

thread_local int CoopScheduler::t_self = -1;

const char *
mcViolationKindName(McViolation::Kind kind)
{
    switch (kind) {
      case McViolation::Kind::Deadlock: return "deadlock";
      case McViolation::Kind::Livelock: return "livelock";
      case McViolation::Kind::Checker: return "persistency-checker";
      case McViolation::Kind::Oracle: return "oracle";
      case McViolation::Kind::Recovery: return "recovery";
      case McViolation::Kind::Fsck: return "fsck";
      case McViolation::Kind::ScenarioError: return "scenario-error";
      case McViolation::Kind::Diverged: return "diverged";
    }
    return "unknown";
}

std::size_t
CoopScheduler::countState(TState s) const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < nthreads_; ++i) {
        if (threads_[i].state == s)
            ++n;
    }
    return n;
}

std::uint32_t
CoopScheduler::tokenForLocked(HookOp op, const void *addr)
{
    std::uint8_t cls;
    auto key = reinterpret_cast<std::uintptr_t>(addr);
    switch (op) {
      case HookOp::PmStore:
      case HookOp::PmFlush:
      case HookOp::PmFence:
      case HookOp::PmCas:
        // One token per 64-byte PM line: a flush of a line and a store
        // into it name the same resource.
        cls = 0;
        key >>= 6;
        break;
      case HookOp::MutexLock:
      case HookOp::MutexUnlock:
        cls = 1;
        break;
      case HookOp::LatchAcquireShared:
      case HookOp::LatchAcquireExclusive:
      case HookOp::LatchUpgrade:
      case HookOp::LatchReleaseShared:
      case HookOp::LatchReleaseExclusive:
      case HookOp::LatchDowngrade:
        cls = 2;
        break;
      case HookOp::RtmBegin:
      case HookOp::RtmCommit:
      case HookOp::RtmAbort:
        cls = 3;
        break;
      default:
        return 0;
    }
    auto [it, fresh] =
        tokens_.try_emplace({cls, key}, nextToken_ + 1);
    if (fresh)
        ++nextToken_;
    return it->second;
}

void
CoopScheduler::maybeThrowAbortLocked(int self)
{
    ThreadSlot &ts = threads_[self];
    if (!ts.thrownAbort) {
        ts.thrownAbort = true;
        // The unique_lock in the caller's frame unlocks during
        // unwinding; after this first throw every later hook call from
        // this thread passes straight through so destructors can run.
        throw RunAborted{};
    }
}

void
CoopScheduler::abortRunLocked(McViolation::Kind kind, std::string msg)
{
    if (aborting_)
        return;
    aborting_ = true;
    violations_.push_back({kind, std::move(msg)});
    for (std::size_t i = 0; i < nthreads_; ++i)
        threads_[i].cv.notify_all();
    controllerCv_.notify_all();
}

std::string
CoopScheduler::describeBlockedLocked() const
{
    std::ostringstream os;
    os << "deadlock:";
    for (std::size_t i = 0; i < nthreads_; ++i) {
        const ThreadSlot &ts = threads_[i];
        if (ts.state != TState::Blocked)
            continue;
        os << " T" << i << " blocked at "
           << hookOpName(ts.pending.op) << " tok#" << ts.pending.token;
    }
    return os.str();
}

void
CoopScheduler::grantLocked(int idx, bool forced)
{
    ThreadSlot &ts = threads_[static_cast<std::size_t>(idx)];
    running_ = idx;
    ts.granted = true;
    ts.forcedConflict = forced;
    ts.cv.notify_one();
}

void
CoopScheduler::decideLocked(std::unique_lock<std::mutex> &lk)
{
    (void)lk;
    if (done_ || aborting_)
        return;
    if (steps_.size() >= maxSteps_) {
        abortRunLocked(McViolation::Kind::Livelock,
                       "per-run step budget exhausted (" +
                           std::to_string(maxSteps_) + " steps)");
        return;
    }

    StepRecord rec;
    rec.prevRunning = lastRunning_;
    std::uint8_t elig = 0;
    for (std::size_t i = 0; i < nthreads_; ++i) {
        if (threads_[i].state == TState::Parked) {
            elig |= static_cast<std::uint8_t>(1u << i);
            rec.pending[i] = threads_[i].pending;
        }
    }

    int chosen = -1;
    bool forced = false;
    if (elig == 0) {
        // Nobody is runnable. A latch waiter can be forced awake with a
        // conflict verdict — the production analogue is the spin budget
        // expiring into a LatchConflict abort. Mutex waiters have no
        // such exit: all-mutex-blocked is a real deadlock.
        for (std::size_t i = 0; i < nthreads_; ++i) {
            if (threads_[i].state == TState::Blocked &&
                threads_[i].blockedOnLatch) {
                chosen = static_cast<int>(i);
                forced = true;
                break;
            }
        }
        if (chosen < 0) {
            if (countState(TState::Blocked) == 0)
                return; // everyone finished; nothing to schedule
            abortRunLocked(McViolation::Kind::Deadlock,
                           describeBlockedLocked());
            return;
        }
        rec.pending[static_cast<std::size_t>(chosen)] =
            threads_[static_cast<std::size_t>(chosen)].pending;
    } else {
        std::size_t s = steps_.size();
        if (s < prefix_.size() && !forced) {
            chosen = prefix_[s];
            if (chosen >= static_cast<int>(nthreads_) ||
                (elig & (1u << chosen)) == 0) {
                abortRunLocked(
                    McViolation::Kind::Diverged,
                    "replay prefix step " + std::to_string(s) +
                        " chose T" + std::to_string(chosen) +
                        " which is not eligible (mask " +
                        std::to_string(elig) + ")");
                return;
            }
        } else if (rec.prevRunning != 0xff &&
                   (elig & (1u << rec.prevRunning)) != 0 &&
                   threads_[rec.prevRunning].pending.op !=
                       HookOp::UserYield) {
            chosen = rec.prevRunning; // run-to-completion default
        } else if (rec.prevRunning != 0xff &&
                   (elig & (1u << rec.prevRunning)) != 0) {
            // Fair handoff at a voluntary yield: the production retry
            // loop yields the CPU so a latch holder can finish, and a
            // default policy that kept running the yielder would
            // starve the holder forever (the CHESS fairness problem).
            // Round-robin to the next eligible thread; the yielder
            // continues only if it is alone.
            chosen = rec.prevRunning;
            for (std::size_t d = 1; d < nthreads_; ++d) {
                std::size_t i = (rec.prevRunning + d) % nthreads_;
                if (elig & (1u << i)) {
                    chosen = static_cast<int>(i);
                    break;
                }
            }
        } else {
            for (std::size_t i = 0; i < nthreads_; ++i) {
                if (elig & (1u << i)) {
                    chosen = static_cast<int>(i);
                    break;
                }
            }
        }
    }

    rec.chosen = static_cast<std::uint8_t>(chosen);
    rec.forced = forced;
    rec.eligible = elig;
    steps_.push_back(rec);

    if (!forced &&
        threads_[static_cast<std::size_t>(chosen)].pending.op ==
            HookOp::PmFence) {
        std::size_t fi = fenceCount_++;
        if (onFence_) {
            // The callback forks a crash image and runs recovery on a
            // scratch device; the depth guard keeps that work invisible
            // to scheduling (its latches/mutexes must not be shared
            // with the stopped run).
            HookDepthGuard depth_guard;
            onFence_(fi, violations_);
        }
        if (aborting_)
            return;
    }

    grantLocked(chosen, forced);
}

void
CoopScheduler::atPoint(HookOp op, const void *addr, std::size_t len)
{
    int self = t_self;
    if (self < 0)
        return;
    std::unique_lock<std::mutex> lk(mu_);
    ThreadSlot &ts = threads_[static_cast<std::size_t>(self)];
    if (aborting_) {
        maybeThrowAbortLocked(self);
        return;
    }
    ts.pending = PendingOp{op, addr, len, tokenForLocked(op, addr)};
    if (ts.state == TState::Spawning) {
        // Initial ThreadStart point: park and let the controller kick
        // the first decision once every worker has arrived.
        ts.state = TState::Parked;
        if (countState(TState::Parked) == nthreads_)
            controllerCv_.notify_all();
    } else {
        ts.state = TState::Parked;
        running_ = -1;
        lastRunning_ = static_cast<std::uint8_t>(self);
        decideLocked(lk);
        if (aborting_ && !ts.granted) {
            maybeThrowAbortLocked(self);
            return;
        }
    }
    ts.cv.wait(lk, [&] { return ts.granted || aborting_; });
    if (aborting_ && !ts.granted) {
        maybeThrowAbortLocked(self);
        return;
    }
    ts.granted = false;
    ts.forcedConflict = false;
    ts.state = TState::Running;
}

bool
CoopScheduler::onBlocked(HookOp op, const void *addr)
{
    int self = t_self;
    if (self < 0)
        return true;
    std::unique_lock<std::mutex> lk(mu_);
    ThreadSlot &ts = threads_[static_cast<std::size_t>(self)];
    if (aborting_) {
        maybeThrowAbortLocked(self);
        return true;
    }
    ts.state = TState::Blocked;
    ts.blockedOn = addr;
    ts.blockedOnLatch = (op == HookOp::LatchAcquireShared ||
                         op == HookOp::LatchAcquireExclusive ||
                         op == HookOp::LatchUpgrade);
    running_ = -1;
    lastRunning_ = static_cast<std::uint8_t>(self);
    decideLocked(lk);
    if (aborting_ && !ts.granted) {
        maybeThrowAbortLocked(self);
        return true;
    }
    ts.cv.wait(lk, [&] { return ts.granted || aborting_; });
    if (aborting_ && !ts.granted) {
        maybeThrowAbortLocked(self);
        return true;
    }
    bool forced = ts.forcedConflict;
    ts.granted = false;
    ts.forcedConflict = false;
    ts.blockedOn = nullptr;
    ts.blockedOnLatch = false;
    ts.state = TState::Running;
    return !forced;
}

void
CoopScheduler::onRelease(HookOp op, const void *addr)
{
    (void)op;
    int self = t_self;
    if (self < 0)
        return;
    std::unique_lock<std::mutex> lk(mu_);
    if (aborting_)
        return;
    // Waiters become eligible again but are NOT woken: they stay
    // physically parked in onBlocked until a later decision grants them
    // the CPU and they retry their acquire. A release is not itself a
    // scheduling point — the releasing thread keeps running.
    for (std::size_t i = 0; i < nthreads_; ++i) {
        ThreadSlot &t = threads_[i];
        if (t.state == TState::Blocked && t.blockedOn == addr)
            t.state = TState::Parked;
    }
}

void
CoopScheduler::finishSelf(int self)
{
    std::unique_lock<std::mutex> lk(mu_);
    threads_[static_cast<std::size_t>(self)].state = TState::Finished;
    if (running_ == self)
        running_ = -1;
    lastRunning_ = 0xff;
    if (countState(TState::Finished) == nthreads_) {
        done_ = true;
        controllerCv_.notify_all();
        return;
    }
    if (!aborting_)
        decideLocked(lk);
}

void
CoopScheduler::workerMain(int idx, const std::function<void()> &body)
{
    t_self = idx;
    setThreadParticipating(true);
    try {
        atPoint(HookOp::ThreadStart, nullptr, 1);
        body();
    } catch (const RunAborted &) {
        // Aborted run unwinding; the violation is already recorded.
    } catch (const std::exception &e) {
        std::unique_lock<std::mutex> lk(mu_);
        abortRunLocked(McViolation::Kind::ScenarioError,
                       "T" + std::to_string(idx) +
                           " threw: " + e.what());
    } catch (...) {
        std::unique_lock<std::mutex> lk(mu_);
        abortRunLocked(McViolation::Kind::ScenarioError,
                       "T" + std::to_string(idx) +
                           " threw a non-std exception");
    }
    setThreadParticipating(false);
    finishSelf(idx);
    t_self = -1;
}

RunResult
CoopScheduler::run(const std::vector<std::function<void()>> &bodies,
                   const Options &opt, FenceFn onFence)
{
    if (bodies.size() > kMaxThreads || bodies.empty())
        faspPanic("CoopScheduler::run: %zu bodies (max %zu)",
                  bodies.size(), kMaxThreads);

    nthreads_ = bodies.size();
    for (auto &ts : threads_) {
        ts.state = TState::Spawning;
        ts.pending = PendingOp{};
        ts.blockedOn = nullptr;
        ts.blockedOnLatch = false;
        ts.granted = false;
        ts.forcedConflict = false;
        ts.thrownAbort = false;
    }
    running_ = -1;
    lastRunning_ = 0xff;
    aborting_ = false;
    done_ = false;
    steps_.clear();
    violations_.clear();
    prefix_ = opt.prefix;
    maxSteps_ = opt.maxSteps;
    fenceCount_ = 0;
    onFence_ = std::move(onFence);
    tokens_.clear();
    nextToken_ = 0;

    installSchedulerHook(this);
    std::vector<std::thread> workers;
    workers.reserve(nthreads_);
    for (std::size_t i = 0; i < nthreads_; ++i) {
        workers.emplace_back([this, i, &bodies] {
            workerMain(static_cast<int>(i), bodies[i]);
        });
    }
    {
        std::unique_lock<std::mutex> lk(mu_);
        controllerCv_.wait(lk, [&] {
            return countState(TState::Parked) == nthreads_ || done_ ||
                   aborting_;
        });
        if (!done_ && !aborting_)
            decideLocked(lk);
        controllerCv_.wait(lk, [&] { return done_; });
    }
    for (auto &w : workers)
        w.join();
    installSchedulerHook(nullptr);

    RunResult res;
    res.steps = std::move(steps_);
    res.violations = std::move(violations_);
    res.fencePoints = fenceCount_;
    onFence_ = {};
    return res;
}

} // namespace fasp::mc
