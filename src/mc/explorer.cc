#include "mc/explorer.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <utility>

#include "common/logging.h"
#include "forensics.h"
#include "page/page_io.h"
#include "page/slotted_page.h"
#include "pager/pager.h"
#include "pager/superblock.h"
#include "pm/checker.h"

namespace fasp::mc {

namespace {

/** Explorer harness device: small so the per-schedule image rewind is
 *  one cheap memcpy, CacheSim so crash images exist to fork. */
constexpr std::size_t kDeviceBytes = 2u << 20;
constexpr std::uint64_t kLogBytes = 256u << 10;

/** Race-analysis lookback window: the nearest dependent predecessor is
 *  almost always close (same transaction), and an unbounded scan would
 *  make the post-run pass quadratic in schedule length. */
constexpr std::size_t kRaceWindow = 256;

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
isPmOp(HookOp op)
{
    return op == HookOp::PmStore || op == HookOp::PmFlush ||
           op == HookOp::PmFence || op == HookOp::PmCas;
}

bool
linesOverlap(const PendingOp &a, const PendingOp &b)
{
    auto lo = [](const PendingOp &p) {
        return reinterpret_cast<std::uintptr_t>(p.addr) &
               ~static_cast<std::uintptr_t>(63);
    };
    auto hi = [](const PendingOp &p) {
        return (reinterpret_cast<std::uintptr_t>(p.addr) + p.len - 1) |
               static_cast<std::uintptr_t>(63);
    };
    return lo(a) <= hi(b) && lo(b) <= hi(a);
}

/**
 * Do two operations NOT commute? Independent (commuting) operations
 * never seed a backtrack alternative: both orders reach the same state,
 * so exploring the second order proves nothing (the DPOR insight).
 * Conservative in every unclear case — a false "dependent" only costs
 * schedules, a false "independent" loses coverage.
 *
 * @p crash_forks widens the relation: once crash images are forked at
 * fences, the *instant* of the fence relative to other threads' stores
 * and flushes becomes observable (it decides what is in the forked
 * image), so fence-vs-store/flush stops commuting.
 */
bool
dependent(const PendingOp &a, const PendingOp &b, bool crash_forks)
{
    // Yield points mark a data race the scenario wants explored, and a
    // thread's first point orders it against everything: both are
    // dependent with all.
    auto wildcard = [](HookOp op) {
        return op == HookOp::UserYield || op == HookOp::ThreadStart ||
               op == HookOp::ThreadFinish;
    };
    if (wildcard(a.op) || wildcard(b.op))
        return true;

    if (isPmOp(a.op) != isPmOp(b.op))
        return false;

    if (isPmOp(a.op)) {
        bool afence = a.op == HookOp::PmFence;
        bool bfence = b.op == HookOp::PmFence;
        if (afence && bfence)
            return false; // fences only order their own thread
        if (afence || bfence)
            return crash_forks;
        return linesOverlap(a, b);
    }

    // Sync objects: only operations on the same object interact.
    if (a.addr != b.addr)
        return false;
    // Shared latch acquires commute with each other.
    if (a.op == HookOp::LatchAcquireShared &&
        b.op == HookOp::LatchAcquireShared)
        return false;
    return true;
}

/** Did this node's choice preempt a runnable previous thread? A
 *  switch at a voluntary yield is free — the thread offered the CPU —
 *  so only involuntary switches consume the preemption budget
 *  (CHESS's definition). */
bool
stepPreempts(std::uint8_t prev_running, std::uint8_t eligible,
             const std::array<PendingOp, kMaxThreads> &pending,
             std::uint8_t chosen)
{
    return prev_running != 0xff &&
           ((eligible >> prev_running) & 1) != 0 &&
           pending[prev_running].op != HookOp::UserYield &&
           chosen != prev_running;
}

} // namespace

bool
parseEngineKind(const std::string &name, core::EngineKind &out)
{
    std::string norm;
    for (char c : name) {
        if (c == '-' || c == '_')
            continue;
        norm.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(c))));
    }
    if (norm == "FAST")
        out = core::EngineKind::Fast;
    else if (norm == "FASH")
        out = core::EngineKind::Fash;
    else if (norm == "NVWAL")
        out = core::EngineKind::Nvwal;
    else if (norm == "LEGACYWAL")
        out = core::EngineKind::LegacyWal;
    else if (norm == "JOURNAL")
        out = core::EngineKind::Journal;
    else
        return false;
    return true;
}

Explorer::Explorer(Scenario &scenario, const ExploreOptions &opt)
    : scenario_(scenario), opt_(opt)
{
    pm::PmConfig pmc;
    pmc.size = kDeviceBytes;
    pmc.mode = pm::PmMode::CacheSim;
    pmc.tagCacheLines = 1u << 12;
    device_ = std::make_unique<pm::PmDevice>(pmc);
    forkDevice_ = std::make_unique<pm::PmDevice>(pmc);

    cfg_.kind = opt_.engine;
    cfg_.volatileCachePages = 64;
    cfg_.format.logLen = kLogBytes;
    cfg_.format.frLen = 0; // recorder appends would bloat the state
                           // space with PM points carrying no signal
    scenario_.tuneConfig(cfg_);

    snapshot_.resize(device_->size());
    if (scenario_.usesEngine()) {
        auto er = core::Engine::create(*device_, cfg_, true);
        if (!er.isOk())
            faspPanic("fasp-mc: format failed: %s",
                      er.status().toString().c_str());
        scenario_.setup(*er.value());
        er.value().reset(); // orderly teardown before the snapshot
        // Read through the cache overlay: unflushed setup bytes become
        // durable in the snapshot, so every schedule starts from a
        // fully-persisted image with an empty simulated cache.
        device_->read(0, snapshot_.data(), snapshot_.size());
    }
    // !usesEngine scenarios start from the zeroed image.
}

Explorer::~Explorer()
{
    if (device_)
        device_->setChecker(nullptr);
}

TraceFile
Explorer::traceTemplate() const
{
    TraceFile t;
    t.scenario = scenario_.name();
    t.engine = core::engineKindName(opt_.engine);
    t.seed = opt_.seed;
    t.crashEvery = opt_.crashEvery;
    t.crashPolicy = static_cast<std::uint8_t>(opt_.crashPolicy);
    return t;
}

void
Explorer::fsckSweep(pm::PmDevice &device, bool trustScratch,
                    std::vector<McViolation> &out)
{
    if (!scenario_.usesEngine())
        return;
    auto sbr = pager::Pager::open(device);
    if (!sbr.isOk()) {
        out.push_back({McViolation::Kind::Fsck,
                       "fsck sweep: superblock unreadable: " +
                           sbr.status().toString()});
        return;
    }
    const pager::Superblock &sb = sbr.value();
    std::vector<std::uint8_t> buf(sb.pageSize);
    for (PageId pid = sb.firstDataPid(); pid < sb.pageCount; ++pid) {
        device.read(sb.pageOffset(pid), buf.data(), buf.size());
        page::BufferPageIO io(buf.data(), buf.size());
        page::PageType t = page::pageType(io);
        if (t != page::PageType::Leaf && t != page::PageType::Internal)
            continue; // unallocated / overflow / meta
        Status s = page::slottedFsck(io, trustScratch);
        if (!s.isOk())
            out.push_back({McViolation::Kind::Fsck,
                           "page " + std::to_string(pid) + ": " +
                               s.toString()});
    }
}

void
Explorer::crashFork(std::size_t fenceIndex, std::uint64_t scheduleIndex,
                    std::vector<McViolation> &out)
{
    ++crashForkCount_;
    std::uint64_t seed =
        mix64(opt_.seed ^ mix64(scheduleIndex ^ mix64(fenceIndex)));
    device_->composeCrashImage(opt_.crashPolicy, seed, forkImage_);
    forkDevice_->resetToImage(forkImage_.data(), forkImage_.size());

    if (!scenario_.usesEngine()) {
        scenario_.verifyCrashRaw(*forkDevice_, out);
        return;
    }

    forensics::CrashReport rep =
        forensics::analyzeImage(forkImage_.data(), forkImage_.size());
    if (!rep.sb.present || !rep.sb.crcOk) {
        out.push_back(
            {McViolation::Kind::Recovery,
             "crash image at fence " + std::to_string(fenceIndex) +
                 ": forensics rejected the superblock (present=" +
                 std::to_string(rep.sb.present) +
                 " crcOk=" + std::to_string(rep.sb.crcOk) + ")"});
        return;
    }

    auto er = core::Engine::create(*forkDevice_, cfg_, false);
    if (!er.isOk()) {
        out.push_back({McViolation::Kind::Recovery,
                       "recovery on crash image at fence " +
                           std::to_string(fenceIndex) +
                           " failed: " + er.status().toString()});
        return;
    }
    scenario_.verifyCrash(*er.value(), *forkDevice_, out);
    er.value().reset();
    // Scratch state (free lists) is legitimately stale after FAST
    // recovery — lazily repaired, not corruption.
    fsckSweep(*forkDevice_, /*trustScratch=*/false, out);
}

RunResult
Explorer::runOnce(const std::vector<std::uint8_t> &prefix,
                  std::uint64_t scheduleIndex)
{
    device_->resetToImage(snapshot_.data(), snapshot_.size());
    checker_ = std::make_unique<pm::PersistencyChecker>();
    device_->setChecker(checker_.get());

    RunResult rr;
    std::unique_ptr<core::Engine> engine;
    if (scenario_.usesEngine()) {
        // The snapshot is fully durable, so this open's recovery pass
        // must be a no-op — and the fresh checker watches it too.
        auto er = core::Engine::create(*device_, cfg_, false);
        if (!er.isOk()) {
            rr.violations.push_back(
                {McViolation::Kind::Recovery,
                 "open from snapshot failed: " +
                     er.status().toString()});
            device_->setChecker(nullptr);
            checker_.reset();
            return rr;
        }
        engine = std::move(er.value());
    }

    scenario_.reset();
    std::vector<std::function<void()>> bodies;
    bodies.reserve(static_cast<std::size_t>(scenario_.threadCount()));
    for (int tid = 0; tid < scenario_.threadCount(); ++tid)
        bodies.push_back(scenario_.body(tid, engine.get(), *device_));

    CoopScheduler::FenceFn fence;
    if (opt_.crashEvery > 0) {
        fence = [this, scheduleIndex](std::size_t fi,
                                      std::vector<McViolation> &out) {
            if (fi % opt_.crashEvery == 0)
                crashFork(fi, scheduleIndex, out);
        };
    }

    CoopScheduler::Options sopt;
    sopt.prefix = prefix;
    sopt.maxSteps = opt_.maxStepsPerRun;
    rr = sched_.run(bodies, sopt, std::move(fence));

    if (rr.violations.empty() && scenario_.usesEngine()) {
        scenario_.verify(engine.get(), *device_, rr.violations);
        fsckSweep(*device_, /*trustScratch=*/true, rr.violations);
    } else if (rr.violations.empty()) {
        scenario_.verify(nullptr, *device_, rr.violations);
    }

    engine.reset(); // orderly teardown flushes everything in flight

    if (rr.violations.empty()) {
        checker_->checkCleanShutdown(device_->eventCount());
        if (!checker_->report().empty())
            rr.violations.push_back({McViolation::Kind::Checker,
                                     checker_->report().toString()});
    }
    device_->setChecker(nullptr);
    checker_.reset();
    return rr;
}

bool
Explorer::wouldPreempt(const PathNode &node, std::uint8_t pick) const
{
    return stepPreempts(node.prevRunning, node.eligible, node.pending,
                        pick);
}

void
Explorer::addAlternative(std::size_t nodeIndex, std::uint8_t pick)
{
    PathNode &n = path_[nodeIndex];
    if (n.forced) // conflict-wake pick: no real choice existed
        return;
    if (((n.eligible >> pick) & 1) == 0)
        return;
    // Never schedule a thread parked at its own yield ahead of the
    // fair default: such branches only extend retry-spin loops (each
    // one seeds the next), walking the DFS into an unbounded
    // starvation corner of the state space.
    if (n.pending[pick].op == HookOp::UserYield)
        return;
    if (((n.doneMask >> pick) & 1) != 0)
        return;
    if (std::find(n.todo.begin(), n.todo.end(), pick) != n.todo.end())
        return;
    if (wouldPreempt(n, pick) && n.preemptions + 1 > opt_.preemptionBound)
        return;
    n.todo.push_back(pick);
}

std::string
Explorer::writeTraceFor(const RunResult &run,
                        std::uint64_t scheduleIndex)
{
    std::error_code ec;
    std::filesystem::create_directories(opt_.traceDir, ec);
    TraceFile t = traceTemplate();
    t.scheduleIndex = scheduleIndex;
    t.steps = traceStepsFromRun(run);
    std::string path = opt_.traceDir + "/" + t.scenario + "-" +
                       std::to_string(scheduleIndex) + ".fmc";
    Status s = writeTrace(path, t);
    if (!s.isOk()) {
        faspWarn("fasp-mc: trace write failed: %s",
                 s.toString().c_str());
        return {};
    }
    return path;
}

ExploreResult
Explorer::explore()
{
    ExploreResult res;
    path_.clear();
    crashForkCount_ = 0;
    std::vector<std::uint8_t> prefix;

    while (res.schedules < opt_.maxSchedules) {
        prefix.clear();
        prefix.reserve(path_.size());
        for (const PathNode &n : path_)
            prefix.push_back(n.chosen);

        std::uint64_t idx = res.schedules;
        RunResult rr = runOnce(prefix, idx);
        ++res.schedules;
        res.totalSteps += rr.steps.size();
        res.maxDepth = std::max<std::uint64_t>(res.maxDepth,
                                               rr.steps.size());

        // The executed schedule must extend its prefix verbatim; the
        // scheduler reports replay failures as Diverged, but check
        // independently — continuing from a bad tree is meaningless.
        bool diverged = rr.steps.size() < path_.size();
        for (std::size_t i = 0; !diverged && i < path_.size(); ++i)
            diverged = rr.steps[i].chosen != path_[i].chosen;
        if (diverged &&
            std::none_of(rr.violations.begin(), rr.violations.end(),
                         [](const McViolation &v) {
                             return v.kind ==
                                    McViolation::Kind::Diverged;
                         }))
            rr.violations.push_back(
                {McViolation::Kind::Diverged,
                 "executed schedule deviated from its prefix"});

        std::string tracePath;
        bool violated = !rr.violations.empty();
        if (!opt_.traceDir.empty() &&
            (violated || (opt_.traceEvery != 0 &&
                          idx % opt_.traceEvery == 0)))
            tracePath = writeTraceFor(rr, idx);

        if (violated)
            res.failures.push_back({idx, rr.violations, tracePath});
        if (diverged || (violated && !opt_.keepGoing))
            break;

        // Extend the path with this run's new decisions, seeding
        // eager alternatives as each node is appended.
        for (std::size_t j = path_.size(); j < rr.steps.size(); ++j) {
            const StepRecord &s = rr.steps[j];
            PathNode n;
            n.chosen = s.chosen;
            n.forced = s.forced;
            n.eligible = s.eligible;
            n.prevRunning = s.prevRunning;
            n.pending = s.pending;
            n.doneMask = 1u << s.chosen;
            n.preemptions = 0;
            if (!path_.empty()) {
                const PathNode &p = path_.back();
                n.preemptions =
                    p.preemptions +
                    (stepPreempts(p.prevRunning, p.eligible, p.pending,
                                  p.chosen)
                         ? 1
                         : 0);
            }
            path_.push_back(std::move(n));
            if (s.forced)
                continue;
            const PendingOp &executed = s.pending[s.chosen];
            for (std::uint8_t t = 0; t < kMaxThreads; ++t) {
                if (t == s.chosen || ((s.eligible >> t) & 1) == 0)
                    continue;
                if (dependent(s.pending[t], executed,
                              opt_.crashEvery > 0))
                    addAlternative(j, t);
            }
        }

        // DPOR race pass: for every executed step, branch at its
        // nearest earlier dependent step by another thread — those
        // conflicts were not pending yet when the earlier decision was
        // seeded above.
        for (std::size_t j = 1; j < rr.steps.size(); ++j) {
            const StepRecord &sj = rr.steps[j];
            const PendingOp &ej = sj.pending[sj.chosen];
            std::size_t stop = j > kRaceWindow ? j - kRaceWindow : 0;
            for (std::size_t i = j; i-- > stop;) {
                const StepRecord &si = rr.steps[i];
                if (si.chosen == sj.chosen)
                    continue;
                if (!dependent(si.pending[si.chosen], ej,
                               opt_.crashEvery > 0))
                    continue;
                if ((si.eligible >> sj.chosen) & 1)
                    addAlternative(i, sj.chosen);
                break; // nearest dependent predecessor only
            }
        }

        // Backtrack to the deepest node with an untried alternative.
        while (!path_.empty() && path_.back().todo.empty())
            path_.pop_back();
        if (path_.empty()) {
            res.exhausted = true;
            break;
        }
        PathNode &n = path_.back();
        n.chosen = n.todo.back();
        n.todo.pop_back();
        n.doneMask |= 1u << n.chosen;
        n.forced = false;
    }

    res.crashForks = crashForkCount_;
    return res;
}

RunResult
Explorer::replay(const TraceFile &trace)
{
    std::vector<std::uint8_t> prefix;
    prefix.reserve(trace.steps.size());
    for (const TraceStep &s : trace.steps)
        prefix.push_back(s.chosen);

    RunResult rr = runOnce(prefix, trace.scheduleIndex);

    std::vector<TraceStep> executed = traceStepsFromRun(rr);
    std::size_t n = std::min(executed.size(), trace.steps.size());
    for (std::size_t i = 0; i < n; ++i) {
        const TraceStep &want = trace.steps[i];
        const TraceStep &got = executed[i];
        if (want.chosen != got.chosen || want.op != got.op ||
            want.token != got.token) {
            rr.violations.push_back(
                {McViolation::Kind::Diverged,
                 "replay step " + std::to_string(i) + ": trace (t" +
                     std::to_string(want.chosen) + " " +
                     hookOpName(static_cast<HookOp>(want.op)) + " #" +
                     std::to_string(want.token) + ") vs executed (t" +
                     std::to_string(got.chosen) + " " +
                     hookOpName(static_cast<HookOp>(got.op)) + " #" +
                     std::to_string(got.token) + ")"});
            break;
        }
    }
    if (executed.size() < trace.steps.size())
        rr.violations.push_back(
            {McViolation::Kind::Diverged,
             "replay ended after " + std::to_string(executed.size()) +
                 " of " + std::to_string(trace.steps.size()) +
                 " traced steps"});
    return rr;
}

} // namespace fasp::mc
