/**
 * @file
 * Schedule trace files (DESIGN.md §13 "Trace format").
 *
 * A trace captures one explored schedule compactly enough to commit to
 * a bug report: the scenario/engine/seed parameters that make the
 * execution reproducible plus, per scheduling decision, the thread
 * chosen, the HookOp it was about to perform and the stable resource
 * token. `fasp-mc --replay file.fmc` re-executes the decision vector
 * and cross-checks every (op, token) pair, so a trace that no longer
 * reproduces (source drift, nondeterminism) is reported as divergence
 * instead of silently exploring something else.
 */

#ifndef FASP_MC_TRACE_H
#define FASP_MC_TRACE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "mc/scheduler.h"

namespace fasp::mc {

/** One serialized scheduling decision. */
struct TraceStep
{
    std::uint8_t chosen = 0;
    std::uint8_t op = 0;    //!< HookOp of the granted point
    std::uint8_t flags = 0; //!< bit 0: forced conflict-wake
    std::uint32_t token = 0;
};

/** A schedule plus everything needed to re-create its harness. */
struct TraceFile
{
    std::string scenario;
    std::string engine;          //!< engine kind name ("FAST", ...)
    std::uint64_t seed = 0;
    std::uint32_t crashEvery = 0;
    std::uint8_t crashPolicy = 0;
    std::uint64_t scheduleIndex = 0;
    std::vector<TraceStep> steps;
};

/** Flatten a run's step records into trace steps. */
std::vector<TraceStep> traceStepsFromRun(const RunResult &run);

Status writeTrace(const std::string &path, const TraceFile &trace);
Result<TraceFile> readTrace(const std::string &path);

} // namespace fasp::mc

#endif // FASP_MC_TRACE_H
