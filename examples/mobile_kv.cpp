/**
 * @file
 * Mobile key-value workload: the scenario the paper's introduction
 * motivates. Android applications are known to issue mostly
 * single-record INSERT transactions against SQLite "as if it is a flat
 * file interface" (paper §3.2). This example runs that exact pattern
 * against all five engines on identical emulated PM and prints the
 * per-transaction commit cost and persistent write amplification —
 * reproducing the paper's headline comparison from the public API.
 *
 * Usage: mobile_kv [num_txns]
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "btree/btree.h"
#include "common/rng.h"
#include "core/engine.h"
#include "pm/device.h"

using namespace fasp;

int
main(int argc, char **argv)
{
    std::size_t num_txns = argc > 1 ? std::atoll(argv[1]) : 10000;
    std::printf("mobile single-insert workload: %zu transactions of "
                "one 100-byte record each, PM at 500/500ns\n",
                num_txns);

    benchutil::Table table({"engine", "txn total(us)", "commit(us)",
                            "clflush/txn", "PM bytes/txn"});
    for (core::EngineKind kind : benchutil::allEngines()) {
        benchutil::BenchConfig config;
        config.kind = kind;
        config.latency = pm::LatencyModel::of(500, 500);
        config.numTxns = num_txns;
        config.recordSize = 100;
        benchutil::BenchResult result =
            benchutil::runInsertBench(config);
        benchutil::Groups groups =
            benchutil::groupComponents(result, kind);
        table.addRow(
            {core::engineKindName(kind),
             benchutil::Table::fmt(groups.totalNs() / 1000.0),
             benchutil::Table::fmt(groups.commitNs / 1000.0),
             benchutil::Table::fmt(result.flushesPerTxn(), 1),
             benchutil::Table::fmt(
                 static_cast<double>(result.pmStats.storeBytes) /
                     static_cast<double>(result.txns),
                 0)});
    }
    table.print("single-insert transactions across engines");
    std::printf("\nreading the table: the journal baseline persists "
                "every touched page twice; page-granularity WAL once; "
                "NVWAL only the dirty bytes (but through a heap + "
                "index); FASH only slot headers; FAST one header line "
                "via HTM in-place commit.\n");
    return 0;
}
