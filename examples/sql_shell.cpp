/**
 * @file
 * Interactive SQL shell over a FAST database on emulated PM — a tiny
 * sqlite3-style REPL for poking at the engine.
 *
 * Usage: sql_shell [engine]   where engine is one of
 *        fast | fash | nvwal | wal | journal (default fast)
 *
 * Meta commands: .tables  .stats  .quit
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "db/database.h"
#include "pm/device.h"

using namespace fasp;

namespace {

core::EngineKind
parseEngine(const char *name)
{
    if (std::strcmp(name, "fash") == 0)
        return core::EngineKind::Fash;
    if (std::strcmp(name, "nvwal") == 0)
        return core::EngineKind::Nvwal;
    if (std::strcmp(name, "wal") == 0)
        return core::EngineKind::LegacyWal;
    if (std::strcmp(name, "journal") == 0)
        return core::EngineKind::Journal;
    return core::EngineKind::Fast;
}

} // namespace

int
main(int argc, char **argv)
{
    core::EngineKind kind =
        argc > 1 ? parseEngine(argv[1]) : core::EngineKind::Fast;

    pm::PmConfig pm_cfg;
    pm_cfg.size = 128u << 20;
    pm_cfg.latency = pm::LatencyModel::of(300, 300);
    pm::PmDevice device(pm_cfg);

    core::EngineConfig engine_cfg;
    engine_cfg.kind = kind;
    auto db = db::Database::open(device, engine_cfg, /*format=*/true);
    if (!db.isOk()) {
        std::fprintf(stderr, "open failed: %s\n",
                     db.status().toString().c_str());
        return 1;
    }
    db::Database &database = **db;

    std::printf("fasp SQL shell — engine %s on 128MiB emulated PM "
                "(300/300ns)\n",
                core::engineKindName(kind));
    std::printf("SQL statements end with a newline; try:\n"
                "  CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)\n"
                "  INSERT INTO t VALUES (1, 'hello')\n"
                "  SELECT * FROM t\n"
                ".tables lists tables, .stats shows engine stats, "
                ".quit exits.\n\n");

    std::string line;
    while (true) {
        std::printf(database.inTransaction() ? "txn> " : "sql> ");
        std::fflush(stdout);
        if (!std::getline(std::cin, line))
            break;
        if (line.empty())
            continue;
        if (line == ".quit" || line == ".exit")
            break;
        if (line == ".tables") {
            auto tx = database.engine().begin();
            auto tables = database.catalog().tables(*tx);
            tx->rollback();
            if (tables.isOk()) {
                for (const std::string &name : *tables)
                    std::printf("%s\n", name.c_str());
            }
            continue;
        }
        if (line == ".stats") {
            const core::EngineStats &s = database.engine().stats();
            std::printf("txns: %llu committed, %llu rolled back; "
                        "in-place commits: %llu, logged: %llu\n",
                        (unsigned long long)s.txCommitted,
                        (unsigned long long)s.txRolledBack,
                        (unsigned long long)s.inPlaceCommits,
                        (unsigned long long)s.logCommits);
            std::printf("PM: %llu stores, %llu clflush, %llu fences\n",
                        (unsigned long long)device.stats().stores,
                        (unsigned long long)device.stats().clflushes,
                        (unsigned long long)device.stats().fences);
            continue;
        }

        auto result = database.exec(line);
        if (!result.isOk()) {
            std::printf("error: %s\n",
                        result.status().toString().c_str());
            continue;
        }
        if (!result->columns.empty())
            std::printf("%s", result->toString().c_str());
        else if (result->affected > 0)
            std::printf("(%llu rows affected)\n",
                        (unsigned long long)result->affected);
        else
            std::printf("ok\n");
    }
    return 0;
}
