/**
 * @file
 * Crash-recovery demonstration (paper §4.4): run transactions against
 * a FAST database on a crash-simulating PM device, pull the plug at a
 * random persistence event mid-transaction, recover, and show that
 * every committed transaction survived while the in-flight one is
 * all-or-nothing.
 *
 * Usage: crash_recovery [crash_seed]
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "btree/btree.h"
#include "common/rng.h"
#include "core/engine.h"
#include "pm/device.h"

using namespace fasp;
using core::Engine;
using core::EngineConfig;
using core::EngineKind;

namespace {

std::vector<std::uint8_t>
makeValue(std::uint64_t key)
{
    std::vector<std::uint8_t> value(64);
    Rng rng(key * 40503 + 7);
    rng.fillBytes(value.data(), value.size());
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = argc > 1 ? std::atoll(argv[1]) : 2026;

    // Crash-simulation mode: stores live in a simulated CPU cache and
    // only reach "PM" on clflush; crash() drops the cache, optionally
    // persisting a random subset of dirty lines first (the harshest
    // model: uncontrolled cache eviction before power failure).
    pm::PmConfig pm_cfg;
    pm_cfg.size = 32u << 20;
    pm_cfg.mode = pm::PmMode::CacheSim;
    pm_cfg.crashPolicy = pm::CrashPolicy::RandomLines;
    pm_cfg.crashSeed = seed;
    pm::PmDevice device(pm_cfg);

    EngineConfig cfg;
    cfg.kind = EngineKind::Fast;

    std::map<std::uint64_t, std::vector<std::uint8_t>> committed;
    {
        auto engine = std::move(*Engine::create(device, cfg, true));
        auto tree = *engine->createTree(1);

        // Commit 200 single-record transactions...
        for (std::uint64_t key = 1; key <= 200; ++key) {
            auto value = makeValue(key);
            if (!engine
                     ->insert(tree, key,
                              std::span<const std::uint8_t>(value))
                     .isOk()) {
                std::fprintf(stderr, "insert failed\n");
                return 1;
            }
            committed[key] = value;
        }
        std::printf("committed %zu transactions\n", committed.size());

        // ...then crash somewhere inside transaction #201.
        Rng rng(seed);
        pm::PointCrashInjector injector(device.eventCount() +
                                        rng.nextBounded(40));
        device.setCrashInjector(&injector);
        try {
            auto value = makeValue(201);
            (void)engine->insert(
                tree, 201, std::span<const std::uint8_t>(value));
            std::printf("transaction 201 committed before the crash "
                        "window closed\n");
            committed[201] = value;
        } catch (const pm::CrashException &e) {
            std::printf("POWER FAILURE at persistence event %llu "
                        "(mid-transaction #201)\n",
                        (unsigned long long)e.eventIndex());
        }
        device.setCrashInjector(nullptr);
        // engine destroyed: all volatile state is gone.
    }

    device.reviveAfterCrash();
    std::printf("re-opening the database (recovery runs)...\n");
    auto engine = std::move(*Engine::create(device, cfg, false));

    auto tx = engine->begin();
    auto tree = *btree::BTree::open(tx->pageIO(), 1);

    Status integrity = tree.checkIntegrity(tx->pageIO());
    std::printf("B-tree integrity after recovery: %s\n",
                integrity.toString().c_str());

    std::size_t found = 0, wrong = 0;
    std::vector<std::uint8_t> out;
    for (const auto &[key, value] : committed) {
        if (!tree.get(tx->pageIO(), key, out).isOk() || out != value)
            ++wrong;
        else
            ++found;
    }
    auto survivor = tree.contains(tx->pageIO(), 201);
    tx->rollback();

    std::printf("committed records intact: %zu/%zu (corrupt or "
                "missing: %zu)\n",
                found, committed.size(), wrong);
    if (!committed.count(201)) {
        std::printf("in-flight transaction #201: %s (all-or-nothing "
                    "either way)\n",
                    survivor.isOk() && *survivor ? "made it to PM"
                                                 : "rolled back");
    }
    return wrong == 0 && integrity.isOk() ? 0 : 1;
}
