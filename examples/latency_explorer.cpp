/**
 * @file
 * Latency explorer: how does each engine's insert cost scale as PM
 * drifts from DRAM-like (120ns) to conservative (1.2us) latency? This
 * is the question the paper's evaluation revolves around; the example
 * sweeps it with a user-chosen record size and prints the crossover
 * analysis (NVWAL's copy-to-DRAM-first design loses more ground the
 * slower — or larger — the persistent writes get).
 *
 * Usage: latency_explorer [record_bytes] [num_txns]
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    std::size_t record = argc > 1 ? std::atoll(argv[1]) : 256;
    std::size_t txns = argc > 2 ? std::atoll(argv[2]) : 5000;

    std::printf("insert cost vs PM latency, %zuB records, %zu txns "
                "per point\n",
                record, txns);
    Table table({"latency(ns)", "NVWAL(us)", "FASH(us)", "FAST(us)",
                 "FAST speedup"});

    for (std::uint64_t lat : {120, 240, 480, 960, 1920}) {
        double totals[3] = {0, 0, 0};
        int idx = 0;
        for (core::EngineKind kind : paperEngines()) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(lat, lat);
            config.numTxns = txns;
            config.recordSize = record;
            BenchResult result = runInsertBench(config);
            totals[idx++] = groupComponents(result, kind).totalNs();
        }
        table.addRow({latencyLabel(pm::LatencyModel::of(lat, lat)),
                      Table::fmt(totals[0] / 1000.0),
                      Table::fmt(totals[1] / 1000.0),
                      Table::fmt(totals[2] / 1000.0),
                      Table::fmt(totals[0] / totals[2], 2) + "x"});
    }
    table.print("engine scaling with PM latency");
    std::printf("\nthe paper's claim to check: FAST stays fastest at "
                "every latency, and the margin holds even at very "
                "conservative (1.2us+) PM latencies.\n");
    return 0;
}
