/**
 * @file
 * Quickstart: open a FAST database on emulated persistent memory, run
 * some SQL, and peek at the engine statistics that make the paper's
 * point — single-record transactions commit in place with a handful of
 * flushes instead of writing a log.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "db/database.h"
#include "pm/device.h"

using namespace fasp;

int
main()
{
    // 1. An emulated PM device: 64 MiB, 300ns read / 300ns write.
    pm::PmConfig pm_cfg;
    pm_cfg.size = 64u << 20;
    pm_cfg.latency = pm::LatencyModel::of(300, 300);
    pm::PmDevice device(pm_cfg);

    // 2. A database using FAST (failure-atomic slotted paging with
    //    HTM in-place commit). Swap the kind for EngineKind::Nvwal or
    //    EngineKind::Journal to compare engines on the same API.
    core::EngineConfig engine_cfg;
    engine_cfg.kind = core::EngineKind::Fast;
    auto db = db::Database::open(device, engine_cfg, /*format=*/true);
    if (!db.isOk()) {
        std::fprintf(stderr, "open failed: %s\n",
                     db.status().toString().c_str());
        return 1;
    }
    db::Database &database = **db;

    // 3. Ordinary SQL. Each statement outside BEGIN/COMMIT is its own
    //    failure-atomic transaction.
    auto run = [&](const char *sql) {
        auto result = database.exec(sql);
        if (!result.isOk()) {
            std::fprintf(stderr, "%s\n  -> %s\n", sql,
                         result.status().toString().c_str());
            std::exit(1);
        }
        return std::move(*result);
    };

    run("CREATE TABLE contacts (id INTEGER PRIMARY KEY, name TEXT, "
        "phone TEXT)");
    run("INSERT INTO contacts VALUES (1, 'Ada Lovelace', '+44-1815')");
    run("INSERT INTO contacts VALUES (2, 'Alan Turing', '+44-1912')");
    run("INSERT INTO contacts VALUES (3, 'Grace Hopper', '+1-1906')");
    run("UPDATE contacts SET phone = '+1-2026' WHERE id = 3");

    auto rows = run("SELECT * FROM contacts ORDER BY name");
    std::printf("%s", rows.toString().c_str());

    // 4. The paper's point, visible in the stats: the three INSERTs
    //    and the UPDATE were single-page transactions -> in-place
    //    commits (one RTM header publish + one clflush each), no log.
    const core::EngineStats &stats = database.engine().stats();
    std::printf("\ncommitted txns: %llu  in-place commits: %llu  "
                "logged commits: %llu\n",
                (unsigned long long)stats.txCommitted,
                (unsigned long long)stats.inPlaceCommits,
                (unsigned long long)stats.logCommits);
    std::printf("PM clflushes issued: %llu\n",
                (unsigned long long)device.stats().clflushes);
    return 0;
}
