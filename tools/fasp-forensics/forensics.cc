#include "forensics.h"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/byte_io.h"
#include "common/crc32.h"

namespace fasp::forensics {

namespace {

// Durable format constants, mirrored from the writers (superblock.cc,
// slot_header_log.cc, journal.h, nv_heap.h, legacy_wal.cc). Forensics
// deliberately re-derives the layouts from first principles instead of
// instantiating the managers: the tool must decode images the managers
// themselves would refuse to open.
constexpr std::uint64_t kSuperblockMagic = 0x4641535044423031ull;
constexpr std::uint64_t kSlotHeaderLogMagic = 0x4653484c4f473031ull;
constexpr std::uint64_t kLegacyWalMagic = 0x4c57414c4c4f4731ull;
constexpr std::uint64_t kNvHeapMagic = 0x4e56484541503031ull;
constexpr std::uint32_t kJournalMagic = 0x4a524e4cu;

constexpr std::uint32_t kNvStateEnd = 0;
constexpr std::uint32_t kNvStateAllocated = 0xa110ca7e;
constexpr std::uint32_t kNvStateFree = 0xf4eeb10c;

SuperblockInfo
decodeSuperblock(const std::uint8_t *data, std::size_t len)
{
    SuperblockInfo sb;
    if (len < 64)
        return sb;
    if (loadU64(data) != kSuperblockMagic)
        return sb;
    sb.present = true;
    sb.version = loadU32(data + 8);
    sb.crcOk = loadU32(data + 60) == crc32c(data, 60);
    sb.pageSize = loadU32(data + 12);
    sb.pageCount = loadU32(data + 16);
    sb.bitmapPages = loadU32(data + 20);
    sb.directoryPid = loadU32(data + 24);
    sb.logOff = loadU64(data + 28);
    sb.logLen = loadU64(data + 36);
    sb.frOff = loadU64(data + 44);
    sb.frLen = loadU64(data + 52);
    return sb;
}

/** FAST/FASH slot-header log: 20-byte header, [u16 type][u16 len]
 *  entries from +64, commit entry carries txid + epoch + running CRC
 *  over every prior entry byte. */
void
decodeSlotHeaderLog(const std::uint8_t *log, std::uint64_t len,
                    LogInfo &out)
{
    out.family = "slot-header-log";
    out.epoch = loadU64(log + 8);
    out.headerOk = loadU32(log + 16) == crc32c(log, 16);

    std::uint64_t cursor = 64;
    std::uint32_t running_crc = 0;
    while (cursor + 4 <= len) {
        std::uint16_t type = loadU16(log + cursor);
        std::uint16_t body_len = loadU16(log + cursor + 2);
        if (type == 0 || type > 4)
            break;
        if (cursor + 4 + body_len > len) {
            out.tornTail++;
            break;
        }
        out.entries++;
        if (type == 4 && body_len == 20) {
            const std::uint8_t *body = log + cursor + 4;
            std::uint64_t txid = loadU64(body);
            std::uint64_t epoch = loadU64(body + 8);
            std::uint32_t crc = loadU32(body + 16);
            if (epoch == out.epoch && crc == running_crc) {
                out.commits++;
                out.committedTxids.push_back(txid);
            } else {
                out.tornTail++;
            }
        }
        running_crc = crc32c(log + cursor, 4 + body_len, running_crc);
        cursor += 4 + body_len;
    }
}

/** Rollback journal: 16-byte header {magic, count, crc}; count > 0
 *  means the journal is sealed and an in-place update was cut short
 *  (recovery will roll it back). */
void
decodeJournal(const std::uint8_t *log, std::uint64_t len,
              std::uint32_t pageSize, LogInfo &out)
{
    out.family = "journal";
    std::uint32_t count = loadU32(log + 4);
    std::uint32_t crc = loadU32(log + 8);
    out.entries = count;
    out.sealed = count != 0;
    if (count == 0 || pageSize == 0) {
        out.headerOk = count == 0;
        return;
    }
    std::uint64_t entry_bytes =
        static_cast<std::uint64_t>(8 + pageSize) * count;
    if (64 + entry_bytes > len) {
        out.headerOk = false; // header claims more than the region
        out.tornTail++;
        return;
    }
    out.headerOk = crc == crc32c(log + 64, entry_bytes);
    if (!out.headerOk)
        out.tornTail++;
}

/** NVWAL heap: 16-byte blocks from +16, allocated blocks hold frame
 *  payloads {u32 kind, u64 txid, ...}; commit frames are 24 bytes
 *  (CRC over the first 20). */
void
decodeNvwal(const std::uint8_t *log, std::uint64_t len, LogInfo &out)
{
    out.family = "nvwal";
    out.headerOk = true;
    std::uint64_t cursor = 16;
    while (cursor + 16 <= len) {
        std::uint32_t state = loadU32(log + cursor);
        std::uint32_t size = loadU32(log + cursor + 4);
        if (state == kNvStateEnd)
            break;
        if ((state != kNvStateAllocated && state != kNvStateFree) ||
            cursor + 16 + size > len) {
            out.tornTail++;
            break;
        }
        out.entries++;
        if (state == kNvStateAllocated && size >= 24) {
            const std::uint8_t *p = log + cursor + 16;
            std::uint32_t kind = loadU32(p);
            if (kind == 2 && loadU32(p + 20) == crc32c(p, 20)) {
                out.commits++;
                out.committedTxids.push_back(loadU64(p + 4));
            }
        }
        cursor += 16 + size;
    }
}

/** Legacy WAL: 20-byte header {magic, epoch, crc}; 32-byte frame
 *  headers from +64; data frames carry a full page. */
void
decodeLegacyWal(const std::uint8_t *log, std::uint64_t len,
                std::uint32_t pageSize, LogInfo &out)
{
    out.family = "legacy-wal";
    out.epoch = loadU64(log + 8);
    out.headerOk = loadU32(log + 16) == crc32c(log, 16);
    if (pageSize == 0)
        return;

    std::uint64_t cursor = 64;
    while (cursor + 32 <= len) {
        const std::uint8_t *head = log + cursor;
        std::uint32_t kind = loadU32(head);
        if (kind == 0)
            break;
        if (kind != 1 && kind != 2)
            break; // stale garbage past the log tail
        if (loadU64(head + 16) != out.epoch)
            break; // frame from before the last truncation
        std::uint32_t crc = crc32c(head, 28);
        if (kind == 1) {
            if (cursor + 32 + pageSize > len) {
                out.tornTail++;
                break;
            }
            crc = crc32c(head + 32, pageSize, crc);
        }
        if (crc != loadU32(head + 28)) {
            out.tornTail++;
            break;
        }
        out.entries++;
        if (kind == 2) {
            out.commits++;
            out.committedTxids.push_back(loadU64(head + 8));
            cursor += 32;
        } else {
            cursor += 32 + static_cast<std::uint64_t>(pageSize);
        }
    }
}

LogInfo
decodeLogRegion(const std::uint8_t *data, std::size_t len,
                const SuperblockInfo &sb)
{
    LogInfo out;
    if (!sb.present || sb.logLen < 64 || sb.logOff + sb.logLen > len)
        return out;
    const std::uint8_t *log = data + sb.logOff;
    std::uint64_t magic = loadU64(log);
    if (magic == kSlotHeaderLogMagic)
        decodeSlotHeaderLog(log, sb.logLen, out);
    else if (magic == kLegacyWalMagic)
        decodeLegacyWal(log, sb.logLen, sb.pageSize, out);
    else if (magic == kNvHeapMagic)
        decodeNvwal(log, sb.logLen, out);
    else if (loadU32(log) == kJournalMagic)
        decodeJournal(log, sb.logLen, sb.pageSize, out);
    else
        out.family = "unknown";
    return out;
}

TimelineInfo
decodeTimeline(const std::uint8_t *data, std::size_t len,
               const SuperblockInfo &sb)
{
    TimelineInfo out;
    if (!sb.present || sb.frLen == 0 || sb.frOff + sb.frLen > len)
        return out;
    out.regionPresent = true;
    const std::uint8_t *region = data + sb.frOff;
    if (sb.frLen >= 64 && loadU64(region) == obs::FlightRecorder::kMagic) {
        out.headerOk =
            loadU32(region + 20) == crc32c(region, 20) &&
            loadU32(region + 8) == obs::FlightRecorder::kFormatVersion;
        out.capacity = loadU32(region + 16);
    }
    if (!out.headerOk)
        return out;
    out.records = obs::FlightRecorder::decodeRegion(region, sb.frLen,
                                                    &out.tornSlots);
    return out;
}

InflightInfo
inferInflight(const TimelineInfo &timeline)
{
    InflightInfo out;
    // Per-txid open OpBegin; resolved by CommitPoint/Abort. Records
    // arrive in sequence order, so "last writer wins" is correct.
    struct Open
    {
        std::uint64_t seq;
        std::uint8_t engine;
    };
    std::unordered_map<std::uint64_t, Open> open;
    std::uint64_t recovery_depth = 0;
    for (const obs::FlightRecord &rec : timeline.records) {
        switch (rec.type) {
          case obs::FlightEventType::OpBegin:
            open[rec.txid] = Open{rec.seq, rec.engine};
            break;
          case obs::FlightEventType::CommitPoint:
            out.lastCommittedTxid = rec.txid;
            open.erase(rec.txid);
            break;
          case obs::FlightEventType::Abort:
            open.erase(rec.txid);
            break;
          case obs::FlightEventType::RecoveryBegin:
            recovery_depth++;
            break;
          case obs::FlightEventType::RecoveryEnd:
            if (recovery_depth > 0)
                recovery_depth--;
            break;
          default:
            break; // Fallback / PageSplit / Defrag don't change state
        }
    }
    out.recoveryInterrupted = recovery_depth > 0;
    // The crash interrupts at most one op per thread; report the
    // latest-begun unresolved one (single-threaded crash tests have
    // exactly zero or one).
    for (const auto &[txid, o] : open) {
        if (!out.found || o.seq > out.beginSeq) {
            out.found = true;
            out.txid = txid;
            out.engineCode = o.engine;
            out.beginSeq = o.seq;
        }
    }
    return out;
}

void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

const char *
boolStr(bool v)
{
    return v ? "true" : "false";
}

} // namespace

const char *
engineCodeName(std::uint8_t code)
{
    // code = core::EngineKind + 1 (flight_recorder.h).
    switch (code) {
      case 1: return "FAST";
      case 2: return "FASH";
      case 3: return "NVWAL";
      case 4: return "LegacyWAL";
      case 5: return "Journal";
    }
    return "unknown";
}

CrashReport
analyzeImage(const std::uint8_t *data, std::size_t len)
{
    CrashReport report;
    report.imageBytes = len;
    report.sb = decodeSuperblock(data, len);
    report.log = decodeLogRegion(data, len, report.sb);
    report.timeline = decodeTimeline(data, len, report.sb);
    report.inflight = inferInflight(report.timeline);
    return report;
}

std::string
reportToJson(const CrashReport &report)
{
    std::string out;
    out += "{\n  \"tool\": \"fasp-forensics\",\n";
    out += "  \"schema_version\": 1,\n";
    out += "  \"image_bytes\": " + std::to_string(report.imageBytes);

    const SuperblockInfo &sb = report.sb;
    out += ",\n  \"superblock\": {\"present\": ";
    out += boolStr(sb.present);
    out += ", \"crc_ok\": ";
    out += boolStr(sb.crcOk);
    out += ", \"version\": " + std::to_string(sb.version);
    out += ", \"page_size\": " + std::to_string(sb.pageSize);
    out += ", \"page_count\": " + std::to_string(sb.pageCount);
    out += ", \"bitmap_pages\": " + std::to_string(sb.bitmapPages);
    out += ", \"directory_pid\": " + std::to_string(sb.directoryPid);
    out += ", \"log_off\": " + std::to_string(sb.logOff);
    out += ", \"log_len\": " + std::to_string(sb.logLen);
    out += ", \"fr_off\": " + std::to_string(sb.frOff);
    out += ", \"fr_len\": " + std::to_string(sb.frLen);
    out += "}";

    const LogInfo &log = report.log;
    out += ",\n  \"log\": {\"family\": ";
    appendJsonString(out, log.family);
    out += ", \"header_ok\": ";
    out += boolStr(log.headerOk);
    out += ", \"epoch\": " + std::to_string(log.epoch);
    out += ", \"entries\": " + std::to_string(log.entries);
    out += ", \"commits\": " + std::to_string(log.commits);
    out += ", \"torn_tail\": " + std::to_string(log.tornTail);
    out += ", \"sealed\": ";
    out += boolStr(log.sealed);
    out += ", \"committed_txids\": [";
    for (std::size_t i = 0; i < log.committedTxids.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(log.committedTxids[i]);
    }
    out += "]}";

    const TimelineInfo &tl = report.timeline;
    out += ",\n  \"flight_recorder\": {\"region_present\": ";
    out += boolStr(tl.regionPresent);
    out += ", \"header_ok\": ";
    out += boolStr(tl.headerOk);
    out += ", \"capacity\": " + std::to_string(tl.capacity);
    out += ", \"torn_slots\": [";
    for (std::size_t i = 0; i < tl.tornSlots.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(tl.tornSlots[i]);
    }
    out += "], \"records\": [";
    for (std::size_t i = 0; i < tl.records.size(); ++i) {
        const obs::FlightRecord &rec = tl.records[i];
        out += i == 0 ? "\n" : ",\n";
        out += "    {\"seq\": " + std::to_string(rec.seq);
        out += ", \"type\": ";
        appendJsonString(out, obs::flightEventTypeName(rec.type));
        out += ", \"engine\": ";
        appendJsonString(out, engineCodeName(rec.engine));
        out += ", \"txid\": " + std::to_string(rec.txid);
        out += ", \"page\": " + std::to_string(rec.pageId);
        out += ", \"aux\": " + std::to_string(rec.aux);
        out += ", \"model_ns\": " + std::to_string(rec.modelNs);
        out += "}";
    }
    if (!tl.records.empty())
        out += "\n  ";
    out += "]}";

    const InflightInfo &inf = report.inflight;
    out += ",\n  \"inflight\": {\"found\": ";
    out += boolStr(inf.found);
    out += ", \"txid\": " + std::to_string(inf.txid);
    out += ", \"engine\": ";
    appendJsonString(out, engineCodeName(inf.engineCode));
    out += ", \"begin_seq\": " + std::to_string(inf.beginSeq);
    out += ", \"recovery_interrupted\": ";
    out += boolStr(inf.recoveryInterrupted);
    out += ", \"last_committed_txid\": " +
           std::to_string(inf.lastCommittedTxid);
    out += "}\n}\n";
    return out;
}

std::string
reportToText(const CrashReport &report)
{
    char buf[256];
    std::string out;
    auto line = [&out, &buf](const char *fmt, auto... args) {
        std::snprintf(buf, sizeof buf, fmt, args...);
        out += buf;
        out += '\n';
    };

    line("image: %llu bytes",
         static_cast<unsigned long long>(report.imageBytes));

    const SuperblockInfo &sb = report.sb;
    if (!sb.present) {
        line("superblock: MISSING (no magic at offset 0)");
        return out;
    }
    line("superblock: v%u, crc %s", sb.version,
         sb.crcOk ? "ok" : "BAD");
    line("  pages: %u x %u B (bitmap %u, directory pid %u)",
         sb.pageCount, sb.pageSize, sb.bitmapPages, sb.directoryPid);
    line("  log region: off=%llu len=%llu",
         static_cast<unsigned long long>(sb.logOff),
         static_cast<unsigned long long>(sb.logLen));
    line("  flight recorder: off=%llu len=%llu",
         static_cast<unsigned long long>(sb.frOff),
         static_cast<unsigned long long>(sb.frLen));

    const LogInfo &log = report.log;
    line("log: family=%s header=%s epoch=%llu", log.family.c_str(),
         log.headerOk ? "ok" : "BAD",
         static_cast<unsigned long long>(log.epoch));
    line("  entries=%llu commits=%llu torn_tail=%llu sealed=%s",
         static_cast<unsigned long long>(log.entries),
         static_cast<unsigned long long>(log.commits),
         static_cast<unsigned long long>(log.tornTail),
         log.sealed ? "yes" : "no");
    if (!log.committedTxids.empty()) {
        out += "  committed txids:";
        for (std::uint64_t txid : log.committedTxids)
            out += " " + std::to_string(txid);
        out += '\n';
    }

    const TimelineInfo &tl = report.timeline;
    if (!tl.regionPresent) {
        line("flight recorder: no region in this image");
    } else if (!tl.headerOk) {
        line("flight recorder: region present but header undecodable");
    } else {
        line("flight recorder: capacity=%u records=%zu torn_slots=%zu",
             tl.capacity, tl.records.size(), tl.tornSlots.size());
        for (const obs::FlightRecord &rec : tl.records) {
            line("  #%-6llu %-12s %-9s tx=%llu page=%u aux=%llu",
                 static_cast<unsigned long long>(rec.seq),
                 obs::flightEventTypeName(rec.type),
                 engineCodeName(rec.engine),
                 static_cast<unsigned long long>(rec.txid), rec.pageId,
                 static_cast<unsigned long long>(rec.aux));
        }
        for (std::uint32_t slot : tl.tornSlots)
            line("  slot %u: TORN (bad CRC, record ignored)", slot);
    }

    const InflightInfo &inf = report.inflight;
    if (inf.recoveryInterrupted)
        line("inflight: RECOVERY was interrupted by this crash");
    if (inf.found) {
        line("inflight: tx %llu (%s) begun at seq %llu never "
             "committed or aborted",
             static_cast<unsigned long long>(inf.txid),
             engineCodeName(inf.engineCode),
             static_cast<unsigned long long>(inf.beginSeq));
    } else {
        line("inflight: none (last committed tx %llu)",
             static_cast<unsigned long long>(inf.lastCommittedTxid));
    }
    return out;
}

} // namespace fasp::forensics
