/**
 * @file
 * Offline post-crash forensics over a raw PM image (DESIGN.md §12,
 * EXPERIMENTS.md "Post-crash forensics"). Everything here works on a
 * byte buffer — the durable image of a crashed (or clean) device — so
 * it never needs a PmDevice, an Engine, or recovery to have run:
 *
 *   - superblock decode (v2 layout, CRC-checked);
 *   - log-region decode, sniffing the engine family by magic
 *     (slot-header log / rollback journal / NVWAL heap / legacy WAL)
 *     and extracting epoch, entry counts, and committed txids;
 *   - flight-recorder timeline reconstruction, including torn-tail
 *     detection (a record half-flushed at the crash point fails its
 *     CRC and is reported, never misparsed);
 *   - in-flight operation inference: the OpBegin records with no
 *     matching CommitPoint/Abort tell which transaction the crash
 *     interrupted.
 *
 * Used by the fasp-forensics CLI and linked straight into crash_sweep,
 * which asserts at every simulated crash point that the inference
 * matches the transaction it actually tore.
 */

#ifndef FASP_TOOLS_FORENSICS_H
#define FASP_TOOLS_FORENSICS_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace fasp::forensics {

/** Decoded superblock fields (valid when present && crcOk). */
struct SuperblockInfo
{
    bool present = false; //!< magic matched
    bool crcOk = false;
    std::uint32_t version = 0;
    std::uint32_t pageSize = 0;
    std::uint32_t pageCount = 0;
    std::uint32_t bitmapPages = 0;
    std::uint32_t directoryPid = 0;
    std::uint64_t logOff = 0;
    std::uint64_t logLen = 0;
    std::uint64_t frOff = 0;
    std::uint64_t frLen = 0;
};

/** Log-region decode, summarized uniformly across the four formats. */
struct LogInfo
{
    /** "slot-header-log", "journal", "nvwal", "legacy-wal", "none",
     *  or "unknown" (region present but no magic matched). */
    std::string family = "none";
    bool headerOk = false;
    std::uint64_t epoch = 0;    //!< slot-header / legacy-wal only
    std::uint64_t entries = 0;  //!< entries / frames / heap blocks
    std::uint64_t commits = 0;  //!< commit marks decoded
    std::uint64_t tornTail = 0; //!< records cut off by a bad CRC
    bool sealed = false;        //!< journal: sealed, rollback pending
    std::vector<std::uint64_t> committedTxids;
};

/** Flight-recorder ring reconstruction. */
struct TimelineInfo
{
    bool regionPresent = false; //!< superblock says frLen != 0
    bool headerOk = false;
    std::uint32_t capacity = 0;
    std::vector<obs::FlightRecord> records; //!< sequence order
    std::vector<std::uint32_t> tornSlots;   //!< torn mid-append
};

/** The operation the crash interrupted, per the flight recorder. */
struct InflightInfo
{
    bool found = false;        //!< an OpBegin never resolved
    std::uint64_t txid = 0;
    std::uint8_t engineCode = 0; //!< core::EngineKind + 1
    std::uint64_t beginSeq = 0;  //!< seq of the orphaned OpBegin
    bool recoveryInterrupted = false; //!< RecoveryBegin never ended
    /** Highest-seq CommitPoint txid (0 = none): when no op is
     *  in-flight, this is the last transaction known durable. */
    std::uint64_t lastCommittedTxid = 0;
};

/** Everything the analyzer can tell about one image. */
struct CrashReport
{
    std::uint64_t imageBytes = 0;
    SuperblockInfo sb;
    LogInfo log;
    TimelineInfo timeline;
    InflightInfo inflight;
};

/** Engine name for a flight-record engine code ("FAST", ...,
 *  "unknown"). */
const char *engineCodeName(std::uint8_t code);

/** Analyze a raw image. Never throws; missing/corrupt structures are
 *  reported, not fatal. */
CrashReport analyzeImage(const std::uint8_t *data, std::size_t len);

/** Machine-readable report (schema checked by metrics_check
 *  --forensics). */
std::string reportToJson(const CrashReport &report);

/** Human-readable report for the CLI. */
std::string reportToText(const CrashReport &report);

} // namespace fasp::forensics

#endif // FASP_TOOLS_FORENSICS_H
