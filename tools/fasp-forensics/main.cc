/**
 * @file
 * fasp-forensics: offline crash-report CLI. Opens a raw PM image file
 * (crashed or clean — e.g. one dumped by crash_sweep via
 * FASP_CRASH_SWEEP_DUMP_DIR) and prints what can be reconstructed from
 * the durable bytes alone: superblock, log region, flight-recorder
 * timeline, and the inferred in-flight operation.
 *
 * Usage: fasp-forensics [--json] <image-file>
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "forensics.h"

int
main(int argc, char **argv)
{
    bool json = false;
    const char *path = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (path == nullptr) {
            path = argv[i];
        } else {
            path = nullptr;
            break;
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: fasp-forensics [--json] <image-file>\n");
        return 2;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "fasp-forensics: cannot open %s\n", path);
        return 1;
    }
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        std::fprintf(stderr, "fasp-forensics: read error on %s\n",
                     path);
        return 1;
    }

    fasp::forensics::CrashReport report =
        fasp::forensics::analyzeImage(image.data(), image.size());
    std::string body = json ? fasp::forensics::reportToJson(report)
                            : fasp::forensics::reportToText(report);
    std::fputs(body.c_str(), stdout);
    return 0;
}
