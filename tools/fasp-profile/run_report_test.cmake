# Shape test for fasp-profile: run all three render modes over the
# export-demo golden (a deterministic schema-v4 document with spans,
# contention, heat, and outliers) and assert each output carries the
# expected structure.

function(require_match text pattern what)
    if(NOT text MATCHES "${pattern}")
        message(FATAL_ERROR "fasp-profile ${what}: missing '${pattern}'")
    endif()
endfunction()

# Text report.
execute_process(
    COMMAND ${PROFILE_BIN} ${GOLDEN_JSON}
    OUTPUT_VARIABLE report RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fasp-profile exited with ${rc}")
endif()
require_match("${report}" "== transaction spans ==" "report")
require_match("${report}" "== latch contention ==" "report")
require_match("${report}" "== page heat" "report")
require_match("${report}" "== p99 outliers ==" "report")
require_match("${report}" "FAST" "report")
require_match("${report}" "log-flush" "report")
require_match("${report}" "hot_slot=17" "report")

# Stable report: no wall-clock fields may leak through.
execute_process(
    COMMAND ${PROFILE_BIN} --stable ${GOLDEN_JSON}
    OUTPUT_VARIABLE stable RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fasp-profile --stable exited with ${rc}")
endif()
require_match("${stable}" "captured=" "--stable")
if(stable MATCHES "wall p50" OR stable MATCHES "hot_slot")
    message(FATAL_ERROR "fasp-profile --stable leaks timing fields")
endif()

# JSON artifact.
execute_process(
    COMMAND ${PROFILE_BIN} --json ${GOLDEN_JSON}
    OUTPUT_VARIABLE artifact RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fasp-profile --json exited with ${rc}")
endif()
require_match("${artifact}" "\"tool\": \"fasp-profile\"" "--json")
require_match("${artifact}" "\"dominant_phase\": \"log-flush\"" "--json")

# chrome://tracing document.
execute_process(
    COMMAND ${PROFILE_BIN} --trace=${WORK_DIR}/outliers.trace.json
        ${GOLDEN_JSON}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fasp-profile --trace exited with ${rc}")
endif()
file(READ ${WORK_DIR}/outliers.trace.json trace)
require_match("${trace}" "traceEvents" "--trace")
require_match("${trace}" "\"ph\": \"X\"" "--trace")
