/**
 * @file
 * fasp-profile: render the span-profiler sections of a metrics JSON
 * export (schema_version >= 4) as a human-readable profile report.
 * Works from the export file alone — no access to the live process —
 * so a CI artifact or a file a user attaches to a bug report is enough
 * to read a p99 outlier down to its dominant sub-phase.
 *
 * Modes:
 *   fasp-profile <metrics.json>            text report to stdout
 *   fasp-profile --json <metrics.json>     condensed profile JSON to
 *                                          stdout (the CI artifact)
 *   fasp-profile --trace=OUT <metrics.json>
 *                                          chrome://tracing document:
 *                                          one track per outlier, its
 *                                          sub-phases laid end-to-end
 *                                          plus its trace-event slice
 *   fasp-profile --stable <metrics.json>   text report restricted to
 *                                          deterministic fields (no
 *                                          wall/walk-clock ns, no
 *                                          outlier timings): byte-
 *                                          identical across repeated
 *                                          runs of a seeded
 *                                          single-client workload
 */

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.h"

namespace {

using fasp::minijson::JsonParser;
using fasp::minijson::JsonValue;

std::uint64_t
num(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->isNumber()
               ? static_cast<std::uint64_t>(std::llround(v->number))
               : 0;
}

std::string
str(const JsonValue &obj, const char *key, const char *fallback = "-")
{
    const JsonValue *v = obj.find(key);
    return v != nullptr && v->kind == JsonValue::String ? v->str
                                                        : fallback;
}

/** 12345678 -> "12.35ms" etc.; keeps the tables narrow. */
std::string
fmtNs(std::uint64_t ns)
{
    char buf[32];
    if (ns >= 10'000'000'000ull)
        std::snprintf(buf, sizeof buf, "%.1fs", double(ns) / 1e9);
    else if (ns >= 10'000'000ull)
        std::snprintf(buf, sizeof buf, "%.2fms", double(ns) / 1e6);
    else if (ns >= 10'000ull)
        std::snprintf(buf, sizeof buf, "%.2fus", double(ns) / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%" PRIu64 "ns", ns);
    return buf;
}

/** Sorted (ns desc, name asc) non-zero entries of a phase_ns map. */
std::vector<std::pair<std::string, std::uint64_t>>
sortedPhases(const JsonValue &phaseNs)
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (const auto &[name, v] : phaseNs.fields) {
        if (v.isNumber() && v.number > 0)
            out.emplace_back(
                name,
                static_cast<std::uint64_t>(std::llround(v.number)));
    }
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return a.second != b.second ? a.second > b.second
                                    : a.first < b.first;
    });
    return out;
}

// --- Text report -----------------------------------------------------------

/** @p stable: print only fields that are deterministic for a seeded
 *  single-client run (counts, modelled ns, page heat) and none that
 *  depend on the host's wall clock or scheduling. */
void
printText(const JsonValue &doc, bool stable)
{
    std::printf("fasp-profile: bench=%s schema=%" PRIu64 "\n",
                str(doc, "bench").c_str(), num(doc, "schema_version"));

    const JsonValue *spans = doc.find("spans");
    const JsonValue *engines =
        spans != nullptr ? spans->find("engines") : nullptr;
    std::printf("\n== transaction spans ==\n");
    if (engines == nullptr || engines->fields.empty()) {
        std::printf("(no spans recorded)\n");
    } else {
        for (const auto &[name, es] : engines->fields) {
            std::printf("%-8s spans=%-6" PRIu64 " commits=%-6" PRIu64
                        " aborts=%-4" PRIu64,
                        name.c_str(), num(es, "spans"),
                        num(es, "commits"), num(es, "aborts"));
            if (!stable) {
                const JsonValue *wall = es.find("wall_ns");
                if (wall != nullptr) {
                    std::printf(
                        " wall p50=%s p95=%s p99=%s max=%s",
                        fmtNs(num(*wall, "p50")).c_str(),
                        fmtNs(num(*wall, "p95")).c_str(),
                        fmtNs(num(*wall, "p99")).c_str(),
                        fmtNs(num(*wall, "max")).c_str());
                }
            }
            std::printf("\n         model_ns=%" PRIu64
                        " flushes=%" PRIu64 " fences=%" PRIu64
                        " wal=%" PRIu64 " pcas=%" PRIu64 "/%" PRIu64
                        "/%" PRIu64 " splits=%" PRIu64
                        " defrags=%" PRIu64 " pages=%" PRIu64
                        "/%" PRIu64 "\n",
                        num(es, "model_ns"), num(es, "flushes"),
                        num(es, "fences"), num(es, "wal_appends"),
                        num(es, "pcas_attempts"),
                        num(es, "pcas_retries"), num(es, "pcas_helps"),
                        num(es, "splits"), num(es, "defrags"),
                        num(es, "page_accesses"),
                        num(es, "page_dirty"));
            if (!stable) {
                const JsonValue *ph = es.find("phase_ns");
                if (ph != nullptr) {
                    std::uint64_t total = 0;
                    for (const auto &[n, ns] : sortedPhases(*ph))
                        total += ns;
                    for (const auto &[n, ns] : sortedPhases(*ph)) {
                        std::printf(
                            "           %-22s %10s %5.1f%%\n",
                            n.c_str(), fmtNs(ns).c_str(),
                            total != 0 ? 100.0 * double(ns) /
                                             double(total)
                                       : 0.0);
                    }
                }
            }
        }
    }

    const JsonValue *latch = doc.find("latch_contention");
    std::printf("\n== latch contention ==\n");
    if (latch != nullptr) {
        std::printf("waits=%" PRIu64 " conflicts=%" PRIu64
                    " contended_slots=%" PRIu64 "\n",
                    num(*latch, "total_waits"),
                    num(*latch, "total_conflicts"),
                    num(*latch, "contended_slots"));
        const JsonValue *slots = latch->find("slots");
        if (!stable && slots != nullptr && !slots->items.empty()) {
            std::printf("%6s %8s %10s %12s %10s %10s\n", "slot",
                        "waits", "conflicts", "wait_ns", "p95", "p99");
            for (const JsonValue &ls : slots->items) {
                const JsonValue *hist = ls.find("hist");
                std::printf(
                    "%6" PRIu64 " %8" PRIu64 " %10" PRIu64
                    " %12" PRIu64 " %10s %10s\n",
                    num(ls, "slot"), num(ls, "waits"),
                    num(ls, "conflicts"), num(ls, "wait_ns"),
                    hist != nullptr ? fmtNs(num(*hist, "p95")).c_str()
                                    : "-",
                    hist != nullptr ? fmtNs(num(*hist, "p99")).c_str()
                                    : "-");
            }
        }
    }

    const JsonValue *heat = doc.find("page_heat");
    std::printf("\n== page heat (top pages) ==\n");
    if (heat != nullptr) {
        std::printf("tracked=%" PRIu64 " overflow=%" PRIu64
                    " decays=%" PRIu64 "\n",
                    num(*heat, "tracked"), num(*heat, "overflow"),
                    num(*heat, "decays"));
        const JsonValue *top = heat->find("top");
        if (top != nullptr && !top->items.empty()) {
            std::printf("%10s %10s %8s %10s\n", "page", "accesses",
                        "dirty", "conflicts");
            for (const JsonValue &pe : top->items) {
                std::printf("%10" PRIu64 " %10" PRIu64 " %8" PRIu64
                            " %10" PRIu64 "\n",
                            num(pe, "page"), num(pe, "accesses"),
                            num(pe, "dirty"), num(pe, "conflicts"));
            }
        }
    }

    const JsonValue *outliers = doc.find("outliers");
    std::printf("\n== p99 outliers ==\n");
    if (outliers == nullptr || outliers->items.empty()) {
        std::printf("(none captured)\n");
        return;
    }
    if (stable) {
        // Which transactions land in the reservoir is a wall-clock
        // ranking; only the capture count per engine is stable.
        std::map<std::string, int> perEngine;
        for (const JsonValue &o : outliers->items)
            perEngine[str(o, "engine")]++;
        for (const auto &[eng, n] : perEngine)
            std::printf("%-8s captured=%d\n", eng.c_str(), n);
        return;
    }
    int rank = 0;
    for (const JsonValue &o : outliers->items) {
        std::uint64_t wall = num(o, "wall_ns");
        std::printf("#%-2d %-8s tx=%" PRIu64 " wall=%s %s path=%s\n",
                    ++rank, str(o, "engine").c_str(), num(o, "tx_id"),
                    fmtNs(wall).c_str(),
                    o.find("committed") != nullptr &&
                            o.find("committed")->boolean
                        ? "committed"
                        : "aborted",
                    str(o, "commit_path", "-").c_str());
        const JsonValue *ph = o.find("phase_ns");
        if (ph != nullptr) {
            for (const auto &[n, ns] : sortedPhases(*ph)) {
                std::printf("      %-22s %10s %5.1f%%\n", n.c_str(),
                            fmtNs(ns).c_str(),
                            wall != 0
                                ? 100.0 * double(ns) / double(wall)
                                : 0.0);
            }
        }
        std::printf("      latch: waits=%" PRIu64 " wait=%s"
                    " conflicts=%" PRIu64 " hot_slot=%" PRIu64
                    " (%s)\n",
                    num(o, "latch_waits"),
                    fmtNs(num(o, "latch_wait_ns")).c_str(),
                    num(o, "latch_conflicts"),
                    num(o, "hot_latch_slot"),
                    fmtNs(num(o, "hot_latch_wait_ns")).c_str());
        std::printf("      pm: model=%s flushes=%" PRIu64
                    " fences=%" PRIu64 " wal=%" PRIu64
                    " pcas=%" PRIu64 "/%" PRIu64 "/%" PRIu64
                    " pages=%" PRIu64 "/%" PRIu64 "\n",
                    fmtNs(num(o, "model_ns")).c_str(),
                    num(o, "flushes"), num(o, "fences"),
                    num(o, "wal_appends"), num(o, "pcas_attempts"),
                    num(o, "pcas_retries"), num(o, "pcas_helps"),
                    num(o, "page_accesses"), num(o, "page_dirty"));
        const JsonValue *events = o.find("events");
        if (events != nullptr && !events->items.empty()) {
            std::printf("      events (seq %" PRIu64 "..%" PRIu64
                        "):\n",
                        num(o, "seq_lo"), num(o, "seq_hi"));
            for (const JsonValue &ev : events->items) {
                std::printf("        seq=%-6" PRIu64 " %-14s"
                            " page=%-6" PRIu64 " model=%s dur=%s %s\n",
                            num(ev, "seq"), str(ev, "op").c_str(),
                            num(ev, "page"),
                            fmtNs(num(ev, "model_ns")).c_str(),
                            fmtNs(num(ev, "duration_ns")).c_str(),
                            str(ev, "detail", "").c_str());
            }
        }
    }
}

// --- JSON artifact ---------------------------------------------------------

void
jsonEscape(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
}

/** Condensed profile (the CI artifact): per-engine totals, the hot
 *  latch slots, the hot pages, and the outlier headlines (dominant
 *  phase per outlier, no event timelines). */
void
printJson(const JsonValue &doc)
{
    std::string out = "{\"tool\": \"fasp-profile\", \"bench\": ";
    jsonEscape(out, str(doc, "bench"));
    out += ", \"schema_version\": " +
        std::to_string(num(doc, "schema_version"));

    out += ", \"engines\": [";
    const JsonValue *spans = doc.find("spans");
    const JsonValue *engines =
        spans != nullptr ? spans->find("engines") : nullptr;
    bool first = true;
    if (engines != nullptr) {
        for (const auto &[name, es] : engines->fields) {
            if (!first)
                out += ", ";
            first = false;
            out += "{\"engine\": ";
            jsonEscape(out, name);
            const JsonValue *wall = es.find("wall_ns");
            out += ", \"spans\": " + std::to_string(num(es, "spans"));
            out += ", \"commits\": " +
                std::to_string(num(es, "commits"));
            out += ", \"aborts\": " + std::to_string(num(es, "aborts"));
            out += ", \"wall_p99_ns\": " +
                std::to_string(wall != nullptr ? num(*wall, "p99") : 0);
            out += ", \"latch_wait_ns\": " +
                std::to_string(num(es, "latch_wait_ns"));
            out += ", \"pcas_retries\": " +
                std::to_string(num(es, "pcas_retries"));
            std::string dominant = "-";
            std::uint64_t dominant_ns = 0;
            if (const JsonValue *ph = es.find("phase_ns")) {
                auto sorted = sortedPhases(*ph);
                if (!sorted.empty()) {
                    dominant = sorted.front().first;
                    dominant_ns = sorted.front().second;
                }
            }
            out += ", \"dominant_phase\": ";
            jsonEscape(out, dominant);
            out += ", \"dominant_phase_ns\": " +
                std::to_string(dominant_ns);
            out += "}";
        }
    }
    out += "]";

    const JsonValue *latch = doc.find("latch_contention");
    out += ", \"latch\": {\"waits\": " +
        std::to_string(latch != nullptr ? num(*latch, "total_waits")
                                        : 0) +
        ", \"conflicts\": " +
        std::to_string(
            latch != nullptr ? num(*latch, "total_conflicts") : 0) +
        ", \"contended_slots\": " +
        std::to_string(
            latch != nullptr ? num(*latch, "contended_slots") : 0) +
        "}";

    out += ", \"hot_pages\": [";
    const JsonValue *heat = doc.find("page_heat");
    const JsonValue *top =
        heat != nullptr ? heat->find("top") : nullptr;
    if (top != nullptr) {
        for (std::size_t i = 0; i < top->items.size(); ++i) {
            if (i != 0)
                out += ", ";
            const JsonValue &pe = top->items[i];
            out += "{\"page\": " + std::to_string(num(pe, "page")) +
                ", \"accesses\": " +
                std::to_string(num(pe, "accesses")) +
                ", \"conflicts\": " +
                std::to_string(num(pe, "conflicts")) + "}";
        }
    }
    out += "]";

    out += ", \"outliers\": [";
    const JsonValue *outliers = doc.find("outliers");
    if (outliers != nullptr) {
        for (std::size_t i = 0; i < outliers->items.size(); ++i) {
            if (i != 0)
                out += ", ";
            const JsonValue &o = outliers->items[i];
            out += "{\"engine\": ";
            jsonEscape(out, str(o, "engine"));
            out += ", \"tx_id\": " + std::to_string(num(o, "tx_id"));
            out += ", \"wall_ns\": " +
                std::to_string(num(o, "wall_ns"));
            std::string dominant = "-";
            std::uint64_t dominant_ns = 0;
            if (const JsonValue *ph = o.find("phase_ns")) {
                auto sorted = sortedPhases(*ph);
                if (!sorted.empty()) {
                    dominant = sorted.front().first;
                    dominant_ns = sorted.front().second;
                }
            }
            out += ", \"dominant_phase\": ";
            jsonEscape(out, dominant);
            out += ", \"dominant_phase_ns\": " +
                std::to_string(dominant_ns);
            out += ", \"events\": " +
                std::to_string(
                    o.find("events") != nullptr
                        ? o.find("events")->items.size()
                        : 0);
            out += "}";
        }
    }
    out += "]}\n";
    std::fputs(out.c_str(), stdout);
}

// --- chrome://tracing ------------------------------------------------------

/** One track (tid) per outlier: its sub-phases laid end-to-end as
 *  complete events, then its trace-event slice as a nested row. The
 *  span profiler records per-phase totals, not per-phase intervals, so
 *  the layout shows attribution, not true interleaving. */
bool
writeChromeTrace(const JsonValue &doc, const std::string &path)
{
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    const JsonValue *outliers = doc.find("outliers");
    int tid = 0;
    if (outliers != nullptr) {
        for (const JsonValue &o : outliers->items) {
            ++tid;
            std::uint64_t cursorUs = 0;
            std::string eng = str(o, "engine");
            auto emit = [&](const std::string &name,
                            std::uint64_t durUs, const char *cat) {
                if (durUs == 0)
                    durUs = 1;
                out += first ? "\n" : ",\n";
                first = false;
                out += "  {\"name\": ";
                jsonEscape(out, name);
                out += ", \"cat\": \"" + std::string(cat) +
                    "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " +
                    std::to_string(tid) +
                    ", \"ts\": " + std::to_string(cursorUs) +
                    ", \"dur\": " + std::to_string(durUs) +
                    ", \"args\": {\"engine\": \"" + eng + "\"}}";
                cursorUs += durUs;
            };
            std::string label = eng + " tx " +
                std::to_string(num(o, "tx_id")) + " (" +
                fmtNs(num(o, "wall_ns")) + ")";
            emit(label, num(o, "wall_ns") / 1000, "span");
            cursorUs = 0;
            if (const JsonValue *ph = o.find("phase_ns")) {
                for (const auto &[n, ns] : sortedPhases(*ph))
                    emit(n, ns / 1000, "phase");
            }
            cursorUs = 0;
            if (const JsonValue *events = o.find("events")) {
                for (const JsonValue &ev : events->items) {
                    std::uint64_t dur = num(ev, "duration_ns");
                    if (dur == 0)
                        dur = num(ev, "model_ns");
                    emit(str(ev, "op"), dur / 1000, "event");
                }
            }
        }
    }
    if (!first)
        out += "\n";
    out += "]}\n";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "fasp-profile: cannot write %s\n",
                     path.c_str());
        return false;
    }
    f << out;
    return f.good();
}

} // namespace

int
main(int argc, char **argv)
{
    bool stable = false;
    bool json = false;
    std::string trace_path;
    std::string input;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--stable") {
            stable = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            trace_path = arg.substr(8);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "fasp-profile: unknown option %s\n"
                         "usage: fasp-profile [--stable] [--json] "
                         "[--trace=OUT] <metrics.json>\n",
                         arg.c_str());
            return 2;
        } else {
            input = arg;
        }
    }
    if (input.empty()) {
        std::fprintf(stderr, "usage: fasp-profile [--stable] [--json] "
                             "[--trace=OUT] <metrics.json>\n");
        return 2;
    }

    std::ifstream in(input, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "fasp-profile: cannot open %s\n",
                     input.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    JsonParser parser(text);
    auto doc = parser.parse();
    if (!doc) {
        std::fprintf(stderr, "fasp-profile: %s: malformed JSON: %s\n",
                     input.c_str(), parser.error().c_str());
        return 1;
    }
    std::uint64_t schema = num(*doc, "schema_version");
    if (schema < 4) {
        std::fprintf(stderr,
                     "fasp-profile: %s: schema_version %" PRIu64
                     " has no span sections (need >= 4)\n",
                     input.c_str(), schema);
        return 1;
    }

    if (!trace_path.empty())
        return writeChromeTrace(*doc, trace_path) ? 0 : 1;
    if (json)
        printJson(*doc);
    else
        printText(*doc, stable);
    return 0;
}
