# Determinism test: two runs of the seeded single-client fig12 smoke
# must render byte-identical `fasp-profile --stable` reports. This is
# what keeps the stable report honest — if a wall-clock or
# scheduling-dependent field ever leaks into it (or into the
# deterministic metrics fields it reads), the second run diverges.

execute_process(
    COMMAND ${FIG12_BIN} --smoke --metrics=${WORK_DIR}/det1.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig12 run 1 exited with ${rc}")
endif()
execute_process(
    COMMAND ${FIG12_BIN} --smoke --metrics=${WORK_DIR}/det2.json
    OUTPUT_QUIET RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig12 run 2 exited with ${rc}")
endif()

execute_process(
    COMMAND ${PROFILE_BIN} --stable ${WORK_DIR}/det1.json
    OUTPUT_VARIABLE stable1 RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fasp-profile --stable run 1 exited with ${rc}")
endif()
execute_process(
    COMMAND ${PROFILE_BIN} --stable ${WORK_DIR}/det2.json
    OUTPUT_VARIABLE stable2 RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fasp-profile --stable run 2 exited with ${rc}")
endif()

if(NOT stable1 STREQUAL stable2)
    file(WRITE ${WORK_DIR}/det1.stable.txt "${stable1}")
    file(WRITE ${WORK_DIR}/det2.stable.txt "${stable2}")
    message(FATAL_ERROR
        "fasp-profile --stable diverged across two seeded runs; "
        "compare ${WORK_DIR}/det1.stable.txt vs det2.stable.txt")
endif()

# The report must actually carry data, or determinism is vacuous.
if(NOT stable1 MATCHES "spans=" OR stable1 MATCHES "spans=0 ")
    message(FATAL_ERROR "stable report carries no spans:\n${stable1}")
endif()
