/**
 * @file
 * bench_compare: the perf-gate's regression detector. Compares two
 * bench --json reports (a committed BENCH_*.json snapshot vs a fresh
 * run of the same bench at the same settings) metric by metric and
 * fails when the candidate regresses past tolerance.
 *
 * Comparison model:
 *
 *  - Tables are matched by exact title; rows positionally (the two
 *    reports must come from the same bench code at the same sweep
 *    settings — a shape mismatch means the snapshot is stale and the
 *    verdict is "shape", not a measured regression).
 *  - A column is gated when its name carries a known direction:
 *    throughput columns (ops/sec, ktxn/s, txn/s) regress when the
 *    candidate is LOWER; cost columns (commit(us)) regress when the
 *    candidate is HIGHER. Everything else — counters, ratios,
 *    percentile breakdowns — is informational only: smoke-sized runs
 *    make small-count columns far too noisy to gate on.
 *  - A gated cell regresses when the relative change in the bad
 *    direction exceeds the tolerance (default 15%). Baseline cells
 *    <= 0 are skipped (nothing meaningful to be relative to).
 *
 * Usage:
 *   bench_compare [--tolerance=0.15] [--tolerance=<column>=<frac>]
 *                 [--gate=<column>=higher|lower] [--json=<path>]
 *                 <baseline.json> <candidate.json>
 *
 * --tolerance=<frac>            default tolerance for every gated column
 * --tolerance=<column>=<frac>   per-column override (exact column name)
 * --gate=<column>=higher|lower  gate an extra column (higher = bigger
 *                               is better, i.e. a drop regresses)
 * --json=<path>                 machine-readable verdict for CI
 *
 * Exit: 0 pass, 1 regression found, 2 usage/IO/shape error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.h"

namespace {

using fasp::minijson::JsonParser;
using fasp::minijson::JsonValue;

struct Regression
{
    std::string table;
    std::size_t row = 0;
    std::string column;
    std::string label; //!< leading row cells, for human context
    double base = 0;
    double cand = 0;
    double change = 0; //!< signed relative change in the bad direction
    double tolerance = 0;
};

struct Options
{
    double tolerance = 0.15;
    std::map<std::string, double> columnTolerance;
    // true = higher is better (drop regresses); false = lower is
    // better (rise regresses). Columns absent from this map ride
    // through ungated — notably fig12's "latch-p95(ns)" span-profiler
    // column, whose wait times swing with host CPU share and would
    // make the gate flaky (tools/bench_compare/fixtures/
    // latch_column_noise.json proves it stays ungated).
    std::map<std::string, bool> gates = {
        {"ops/sec", true},   {"ktxn/s", true},
        {"txn/s", true},     {"commit(us)", false},
    };
    std::string jsonPath;
    std::string baselinePath;
    std::string candidatePath;
};

std::unique_ptr<JsonValue>
loadReport(const std::string &path, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return nullptr;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    JsonParser parser(text);
    auto doc = parser.parse();
    if (!doc) {
        err = path + ": malformed JSON: " + parser.error();
        return nullptr;
    }
    if (doc->kind != JsonValue::Object || !doc->find("tables") ||
        doc->find("tables")->kind != JsonValue::Array) {
        err = path + ": not a bench report (no \"tables\" array)";
        return nullptr;
    }
    return doc;
}

/** Leading string-valued cells of a row, joined — enough context to
 *  locate the point ("FAST 16" / "300/300 NVWAL"). */
std::string
rowLabel(const JsonValue &row)
{
    std::string label;
    for (const JsonValue &cell : row.items) {
        std::string part;
        if (cell.kind == JsonValue::String)
            part = cell.str;
        else if (cell.isNumber() && label.size() < 12)
            part = std::to_string(static_cast<long long>(cell.number));
        else
            continue;
        if (!label.empty())
            label += " ";
        label += part;
        if (label.size() >= 24)
            break;
    }
    return label;
}

bool
cellNumber(const JsonValue &cell, double &out)
{
    if (cell.isNumber()) {
        out = cell.number;
        return true;
    }
    return false;
}

/** Compare one matched pair of tables; append regressions. Returns
 *  false on a shape mismatch. */
bool
compareTable(const JsonValue &base, const JsonValue &cand,
             const Options &opt, std::vector<Regression> &out,
             std::size_t &gatedCells, std::string &err)
{
    const JsonValue *title = base.find("title");
    const JsonValue *bcols = base.find("columns");
    const JsonValue *brows = base.find("rows");
    const JsonValue *crows = cand.find("rows");
    if (!title || !bcols || !brows || !crows) {
        err = "table missing title/columns/rows";
        return false;
    }
    if (brows->items.size() != crows->items.size()) {
        err = "'" + title->str + "': row count " +
              std::to_string(brows->items.size()) + " vs " +
              std::to_string(crows->items.size()) +
              " (stale snapshot? refresh with bench/snapshot.sh)";
        return false;
    }

    for (std::size_t c = 0; c < bcols->items.size(); ++c) {
        const std::string &col = bcols->items[c].str;
        auto gate = opt.gates.find(col);
        if (gate == opt.gates.end())
            continue;
        bool higherIsBetter = gate->second;
        double tol = opt.tolerance;
        auto ct = opt.columnTolerance.find(col);
        if (ct != opt.columnTolerance.end())
            tol = ct->second;

        for (std::size_t r = 0; r < brows->items.size(); ++r) {
            const JsonValue &brow = brows->items[r];
            const JsonValue &crow = crows->items[r];
            if (c >= brow.items.size() || c >= crow.items.size())
                continue;
            double b = 0, v = 0;
            if (!cellNumber(brow.items[c], b) ||
                !cellNumber(crow.items[c], v))
                continue;
            if (b <= 0)
                continue;
            ++gatedCells;
            double change = higherIsBetter ? (b - v) / b : (v - b) / b;
            if (change > tol)
                out.push_back({title->str, r, col, rowLabel(brow), b,
                               v, change, tol});
        }
    }
    return true;
}

void
writeVerdict(const Options &opt, const std::vector<Regression> &regs,
             std::size_t gatedCells, const std::string &shapeError)
{
    if (opt.jsonPath.empty())
        return;
    std::ofstream out(opt.jsonPath, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "bench_compare: cannot write %s\n",
                     opt.jsonPath.c_str());
        return;
    }
    auto esc = [](const std::string &s) {
        std::string r;
        for (char c : s) {
            if (c == '"' || c == '\\')
                r += '\\';
            r += c;
        }
        return r;
    };
    const char *verdict = !shapeError.empty() ? "shape"
                          : regs.empty()      ? "pass"
                                              : "fail";
    out << "{\"verdict\": \"" << verdict << "\", \"baseline\": \""
        << esc(opt.baselinePath) << "\", \"candidate\": \""
        << esc(opt.candidatePath) << "\", \"gated_cells\": "
        << gatedCells << ", \"tolerance\": " << opt.tolerance;
    if (!shapeError.empty())
        out << ", \"error\": \"" << esc(shapeError) << "\"";
    out << ", \"regressions\": [";
    for (std::size_t i = 0; i < regs.size(); ++i) {
        const Regression &r = regs[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "%s{\"table\": \"%s\", \"row\": %zu, "
                      "\"column\": \"%s\", \"label\": \"%s\", "
                      "\"baseline\": %g, \"candidate\": %g, "
                      "\"change\": %.4f, \"tolerance\": %.4f}",
                      i == 0 ? "" : ", ", esc(r.table).c_str(), r.row,
                      esc(r.column).c_str(), esc(r.label).c_str(),
                      r.base, r.cand, r.change, r.tolerance);
        out << buf;
    }
    out << "]}\n";
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_compare [--tolerance=FRAC] "
        "[--tolerance=COLUMN=FRAC]\n"
        "                     [--gate=COLUMN=higher|lower] "
        "[--json=PATH]\n"
        "                     <baseline.json> <candidate.json>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--tolerance=", 0) == 0) {
            std::string spec = arg.substr(12);
            std::size_t eq = spec.rfind('=');
            if (eq == std::string::npos) {
                opt.tolerance = std::atof(spec.c_str());
            } else {
                opt.columnTolerance[spec.substr(0, eq)] =
                    std::atof(spec.c_str() + eq + 1);
            }
        } else if (arg.rfind("--gate=", 0) == 0) {
            std::string spec = arg.substr(7);
            std::size_t eq = spec.rfind('=');
            std::string dir =
                eq == std::string::npos ? "" : spec.substr(eq + 1);
            if (dir != "higher" && dir != "lower")
                return usage();
            opt.gates[spec.substr(0, eq)] = dir == "higher";
        } else if (arg.rfind("--json=", 0) == 0) {
            opt.jsonPath = arg.substr(7);
        } else if (arg.rfind("--", 0) == 0) {
            return usage();
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2)
        return usage();
    opt.baselinePath = positional[0];
    opt.candidatePath = positional[1];

    std::string err;
    auto base = loadReport(opt.baselinePath, err);
    if (!base) {
        std::fprintf(stderr, "bench_compare: %s\n", err.c_str());
        writeVerdict(opt, {}, 0, err);
        return 2;
    }
    auto cand = loadReport(opt.candidatePath, err);
    if (!cand) {
        std::fprintf(stderr, "bench_compare: %s\n", err.c_str());
        writeVerdict(opt, {}, 0, err);
        return 2;
    }

    // Index candidate tables by title; compare every baseline table.
    std::map<std::string, const JsonValue *> candTables;
    for (const JsonValue &t : cand->find("tables")->items)
        if (const JsonValue *title = t.find("title"))
            candTables[title->str] = &t;

    std::vector<Regression> regressions;
    std::size_t gatedCells = 0;
    for (const JsonValue &t : base->find("tables")->items) {
        const JsonValue *title = t.find("title");
        if (!title)
            continue;
        auto it = candTables.find(title->str);
        if (it == candTables.end()) {
            err = "candidate is missing table '" + title->str +
                  "' (stale snapshot? refresh with bench/snapshot.sh)";
            std::fprintf(stderr, "bench_compare: %s\n", err.c_str());
            writeVerdict(opt, regressions, gatedCells, err);
            return 2;
        }
        if (!compareTable(t, *it->second, opt, regressions,
                          gatedCells, err)) {
            std::fprintf(stderr, "bench_compare: %s\n", err.c_str());
            writeVerdict(opt, regressions, gatedCells, err);
            return 2;
        }
    }

    for (const Regression &r : regressions)
        std::fprintf(stderr,
                     "bench_compare: REGRESSION: %s [%s] %s: "
                     "%g -> %g (%.1f%% worse, tolerance %.0f%%)\n",
                     r.table.c_str(), r.label.c_str(),
                     r.column.c_str(), r.base, r.cand,
                     100.0 * r.change, 100.0 * r.tolerance);
    std::printf("bench_compare: %s: %zu gated cell%s, %zu "
                "regression%s (tolerance %.0f%%)\n",
                regressions.empty() ? "pass" : "FAIL", gatedCells,
                gatedCells == 1 ? "" : "s", regressions.size(),
                regressions.size() == 1 ? "" : "s",
                100.0 * opt.tolerance);
    writeVerdict(opt, regressions, gatedCells, "");
    return regressions.empty() ? 0 : 1;
}
