/**
 * @file
 * fasp-mc: the model-checker CLI (DESIGN.md §13).
 *
 *   fasp-mc --list
 *   fasp-mc --scenario same-page-insert [--engine FAST] [options]
 *   fasp-mc --replay trace.fmc
 *
 * Exit codes: 0 clean, 1 violation found (inverted for bug-* fixtures,
 * which MUST produce one), 2 usage/setup error. With --min-schedules N
 * a clean exploration that covered fewer than N distinct schedules
 * also exits 1, so CI notices when the state space silently collapses
 * (e.g. an interception point got compiled away).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/scenarios.h"
#include "mc/trace.h"

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: fasp-mc --scenario NAME [options]\n"
        "       fasp-mc --replay FILE [--trace-dir DIR]\n"
        "       fasp-mc --list\n"
        "options:\n"
        "  --engine NAME         FAST|FASH|NVWAL|LegacyWal|Journal\n"
        "                        (default FAST)\n"
        "  --max-schedules N     schedule budget (default 2000)\n"
        "  --min-schedules N     fail if fewer schedules explored\n"
        "  --preemptions N       preemption bound (default 2)\n"
        "  --crash-every N       fork a crash image at every Nth\n"
        "                        explored fence (default 0 = off)\n"
        "  --crash-policy P      dropall|random|torn (default torn)\n"
        "  --seed N              crash-image RNG seed (default 1)\n"
        "  --max-steps N         per-schedule step budget\n"
        "  --trace-dir DIR       write traces of violating schedules\n"
        "  --trace-every N       also trace every Nth schedule\n"
        "  --keep-going          continue past the first violation\n"
        "  --smoke               CI preset: --max-schedules 12000\n"
        "                        --preemptions 3 --crash-every 16\n"
        "                        --min-schedules 10000\n"
        "  --json                machine-readable summary on stdout\n"
        "  --list                print scenario names and exit\n");
    return 2;
}

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 10);
    return end != nullptr && *end == '\0' && end != s;
}

std::string
jsonEscape(const std::string &in)
{
    std::string out;
    for (char c : in) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
printViolations(const char *prefix,
                const std::vector<fasp::mc::McViolation> &vs)
{
    for (const auto &v : vs)
        std::fprintf(stderr, "%s[%s] %s\n", prefix,
                     fasp::mc::mcViolationKindName(v.kind),
                     v.message.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace fasp::mc;

    std::string scenarioName;
    std::string replayPath;
    std::uint64_t minSchedules = 0;
    bool json = false;
    bool smoke = false;
    ExploreOptions opt;

    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        std::uint64_t n = 0;
        if (std::strcmp(a, "--list") == 0) {
            for (const std::string &s : scenarioNames()) {
                auto sc = makeScenario(s);
                std::printf("%-22s %d threads%s  %s\n", s.c_str(),
                            sc->threadCount(),
                            sc->expectsViolation() ? "  [must-fail]"
                                                   : "",
                            sc->description());
            }
            return 0;
        } else if (std::strcmp(a, "--scenario") == 0) {
            const char *v = next();
            if (v == nullptr)
                return usage();
            scenarioName = v;
        } else if (std::strcmp(a, "--replay") == 0) {
            const char *v = next();
            if (v == nullptr)
                return usage();
            replayPath = v;
        } else if (std::strcmp(a, "--engine") == 0) {
            const char *v = next();
            if (v == nullptr || !parseEngineKind(v, opt.engine))
                return usage();
        } else if (std::strcmp(a, "--max-schedules") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, opt.maxSchedules))
                return usage();
        } else if (std::strcmp(a, "--min-schedules") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, minSchedules))
                return usage();
        } else if (std::strcmp(a, "--preemptions") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, n))
                return usage();
            opt.preemptionBound = static_cast<int>(n);
        } else if (std::strcmp(a, "--crash-every") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, n))
                return usage();
            opt.crashEvery = static_cast<std::uint32_t>(n);
        } else if (std::strcmp(a, "--crash-policy") == 0) {
            const char *v = next();
            if (v == nullptr)
                return usage();
            if (std::strcmp(v, "dropall") == 0)
                opt.crashPolicy = fasp::pm::CrashPolicy::DropAll;
            else if (std::strcmp(v, "random") == 0)
                opt.crashPolicy = fasp::pm::CrashPolicy::RandomLines;
            else if (std::strcmp(v, "torn") == 0)
                opt.crashPolicy = fasp::pm::CrashPolicy::TornLines;
            else
                return usage();
        } else if (std::strcmp(a, "--seed") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, opt.seed))
                return usage();
        } else if (std::strcmp(a, "--max-steps") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, n))
                return usage();
            opt.maxStepsPerRun = n;
        } else if (std::strcmp(a, "--trace-dir") == 0) {
            const char *v = next();
            if (v == nullptr)
                return usage();
            opt.traceDir = v;
        } else if (std::strcmp(a, "--trace-every") == 0) {
            const char *v = next();
            if (v == nullptr || !parseU64(v, n))
                return usage();
            opt.traceEvery = static_cast<std::uint32_t>(n);
        } else if (std::strcmp(a, "--keep-going") == 0) {
            opt.keepGoing = true;
        } else if (std::strcmp(a, "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(a, "--json") == 0) {
            json = true;
        } else {
            std::fprintf(stderr, "fasp-mc: unknown option %s\n", a);
            return usage();
        }
    }

    if (smoke) {
        opt.maxSchedules = 12000;
        opt.preemptionBound = 3;
        opt.crashEvery = 16;
        if (minSchedules == 0)
            minSchedules = 10000;
    }

    // --- Replay mode ----------------------------------------------------
    if (!replayPath.empty()) {
        auto tr = readTrace(replayPath);
        if (!tr.isOk()) {
            std::fprintf(stderr, "fasp-mc: %s: %s\n",
                         replayPath.c_str(),
                         tr.status().toString().c_str());
            return 2;
        }
        const TraceFile &t = tr.value();
        auto scenario = makeScenario(t.scenario);
        if (scenario == nullptr) {
            std::fprintf(stderr,
                         "fasp-mc: trace names unknown scenario %s\n",
                         t.scenario.c_str());
            return 2;
        }
        ExploreOptions ropt;
        if (!parseEngineKind(t.engine, ropt.engine)) {
            std::fprintf(stderr,
                         "fasp-mc: trace names unknown engine %s\n",
                         t.engine.c_str());
            return 2;
        }
        ropt.seed = t.seed;
        ropt.crashEvery = t.crashEvery;
        ropt.crashPolicy =
            static_cast<fasp::pm::CrashPolicy>(t.crashPolicy);
        ropt.maxStepsPerRun = opt.maxStepsPerRun;

        Explorer ex(*scenario, ropt);
        RunResult rr = ex.replay(t);
        std::fprintf(stderr,
                     "fasp-mc: replayed %s schedule %llu: %zu steps, "
                     "%zu violation(s)\n",
                     t.scenario.c_str(),
                     static_cast<unsigned long long>(t.scheduleIndex),
                     rr.steps.size(), rr.violations.size());
        printViolations("  ", rr.violations);
        // A bug-fixture trace reproducing its violation is success.
        if (scenario->expectsViolation())
            return rr.violations.empty() ? 1 : 0;
        return rr.violations.empty() ? 0 : 1;
    }

    // --- Explore mode ---------------------------------------------------
    if (scenarioName.empty())
        return usage();
    auto scenario = makeScenario(scenarioName);
    if (scenario == nullptr) {
        std::fprintf(stderr,
                     "fasp-mc: unknown scenario %s (--list shows "
                     "all)\n",
                     scenarioName.c_str());
        return 2;
    }
    if (scenario->expectsViolation())
        opt.keepGoing = false; // stop at the first reproduction

    Explorer ex(*scenario, opt);
    ExploreResult res = ex.explore();

    bool tooFew = res.schedules < minSchedules && res.exhausted == false;
    bool violated = !res.failures.empty();
    bool expected = scenario->expectsViolation();
    bool fail = expected ? !violated : violated;

    if (json) {
        std::string out = "{\"scenario\":\"" +
                          jsonEscape(scenarioName) + "\"";
        out += ",\"engine\":\"";
        out += fasp::core::engineKindName(opt.engine);
        out += "\"";
        out += ",\"schedules\":" + std::to_string(res.schedules);
        out += ",\"total_steps\":" + std::to_string(res.totalSteps);
        out += ",\"crash_forks\":" + std::to_string(res.crashForks);
        out += ",\"max_depth\":" + std::to_string(res.maxDepth);
        out += ",\"exhausted\":";
        out += res.exhausted ? "true" : "false";
        out += ",\"expects_violation\":";
        out += expected ? "true" : "false";
        out += ",\"failures\":[";
        for (std::size_t i = 0; i < res.failures.size(); ++i) {
            const ScheduleFailure &f = res.failures[i];
            if (i)
                out += ",";
            out += "{\"schedule\":" + std::to_string(f.scheduleIndex);
            out += ",\"trace\":\"" + jsonEscape(f.tracePath) + "\"";
            out += ",\"violations\":[";
            for (std::size_t j = 0; j < f.violations.size(); ++j) {
                if (j)
                    out += ",";
                out += "{\"kind\":\"";
                out += mcViolationKindName(f.violations[j].kind);
                out += "\",\"message\":\"" +
                       jsonEscape(f.violations[j].message) + "\"}";
            }
            out += "]}";
        }
        out += "]}";
        std::printf("%s\n", out.c_str());
    } else {
        std::fprintf(
            stderr,
            "fasp-mc: %s on %s: %llu schedules (%s), %llu steps, "
            "%llu crash forks, max depth %llu, %zu failing "
            "schedule(s)\n",
            scenarioName.c_str(), fasp::core::engineKindName(opt.engine),
            static_cast<unsigned long long>(res.schedules),
            res.exhausted ? "exhausted" : "budget",
            static_cast<unsigned long long>(res.totalSteps),
            static_cast<unsigned long long>(res.crashForks),
            static_cast<unsigned long long>(res.maxDepth),
            res.failures.size());
        for (const ScheduleFailure &f : res.failures) {
            std::fprintf(stderr, "  schedule %llu%s%s:\n",
                         static_cast<unsigned long long>(
                             f.scheduleIndex),
                         f.tracePath.empty() ? "" : " trace ",
                         f.tracePath.c_str());
            printViolations("    ", f.violations);
        }
    }

    if (tooFew) {
        std::fprintf(stderr,
                     "fasp-mc: coverage collapsed: %llu schedules "
                     "explored, %llu required (interception points "
                     "missing?)\n",
                     static_cast<unsigned long long>(res.schedules),
                     static_cast<unsigned long long>(minSchedules));
        return 1;
    }
    if (fail && expected)
        std::fprintf(stderr,
                     "fasp-mc: seeded bug NOT found within budget — "
                     "the checker has gone blind\n");
    return fail ? 1 : 0;
}
