/**
 * @file
 * Deterministic exporter demo: builds a fixed registry / phase ledger /
 * trace timeline and writes the JSON and Prometheus exports to the two
 * paths given on the command line. A ctest diffs the output against
 * golden files (tests/obs/golden/), so any unintentional change to the
 * export schema fails the build's test suite.
 *
 * Usage: obs_export_demo <out.json> <out.prom>
 */

#include <cstdio>
#include <fstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "pm/phase.h"

using namespace fasp;

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: obs_export_demo <out.json> <out.prom>\n");
        return 2;
    }

    obs::MetricsRegistry registry;
    registry.counter("core.tx.commits").add(120);
    registry.counter("htm.commits").add(90);
    registry.counter("htm.aborts.capacity").add(3);
    registry.gauge("bench.clients").set(4);
    obs::Histogram &hist = registry.histogram("bench.txn_ns.FAST");
    for (std::uint64_t v : {0u, 1u, 5u, 5u, 900u, 1500u, 70000u})
        hist.record(v);

    obs::PmAttribution fast_attr;
    fast_attr.onPmStore("SlotHeaderLog::commit", pm::Component::LogFlush,
                        64);
    fast_attr.onPmFlush("SlotHeaderLog::commit",
                        pm::Component::LogFlush);
    fast_attr.onPmFence("SlotHeaderLog::commit",
                        pm::Component::LogFlush);
    fast_attr.onPmModelNs("SlotHeaderLog::commit",
                          pm::Component::LogFlush, 750);
    fast_attr.onPmFlush("FaspTransaction::commitInPlace",
                        pm::Component::Atomic64BWrite);
    fast_attr.onPmModelNs("FaspTransaction::commitInPlace",
                          pm::Component::Atomic64BWrite, 300);
    fast_attr.onPmStore(nullptr, pm::Component::Checkpoint, 128);

    obs::PmAttribution nvwal_attr;
    nvwal_attr.onPmFlush("NvwalLog::commitTx", pm::Component::LogFlush);
    nvwal_attr.onPmFence("NvwalLog::commitTx", pm::Component::LogFlush);
    nvwal_attr.onPmModelNs("NvwalLog::commitTx",
                           pm::Component::HeapMgmt, 1200);

    obs::PhaseLedger ledger;
    ledger.fold("FAST", fast_attr);
    ledger.fold("FAST", fast_attr); // latency sweep: accumulates
    ledger.fold("NVWAL", nvwal_attr);

    obs::RecoveryLedger recovery;
    obs::RecoveryLedger::Sample fast_rec;
    fast_rec.phaseNs = {4200, 0, 0, 300};
    fast_rec.pagesScanned = 12;
    fast_rec.tornRecords = 1;
    recovery.record("FAST", fast_rec);
    obs::RecoveryLedger::Sample nvwal_rec;
    nvwal_rec.phaseNs = {2100, 36000, 900, 0};
    nvwal_rec.pagesScanned = 8;
    nvwal_rec.recordsReplayed = 5;
    nvwal_rec.recordsDiscarded = 2;
    recovery.record("NVWAL", nvwal_rec);
    recovery.record("NVWAL", nvwal_rec); // second pass accumulates

    obs::Tracer tracer(16);
    tracer.record(obs::TraceOp::TxCommit, "FAST", 7, "in-place", 450,
                  900);
    tracer.record(obs::TraceOp::RtmAbort, nullptr, 0, "capacity");
    tracer.record(obs::TraceOp::TxFallback, "FAST", 7, nullptr, 120);
    tracer.record(obs::TraceOp::Recovery, "NVWAL", 0, nullptr, 0,
                  52000);

    // Span-profiler fixture (schema v4 sections): two FAST spans (one
    // slow enough to be captured as an outlier, with a trace slice),
    // one NVWAL span, a contended latch slot, and a few hot pages.
    obs::SpanProfiler profiler;
    obs::TxSpan fast_fast;
    fast_fast.txId = 6;
    fast_fast.engine = "FAST";
    fast_fast.engineCode = 1;
    fast_fast.committed = true;
    fast_fast.commitPath = "in-place";
    fast_fast.wallNs = 4000;
    fast_fast.modelNs = 750;
    fast_fast.phaseNs[0] = 2500; // untagged
    fast_fast.phaseNs[static_cast<std::size_t>(
        pm::Component::Atomic64BWrite)] = 1500;
    fast_fast.flushes = 1;
    fast_fast.fences = 1;
    fast_fast.pageAccesses = 2;
    fast_fast.pcasAttempts = 1;
    profiler.recordSpan(fast_fast, {});

    obs::TxSpan fast_slow;
    fast_slow.txId = 7;
    fast_slow.engine = "FAST";
    fast_slow.engineCode = 1;
    fast_slow.committed = true;
    fast_slow.commitPath = "logged";
    fast_slow.wallNs = 90000;
    fast_slow.modelNs = 52000;
    fast_slow.phaseNs[0] = 8000;
    fast_slow.phaseNs[static_cast<std::size_t>(
        pm::Component::LogFlush)] = 70000;
    fast_slow.phaseNs[static_cast<std::size_t>(
        pm::Component::Checkpoint)] = 12000;
    fast_slow.latchWaits = 2;
    fast_slow.latchWaitNs = 3000;
    fast_slow.hotLatchSlot = 17;
    fast_slow.hotLatchWaitNs = 2000;
    fast_slow.flushes = 9;
    fast_slow.fences = 3;
    fast_slow.walAppends = 2;
    fast_slow.splits = 1;
    fast_slow.pageAccesses = 5;
    fast_slow.pageDirty = 3;
    fast_slow.seqLo = 1;
    fast_slow.seqHi = 3;
    profiler.recordSpan(
        fast_slow,
        {{1, obs::TraceOp::TxFallback, "FAST", nullptr, 7, 0, 120},
         {2, obs::TraceOp::TxCommit, "FAST", "logged", 7, 52000,
          900}});

    obs::TxSpan nvwal_span;
    nvwal_span.txId = 9;
    nvwal_span.engine = "NVWAL";
    nvwal_span.engineCode = 3;
    nvwal_span.committed = false;
    nvwal_span.wallNs = 1200;
    nvwal_span.phaseNs[0] = 1200;
    nvwal_span.pageAccesses = 1;
    profiler.recordSpan(nvwal_span, {});

    profiler.recordLatchWait(17, 2000, false);
    profiler.recordLatchWait(17, 1000, false);
    profiler.recordLatchWait(40, 500, true);
    for (int i = 0; i < 6; ++i)
        profiler.recordPageAccess(3, i % 2 == 0);
    profiler.recordPageAccess(11, true);
    profiler.recordPageConflict(3);

    std::string json =
        obs::exportJson("obs_export_demo", registry, ledger, recovery,
                        tracer, 8, &profiler);
    std::string prom = obs::exportPrometheus(
        "obs_export_demo", registry, ledger, recovery, tracer,
        &profiler);

    std::ofstream jout(argv[1], std::ios::binary | std::ios::trunc);
    jout << json;
    std::ofstream pout(argv[2], std::ios::binary | std::ios::trunc);
    pout << prom;
    if (!jout.good() || !pout.good()) {
        std::fprintf(stderr, "obs_export_demo: write failed\n");
        return 1;
    }
    return 0;
}
