/**
 * @file
 * Deterministic exporter demo: builds a fixed registry / phase ledger /
 * trace timeline and writes the JSON and Prometheus exports to the two
 * paths given on the command line. A ctest diffs the output against
 * golden files (tests/obs/golden/), so any unintentional change to the
 * export schema fails the build's test suite.
 *
 * Usage: obs_export_demo <out.json> <out.prom>
 */

#include <cstdio>
#include <fstream>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pm/phase.h"

using namespace fasp;

int
main(int argc, char **argv)
{
    if (argc != 3) {
        std::fprintf(stderr,
                     "usage: obs_export_demo <out.json> <out.prom>\n");
        return 2;
    }

    obs::MetricsRegistry registry;
    registry.counter("core.tx.commits").add(120);
    registry.counter("htm.commits").add(90);
    registry.counter("htm.aborts.capacity").add(3);
    registry.gauge("bench.clients").set(4);
    obs::Histogram &hist = registry.histogram("bench.txn_ns.FAST");
    for (std::uint64_t v : {0u, 1u, 5u, 5u, 900u, 1500u, 70000u})
        hist.record(v);

    obs::PmAttribution fast_attr;
    fast_attr.onPmStore("SlotHeaderLog::commit", pm::Component::LogFlush,
                        64);
    fast_attr.onPmFlush("SlotHeaderLog::commit",
                        pm::Component::LogFlush);
    fast_attr.onPmFence("SlotHeaderLog::commit",
                        pm::Component::LogFlush);
    fast_attr.onPmModelNs("SlotHeaderLog::commit",
                          pm::Component::LogFlush, 750);
    fast_attr.onPmFlush("FaspTransaction::commitInPlace",
                        pm::Component::Atomic64BWrite);
    fast_attr.onPmModelNs("FaspTransaction::commitInPlace",
                          pm::Component::Atomic64BWrite, 300);
    fast_attr.onPmStore(nullptr, pm::Component::Checkpoint, 128);

    obs::PmAttribution nvwal_attr;
    nvwal_attr.onPmFlush("NvwalLog::commitTx", pm::Component::LogFlush);
    nvwal_attr.onPmFence("NvwalLog::commitTx", pm::Component::LogFlush);
    nvwal_attr.onPmModelNs("NvwalLog::commitTx",
                           pm::Component::HeapMgmt, 1200);

    obs::PhaseLedger ledger;
    ledger.fold("FAST", fast_attr);
    ledger.fold("FAST", fast_attr); // latency sweep: accumulates
    ledger.fold("NVWAL", nvwal_attr);

    obs::RecoveryLedger recovery;
    obs::RecoveryLedger::Sample fast_rec;
    fast_rec.phaseNs = {4200, 0, 0, 300};
    fast_rec.pagesScanned = 12;
    fast_rec.tornRecords = 1;
    recovery.record("FAST", fast_rec);
    obs::RecoveryLedger::Sample nvwal_rec;
    nvwal_rec.phaseNs = {2100, 36000, 900, 0};
    nvwal_rec.pagesScanned = 8;
    nvwal_rec.recordsReplayed = 5;
    nvwal_rec.recordsDiscarded = 2;
    recovery.record("NVWAL", nvwal_rec);
    recovery.record("NVWAL", nvwal_rec); // second pass accumulates

    obs::Tracer tracer(16);
    tracer.record(obs::TraceOp::TxCommit, "FAST", 7, "in-place", 450,
                  900);
    tracer.record(obs::TraceOp::RtmAbort, nullptr, 0, "capacity");
    tracer.record(obs::TraceOp::TxFallback, "FAST", 7, nullptr, 120);
    tracer.record(obs::TraceOp::Recovery, "NVWAL", 0, nullptr, 0,
                  52000);

    std::string json = obs::exportJson("obs_export_demo", registry,
                                       ledger, recovery, tracer, 8);
    std::string prom = obs::exportPrometheus(
        "obs_export_demo", registry, ledger, recovery, tracer);

    std::ofstream jout(argv[1], std::ios::binary | std::ios::trunc);
    jout << json;
    std::ofstream pout(argv[2], std::ios::binary | std::ios::trunc);
    pout << prom;
    if (!jout.good() || !pout.good()) {
        std::fprintf(stderr, "obs_export_demo: write failed\n");
        return 1;
    }
    return 0;
}
