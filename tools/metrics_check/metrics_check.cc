/**
 * @file
 * Schema self-check for the bench harness's machine-readable outputs
 * (ISSUE 4 satellite 4). Runs a bench binary with --smoke --json
 * --metrics, then validates both files with the minimal JSON parser
 * shared across tools (tools/common/mini_json.h):
 *
 *  - the --json report: {"bench", "tables": [{title, columns, rows}]}
 *    with rectangular rows — the missing-field regression guard for
 *    the CI bench-smoke artifacts;
 *  - the --metrics export: schema_version, counters / gauges /
 *    histograms (complete summary fields), pm_phases / pm_sites /
 *    recovery / trace (incl. ring_stats) sections, and the span
 *    profiler's spans / latch_contention / page_heat / outliers
 *    sections (schema v4).
 *
 * With --fig8, additionally asserts that the export alone reproduces
 * the paper's Figure-8 commit breakdown for FAST / FASH / NVWAL:
 * log-flush activity for all three, checkpointing for the logging
 * engines, and the atomic 64-B header write for FAST (the PR's
 * acceptance criterion).
 *
 * With --forensics, instead validates one or more fasp-forensics
 * --json reports (the CI crash-image artifacts) against the forensics
 * report schema.
 *
 * Usage: metrics_check [--fig8] <bench-binary> [work-dir]
 *        metrics_check --forensics <report.json>...
 */

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mini_json.h"

namespace {

using fasp::minijson::JsonParser;
using fasp::minijson::JsonValue;

// --- Check helpers -------------------------------------------------------

int g_failures = 0;

void
report(const std::string &what)
{
    std::fprintf(stderr, "metrics_check: FAIL: %s\n", what.c_str());
    ++g_failures;
}

bool
check(bool ok, const std::string &what)
{
    if (!ok)
        report(what);
    return ok;
}

const JsonValue *
requireField(const JsonValue &obj, const std::string &key,
             JsonValue::Kind kind, const std::string &where)
{
    const JsonValue *v = obj.find(key);
    if (!v) {
        report(where + ": missing field \"" + key + "\"");
        return nullptr;
    }
    if (v->kind != kind) {
        report(where + ": field \"" + key + "\" has wrong type");
        return nullptr;
    }
    return v;
}

std::unique_ptr<JsonValue>
loadJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        report("cannot open " + path);
        return nullptr;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    JsonParser parser(text);
    auto doc = parser.parse();
    if (!doc)
        report(path + ": malformed JSON: " + parser.error());
    return doc;
}

// --- Bench --json report schema ------------------------------------------

void
checkBenchReport(const JsonValue &doc)
{
    requireField(doc, "bench", JsonValue::String, "report");
    const JsonValue *tables =
        requireField(doc, "tables", JsonValue::Array, "report");
    if (!tables)
        return;
    check(!tables->items.empty(), "report: no tables");
    for (std::size_t t = 0; t < tables->items.size(); ++t) {
        const JsonValue &table = tables->items[t];
        std::string where = "report table " + std::to_string(t);
        if (!check(table.kind == JsonValue::Object,
                   where + ": not an object"))
            continue;
        requireField(table, "title", JsonValue::String, where);
        const JsonValue *columns =
            requireField(table, "columns", JsonValue::Array, where);
        const JsonValue *rows =
            requireField(table, "rows", JsonValue::Array, where);
        if (!columns || !rows)
            continue;
        for (std::size_t r = 0; r < rows->items.size(); ++r) {
            const JsonValue &row = rows->items[r];
            if (!check(row.kind == JsonValue::Array,
                       where + " row " + std::to_string(r) +
                           ": not an array"))
                continue;
            check(row.items.size() == columns->items.size(),
                  where + " row " + std::to_string(r) +
                      ": cell count mismatch");
        }
    }
}

// --- Metrics export schema -----------------------------------------------

void
checkCell(const JsonValue &cell, const std::string &where)
{
    for (const char *field :
         {"stores", "store_bytes", "flushes", "fences", "model_ns"})
        requireField(cell, field, JsonValue::Number, where);
}

void
checkMetricsSchema(const JsonValue &doc)
{
    requireField(doc, "bench", JsonValue::String, "metrics");
    const JsonValue *version =
        requireField(doc, "schema_version", JsonValue::Number,
                     "metrics");
    if (version)
        check(version->number == 4, "metrics: schema_version != 4");

    const JsonValue *counters =
        requireField(doc, "counters", JsonValue::Object, "metrics");
    if (counters) {
        for (const auto &[name, value] : counters->fields)
            check(value.isNumber(),
                  "counter \"" + name + "\" not a number");
    }
    requireField(doc, "gauges", JsonValue::Object, "metrics");

    const JsonValue *hists =
        requireField(doc, "histograms", JsonValue::Object, "metrics");
    if (hists) {
        for (const auto &[name, h] : hists->fields) {
            std::string where = "histogram \"" + name + "\"";
            if (!check(h.kind == JsonValue::Object,
                       where + ": not an object"))
                continue;
            for (const char *field :
                 {"count", "sum", "max", "p50", "p95", "p99"})
                requireField(h, field, JsonValue::Number, where);
            requireField(h, "buckets", JsonValue::Array, where);
        }
    }

    const JsonValue *phases =
        requireField(doc, "pm_phases", JsonValue::Object, "metrics");
    if (phases) {
        for (const auto &[engine, comps] : phases->fields) {
            std::string where = "pm_phases." + engine;
            if (!check(comps.kind == JsonValue::Object,
                       where + ": not an object"))
                continue;
            for (const auto &[comp, cell] : comps.fields)
                checkCell(cell, where + "." + comp);
        }
    }
    const JsonValue *sites =
        requireField(doc, "pm_sites", JsonValue::Object, "metrics");
    if (sites) {
        for (const auto &[engine, entries] : sites->fields) {
            if (entries.kind != JsonValue::Object)
                continue;
            for (const auto &[site, cell] : entries.fields)
                checkCell(cell, "pm_sites." + engine + "." + site);
        }
    }

    const JsonValue *recovery =
        requireField(doc, "recovery", JsonValue::Object, "metrics");
    if (recovery) {
        for (const auto &[engine, entry] : recovery->fields) {
            std::string where = "recovery." + engine;
            if (!check(entry.kind == JsonValue::Object,
                       where + ": not an object"))
                continue;
            for (const char *field :
                 {"recoveries", "pages_scanned", "records_replayed",
                  "records_discarded", "torn_records"})
                requireField(entry, field, JsonValue::Number, where);
            const JsonValue *ph = requireField(
                entry, "phases", JsonValue::Object, where);
            if (!ph)
                continue;
            for (const auto &[phase, h] : ph->fields) {
                std::string pw = where + ".phases." + phase;
                if (!check(h.kind == JsonValue::Object,
                           pw + ": not an object"))
                    continue;
                for (const char *field :
                     {"count", "sum", "p50", "p95"})
                    requireField(h, field, JsonValue::Number, pw);
            }
        }
    }

    // Span-profiler sections (schema v4). Present even in a
    // metrics-off run (empty), so their absence is always a schema
    // break, never a workload artifact.
    const JsonValue *spans =
        requireField(doc, "spans", JsonValue::Object, "metrics");
    if (spans) {
        requireField(*spans, "recorded", JsonValue::Number, "spans");
        requireField(*spans, "ring_stats", JsonValue::Array, "spans");
        const JsonValue *engines = requireField(
            *spans, "engines", JsonValue::Object, "spans");
        if (engines) {
            for (const auto &[engine, es] : engines->fields) {
                std::string where = "spans.engines." + engine;
                if (!check(es.kind == JsonValue::Object,
                           where + ": not an object"))
                    continue;
                for (const char *field :
                     {"spans", "commits", "aborts", "latch_waits",
                      "latch_wait_ns", "latch_conflicts",
                      "pcas_attempts", "pcas_retries", "pcas_helps",
                      "flushes", "fences", "model_ns", "wal_appends",
                      "splits", "defrags", "page_accesses",
                      "page_dirty"})
                    requireField(es, field, JsonValue::Number, where);
                const JsonValue *wall = requireField(
                    es, "wall_ns", JsonValue::Object, where);
                if (wall) {
                    for (const char *field :
                         {"count", "sum", "max", "p50", "p95", "p99"})
                        requireField(*wall, field, JsonValue::Number,
                                     where + ".wall_ns");
                }
                requireField(es, "phase_ns", JsonValue::Object, where);
            }
        }
    }

    const JsonValue *latch = requireField(
        doc, "latch_contention", JsonValue::Object, "metrics");
    if (latch) {
        for (const char *field :
             {"total_waits", "total_conflicts", "contended_slots"})
            requireField(*latch, field, JsonValue::Number,
                         "latch_contention");
        const JsonValue *slots = requireField(
            *latch, "slots", JsonValue::Array, "latch_contention");
        if (slots) {
            for (const JsonValue &ls : slots->items) {
                if (!check(ls.kind == JsonValue::Object,
                           "latch_contention slot not an object"))
                    continue;
                for (const char *field :
                     {"slot", "waits", "conflicts", "wait_ns"})
                    requireField(ls, field, JsonValue::Number,
                                 "latch_contention slot");
                requireField(ls, "hist", JsonValue::Object,
                             "latch_contention slot");
            }
        }
    }

    const JsonValue *heat =
        requireField(doc, "page_heat", JsonValue::Object, "metrics");
    if (heat) {
        for (const char *field : {"tracked", "overflow", "decays"})
            requireField(*heat, field, JsonValue::Number, "page_heat");
        const JsonValue *top = requireField(
            *heat, "top", JsonValue::Array, "page_heat");
        if (top) {
            for (const JsonValue &pe : top->items) {
                if (!check(pe.kind == JsonValue::Object,
                           "page_heat entry not an object"))
                    continue;
                for (const char *field :
                     {"page", "accesses", "dirty", "conflicts"})
                    requireField(pe, field, JsonValue::Number,
                                 "page_heat entry");
            }
        }
    }

    const JsonValue *outliers =
        requireField(doc, "outliers", JsonValue::Array, "metrics");
    if (outliers) {
        for (const JsonValue &o : outliers->items) {
            if (!check(o.kind == JsonValue::Object,
                       "outlier not an object"))
                continue;
            requireField(o, "engine", JsonValue::String, "outlier");
            requireField(o, "committed", JsonValue::Bool, "outlier");
            for (const char *field :
                 {"tx_id", "wall_ns", "model_ns", "latch_waits",
                  "latch_wait_ns", "pcas_retries", "flushes", "fences",
                  "wal_appends", "seq_lo", "seq_hi"})
                requireField(o, field, JsonValue::Number, "outlier");
            requireField(o, "phase_ns", JsonValue::Object, "outlier");
            requireField(o, "events", JsonValue::Array, "outlier");
        }
    }

    const JsonValue *trace =
        requireField(doc, "trace", JsonValue::Object, "metrics");
    if (trace) {
        for (const char *field : {"recorded", "dropped", "rings"})
            requireField(*trace, field, JsonValue::Number, "trace");
        const JsonValue *ring_stats = requireField(
            *trace, "ring_stats", JsonValue::Array, "trace");
        if (ring_stats) {
            for (const JsonValue &rs : ring_stats->items) {
                if (!check(rs.kind == JsonValue::Object,
                           "trace ring_stats entry not an object"))
                    continue;
                for (const char *field :
                     {"ring", "capacity", "recorded", "dropped",
                      "retained"})
                    requireField(rs, field, JsonValue::Number,
                                 "trace ring_stats entry");
            }
        }
        const JsonValue *events =
            requireField(*trace, "events", JsonValue::Array, "trace");
        if (events) {
            for (const JsonValue &ev : events->items) {
                if (!check(ev.kind == JsonValue::Object,
                           "trace event not an object"))
                    continue;
                for (const char *field :
                     {"seq", "page", "model_ns", "duration_ns"})
                    requireField(ev, field, JsonValue::Number,
                                 "trace event");
                requireField(ev, "op", JsonValue::String,
                             "trace event");
            }
        }
    }
}

// --- Figure 8 reproduction criteria --------------------------------------

double
cellField(const JsonValue &comps, const std::string &comp,
          const std::string &field)
{
    const JsonValue *cell = comps.find(comp);
    if (!cell)
        return 0;
    const JsonValue *v = cell->find(field);
    return v && v->isNumber() ? v->number : 0;
}

/**
 * The export alone must reproduce the paper's Fig-8 commit breakdown:
 * every engine pays log flushes (NVWAL its differential log, FASH its
 * always-on slot-header log, FAST the fallback path), the logging
 * engines checkpoint, and FAST additionally commits via the atomic
 * 64-B header write.
 */
void
checkFig8(const JsonValue &doc)
{
    const JsonValue *phases = doc.find("pm_phases");
    if (!phases || phases->kind != JsonValue::Object) {
        report("fig8: pm_phases section missing");
        return;
    }
    for (const char *engine : {"FAST", "FASH", "NVWAL"}) {
        const JsonValue *comps = phases->find(engine);
        if (!check(comps && comps->kind == JsonValue::Object,
                   std::string("fig8: no pm_phases entry for ") +
                       engine))
            continue;
        for (const char *field : {"flushes", "fences", "model_ns"}) {
            check(cellField(*comps, "log-flush", field) > 0,
                  std::string("fig8: ") + engine + " log-flush " +
                      field + " is zero");
        }
    }
    if (const JsonValue *fast = phases->find("FAST")) {
        check(cellField(*fast, "atomic-64B-write", "flushes") > 0,
              "fig8: FAST atomic-64B-write flushes is zero");
        check(cellField(*fast, "checkpointing", "flushes") > 0,
              "fig8: FAST checkpointing flushes is zero");
    }
    if (const JsonValue *fash = phases->find("FASH")) {
        check(cellField(*fash, "checkpointing", "flushes") > 0,
              "fig8: FASH checkpointing flushes is zero");
        check(cellField(*fash, "atomic-64B-write", "flushes") == 0,
              "fig8: FASH must never use the in-place commit");
    }
    if (const JsonValue *nvwal = phases->find("NVWAL")) {
        check(cellField(*nvwal, "heap-management", "flushes") > 0,
              "fig8: NVWAL heap-management flushes is zero");
    }

    // schema_version 3: FAST's in-place commits publish through the
    // persistent CAS (DESIGN.md §14), so the run must have booked
    // commits in the PCAS abort-class counters. The fallback counters
    // may legitimately stay zero on an uncontended run.
    const JsonValue *counters = doc.find("counters");
    if (check(counters && counters->kind == JsonValue::Object,
              "fig8: counters section missing")) {
        const JsonValue *commits = counters->find("core.pcas.commits");
        check(commits && commits->isNumber() && commits->number > 0,
              "fig8: core.pcas.commits missing or zero");
    }
}

// --- fasp-forensics report schema -----------------------------------------

/**
 * Validates the JSON a `fasp-forensics --json <image>` run emits over
 * a crash_sweep image (the CI forensics artifacts): tool banner,
 * superblock / log / flight_recorder / inflight sections, and the
 * record framing inside the timeline.
 */
void
checkForensicsReport(const JsonValue &doc, const std::string &path)
{
    const JsonValue *tool =
        requireField(doc, "tool", JsonValue::String, path);
    if (tool)
        check(tool->str == "fasp-forensics",
              path + ": tool != fasp-forensics");
    const JsonValue *version =
        requireField(doc, "schema_version", JsonValue::Number, path);
    if (version)
        check(version->number == 1, path + ": schema_version != 1");
    requireField(doc, "image_bytes", JsonValue::Number, path);

    const JsonValue *sb =
        requireField(doc, "superblock", JsonValue::Object, path);
    if (sb) {
        for (const char *field : {"present", "crc_ok"})
            requireField(*sb, field, JsonValue::Bool,
                         path + ".superblock");
        for (const char *field :
             {"version", "page_size", "page_count", "log_off",
              "log_len", "fr_off", "fr_len"})
            requireField(*sb, field, JsonValue::Number,
                         path + ".superblock");
    }

    const JsonValue *log =
        requireField(doc, "log", JsonValue::Object, path);
    if (log) {
        requireField(*log, "family", JsonValue::String, path + ".log");
        for (const char *field : {"entries", "commits", "torn_tail"})
            requireField(*log, field, JsonValue::Number, path + ".log");
        requireField(*log, "committed_txids", JsonValue::Array,
                     path + ".log");
    }

    const JsonValue *fr =
        requireField(doc, "flight_recorder", JsonValue::Object, path);
    if (fr) {
        std::string where = path + ".flight_recorder";
        for (const char *field : {"region_present", "header_ok"})
            requireField(*fr, field, JsonValue::Bool, where);
        requireField(*fr, "capacity", JsonValue::Number, where);
        requireField(*fr, "torn_slots", JsonValue::Array, where);
        const JsonValue *records =
            requireField(*fr, "records", JsonValue::Array, where);
        if (records) {
            for (const JsonValue &rec : records->items) {
                if (!check(rec.kind == JsonValue::Object,
                           where + ": record not an object"))
                    continue;
                for (const char *field :
                     {"seq", "txid", "page", "aux", "model_ns"})
                    requireField(rec, field, JsonValue::Number,
                                 where + " record");
                for (const char *field : {"type", "engine"})
                    requireField(rec, field, JsonValue::String,
                                 where + " record");
            }
        }
    }

    const JsonValue *inflight =
        requireField(doc, "inflight", JsonValue::Object, path);
    if (inflight) {
        std::string where = path + ".inflight";
        requireField(*inflight, "found", JsonValue::Bool, where);
        for (const char *field :
             {"txid", "begin_seq", "last_committed_txid"})
            requireField(*inflight, field, JsonValue::Number, where);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bool fig8 = false;
    int arg = 1;
    if (arg < argc && std::strcmp(argv[arg], "--fig8") == 0) {
        fig8 = true;
        ++arg;
    }
    if (arg < argc && std::strcmp(argv[arg], "--forensics") == 0) {
        ++arg;
        if (arg >= argc) {
            std::fprintf(stderr, "usage: metrics_check --forensics "
                                 "<report.json>...\n");
            return 2;
        }
        for (; arg < argc; ++arg) {
            if (auto doc = loadJson(argv[arg]))
                checkForensicsReport(*doc, argv[arg]);
        }
        if (g_failures) {
            std::fprintf(stderr, "metrics_check: %d failure(s)\n",
                         g_failures);
            return 1;
        }
        std::fprintf(stderr, "metrics_check: OK\n");
        return 0;
    }
    if (arg >= argc) {
        std::fprintf(stderr,
                     "usage: metrics_check [--fig8] <bench-binary> "
                     "[work-dir]\n"
                     "       metrics_check --forensics "
                     "<report.json>...\n");
        return 2;
    }
    std::string bench = argv[arg++];
    std::string dir = arg < argc ? argv[arg] : ".";
    std::string json_path = dir + "/metrics_check.report.json";
    std::string metrics_path = dir + "/metrics_check.metrics.json";

    std::string cmd = bench + " --smoke --json=" + json_path +
                      " --metrics=" + metrics_path + " > /dev/null";
    std::fprintf(stderr, "metrics_check: running %s\n", cmd.c_str());
    int rc = std::system(cmd.c_str()); // NOLINT(concurrency-mt-unsafe)
    if (rc != 0) {
        std::fprintf(stderr, "metrics_check: bench exited with %d\n",
                     rc);
        return 1;
    }

    if (auto report_doc = loadJson(json_path))
        checkBenchReport(*report_doc);
    if (auto metrics_doc = loadJson(metrics_path)) {
        checkMetricsSchema(*metrics_doc);
        if (fig8)
            checkFig8(*metrics_doc);
    }

    if (g_failures) {
        std::fprintf(stderr, "metrics_check: %d failure(s)\n",
                     g_failures);
        return 1;
    }
    std::fprintf(stderr, "metrics_check: OK\n");
    return 0;
}
