// fasp-lint fixture: stale-waiver must fire. The waivers below are
// well-formed and justified, but the code they cover is compliant, so
// they suppress nothing — a waiver must not outlive its finding.
// fasp-lint: allow-file(no-volatile) -- fixture: nothing here is
// volatile, so this file waiver is dead weight.

namespace fixture {

struct Dev
{
    void write(unsigned long off, const void *src, unsigned long n);
};

void
storeOnly(Dev &device, const unsigned char *src)
{
    // fasp-lint: allow(pm-raw-access) -- fixture: the next line stores
    // through the device API, so there is nothing to suppress.
    device.write(0, src, 64);
}

} // namespace fixture
