// fasp-lint fixture: no-volatile must fire. `volatile` neither orders
// nor persists stores; std::atomic (concurrency) and the PmDevice API
// (persistence) are the sanctioned tools.
namespace fixture {

volatile int gFlag = 0; // VIOLATION

void
spinUntilSet()
{
    while (gFlag == 0) {
    }
}

} // namespace fixture
