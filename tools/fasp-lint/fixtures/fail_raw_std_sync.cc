// Fixture: raw standard sync primitives outside src/common+src/mc
// must be flagged — a std::mutex here would be invisible to fasp-mc.
#include <atomic>
#include <condition_variable>
#include <mutex>

struct Racy
{
    std::mutex mu;
    std::atomic<int> count{0};
    std::condition_variable cv;
};
