// fasp-lint fixture: must lint clean. Every rule violated once, every
// violation carrying a well-formed waiver with a reason — both the
// preceding-comment form and the trailing same-line form.
#include <cstring>
#include <mutex>

namespace fixture {

struct FakeDevice
{
    // fasp-lint: allow(pm-raw-access) -- fixture stand-in declaration.
    const unsigned char *durableData() const { return nullptr; }
};

void
waivedRawAccess(FakeDevice &device, unsigned char *out)
{
    // fasp-lint: allow(pm-raw-access) -- fixture exercising the waiver
    // syntax; a real site would justify why tracking can be bypassed.
    std::memcpy(out, device.durableData(), 64);
}

void
waivedFlush(void *line)
{
    // fasp-lint: allow(flush-outside-device) -- fixture exercising the
    // waiver syntax.
    _mm_clflush(line);
}

// fasp-lint: allow(raw-std-sync) -- fixture exercising the waiver.
std::mutex gMutex;

void
waivedBareLock()
{
    gMutex.lock();   // fasp-lint: allow(bare-mutex-lock) -- fixture.
    gMutex.unlock(); // fasp-lint: allow(bare-mutex-lock) -- fixture.
}

// fasp-lint: allow(no-volatile) -- fixture exercising the waiver.
volatile int gWaived = 0;

} // namespace fixture
