// Fixture: a bare casU64 on a PM word skips the dirty-tag protocol —
// a crash between the CAS and its flush exposes an unflushed committed
// value. Engine code must go through pm::Pcas::cas / mwcas.
struct Dev
{
    bool casU64(unsigned long off, unsigned long long &expected,
                unsigned long long desired);
    void clflush(unsigned long off);
    void sfence();
};

bool
publishHeader(Dev &device, unsigned long off, unsigned long long oldV,
              unsigned long long newV)
{
    unsigned long long expected = oldV;
    bool ok = device.casU64(off, expected, newV); // BAD: bare PM CAS
    device.clflush(off);
    device.sfence();
    return ok;
}
