// fasp-lint fixture: pm-raw-access must fire. Reading (or worse,
// memcpy-ing over) the raw durable image outside src/pm/ bypasses the
// device's dirty-line tracking and the PersistencyChecker.
#include <cstring>

namespace fixture {

struct FakeDevice
{
    const unsigned char *durableData() const { return nullptr; }
};

void
sneakyRead(FakeDevice &device, unsigned char *out)
{
    std::memcpy(out, device.durableData() + 64, 64); // VIOLATION
}

} // namespace fixture
