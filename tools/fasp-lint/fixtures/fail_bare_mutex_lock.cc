// fasp-lint fixture: bare-mutex-lock must fire. Manual lock()/unlock()
// pairs leak on exceptions and are invisible to -Wthread-safety unless
// every call site is annotated; RAII guards carry the annotations.
#include <mutex>

namespace fixture {

std::mutex gMutex;
int gCounter = 0;

void
manualLocking()
{
    gMutex.lock(); // VIOLATION
    gCounter++;
    gMutex.unlock(); // VIOLATION
}

bool
manualTry(std::mutex *mu)
{
    return mu->try_lock(); // VIOLATION
}

} // namespace fixture
