// fasp-lint fixture: waiver-needs-reason must fire — and the
// reason-less waiver must NOT suppress the underlying rule.
namespace fixture {

// fasp-lint: allow(no-volatile)
volatile int gBad = 0; // VIOLATION twice: bad waiver + no-volatile

// fasp-lint: allow(made-up-rule) -- reasons do not save unknown rules
int gAlso = 1;

} // namespace fixture
