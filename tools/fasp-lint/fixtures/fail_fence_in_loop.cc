// Fixture: a fence per iteration serializes every flush; the batched
// idiom (flush per iteration, one fence after the loop) must be used.
struct Dev
{
    void write(unsigned long off, const void *src, unsigned long n);
    void flushRange(unsigned long off, unsigned long n);
    void sfence();
};

void
persistAll(Dev &device, const unsigned char *src, int n)
{
    for (int i = 0; i < n; ++i) {
        device.write(64UL * i, src + 64 * i, 64);
        device.flushRange(64UL * i, 64);
        device.sfence(); // BAD: fence inside the loop
    }
}
