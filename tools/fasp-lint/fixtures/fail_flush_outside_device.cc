// fasp-lint fixture: flush-outside-device must fire. Emitting flushes
// or fences directly hides persist ordering from the checker; only
// src/pm/device.* may touch the instructions.
namespace fixture {

void
flushLine(void *line)
{
    _mm_clflush(line); // VIOLATION
    _mm_sfence();      // VIOLATION
}

void
flushOpt(void *line)
{
    _mm_clflushopt(line); // VIOLATION
    _mm_clwb(line);       // VIOLATION
    asm volatile("sfence" ::: "memory"); // VIOLATION (asm too)
}

} // namespace fixture
