// Fixture: the batched persist idiom — flushes inside the loop, one
// fence after it — plus a justified waiver for a loop that genuinely
// needs per-iteration ordering. Both must lint clean.
struct Dev
{
    void write(unsigned long off, const void *src, unsigned long n);
    void flushRange(unsigned long off, unsigned long n);
    void sfence();
};

void
persistAll(Dev &device, const unsigned char *src, int n)
{
    for (int i = 0; i < n; ++i) {
        device.write(64UL * i, src + 64 * i, 64);
        device.flushRange(64UL * i, 64);
    }
    device.sfence();
}

void
chainedCommits(Dev &device, const unsigned char *src, int n)
{
    for (int i = 0; i < n; ++i) {
        device.write(64UL * i, src + 64 * i, 64);
        device.flushRange(64UL * i, 64);
        // fasp-lint: allow(fence-in-loop) -- each record must be
        // durable before the next one's header points at it
        device.sfence();
    }
}
