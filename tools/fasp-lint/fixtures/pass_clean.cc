// fasp-lint fixture: must lint clean. Exercises the near-misses the
// rules must NOT match: DRAM memcpy, identifiers that merely contain
// rule tokens, and rule names inside comments and string literals.
#include <cstring>

namespace fixture {

struct VolatileCache // "volatile" as an identifier prefix is fine
{
    unsigned char bytes[64];
    int volatileCachePages = 4096;
};

// Talking about volatile, durableData(), _mm_clflush() or mu.lock()
// in a comment is fine: prose is stripped before matching.
void
dramCopy(VolatileCache &cache, const unsigned char *src)
{
    std::memcpy(cache.bytes, src, sizeof cache.bytes);
}

const char *
ruleDocs()
{
    return "volatile durableData() _mm_sfence() mu.lock()"; // strings
                                                            // too
}

} // namespace fixture
