// fasp-lint fixture: must lint clean. Exercises the file-scope waiver
// form, which wrapper-internal files (latch table, RTM shim, stats)
// use instead of a line waiver per member.
// fasp-lint: allow-file(raw-std-sync) -- fixture: this file plays a
// sync-wrapper internal, where raw primitives are the implementation.
#include <atomic>
#include <mutex>

namespace fixture {

struct WrapperInternals
{
    std::mutex mu;
    std::atomic<unsigned long> acquires{0};
    std::atomic<unsigned long> conflicts{0};
};

} // namespace fixture
