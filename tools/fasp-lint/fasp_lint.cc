/**
 * @file
 * fasp-lint: the repository's persistence-discipline checker.
 *
 * A deliberately small lexical analyzer (comments and string literals
 * are stripped before matching, so prose and format strings never
 * trip a rule) that enforces the conventions -Wthread-safety cannot
 * express:
 *
 *   pm-raw-access        The raw durable image (PmDevice::durableData)
 *                        is reachable only inside src/pm/. Everything
 *                        else stores through PmDevice::write, so the
 *                        device can track dirty lines and the
 *                        PersistencyChecker sees every PM store.
 *   flush-outside-device Cache-line flush / fence instructions
 *                        (_mm_clflush*, _mm_clwb, _mm_sfence, inline
 *                        asm) may be emitted only by src/pm/device.*;
 *                        everyone else calls PmDevice::clflush/sfence
 *                        so ordering events reach the checker.
 *   bare-mutex-lock      No direct .lock()/.unlock()/.try_lock()
 *                        calls: locking goes through the RAII wrappers
 *                        (fasp::MutexLock, the PageLatch guards) that
 *                        carry the capability annotations.
 *   no-volatile          `volatile` is not a concurrency or
 *                        persistence primitive; use std::atomic or the
 *                        PmDevice API.
 *   raw-std-sync         std::mutex / std::atomic /
 *                        std::condition_variable outside src/common/
 *                        and src/mc/: engine code must synchronize
 *                        through the fasp wrappers (fasp::Mutex,
 *                        PageLatch, the RTM shim) so every blocking
 *                        point stays visible to fasp-mc's scheduler
 *                        interception. Wrapper internals and lock-free
 *                        stats carry a file-level waiver instead.
 *   waiver-needs-reason  A waiver comment must name its rule AND give
 *                        a reason:
 *                            // fasp-lint: allow(<rule>) -- <reason>
 *                        A waiver suppresses the named rule on its own
 *                        line and on the next line containing code.
 *                            // fasp-lint: allow-file(<rule>) -- <reason>
 *                        suppresses the rule for the whole file.
 *   stale-waiver         A waiver that suppresses nothing is itself a
 *                        violation, so waivers cannot outlive the code
 *                        they justify.
 *
 * The flow-sensitive rules this tool used to carry textually
 * (raw-pm-cas, fence-in-loop) moved to tools/fasp-analyze, which
 * checks them on a real CFG under the `raw-cas` / `fence-in-loop`
 * names with `fasp-analyze:` waiver comments.
 *
 * Usage:   fasp-lint <file-or-directory>...
 * Exit:    0 clean, 1 violations found, 2 usage or I/O error.
 */

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation
{
    std::string file;
    std::size_t line = 0;
    std::string rule;
    std::string message;
};

/** One physical source line split into its code and comment parts. */
struct LineView
{
    std::string code;    //!< comments/strings blanked out
    std::string comment; //!< comment text only
};

const std::set<std::string> kKnownRules = {
    "pm-raw-access", "flush-outside-device", "bare-mutex-lock",
    "no-volatile",   "raw-std-sync",         "waiver-needs-reason",
    "stale-waiver",
};

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/** True when @p token occurs in @p text as a whole identifier. */
bool
hasToken(const std::string &text, const std::string &token)
{
    std::size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
        bool leftOk = pos == 0 || !isWordChar(text[pos - 1]);
        std::size_t end = pos + token.size();
        bool rightOk = end >= text.size() || !isWordChar(text[end]);
        if (leftOk && rightOk)
            return true;
        pos += 1;
    }
    return false;
}

bool
hasAny(const std::string &text, std::initializer_list<const char *> subs)
{
    for (const char *s : subs)
        if (text.find(s) != std::string::npos)
            return true;
    return false;
}

/**
 * Split a translation unit into per-line code/comment views. Handles
 * line and block comments, string/char literals (with escapes) and raw
 * string literals; literal contents are blanked so they never match.
 */
std::vector<LineView>
lex(const std::string &text)
{
    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };

    std::vector<LineView> lines(1);
    State state = State::Code;
    std::string rawDelim; //!< the )delim" terminator of a raw string

    auto code = [&]() -> std::string & { return lines.back().code; };
    auto comment = [&]() -> std::string & {
        return lines.back().comment;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char next = i + 1 < text.size() ? text[i + 1] : '\0';

        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            // Unterminated normal literals cannot span lines; recover.
            if (state == State::String || state == State::Char)
                state = State::Code;
            lines.emplace_back();
            continue;
        }

        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code() += "  "; // keep column positions roughly stable
                ++i;
            } else if (c == 'R' && next == '"'
                       && (code().empty()
                           || !isWordChar(code().back()))) {
                // R"delim( ... )delim"
                std::size_t open = text.find('(', i + 2);
                if (open == std::string::npos) {
                    code() += c;
                    break;
                }
                rawDelim =
                    ")" + text.substr(i + 2, open - (i + 2)) + "\"";
                state = State::RawString;
                code() += "\"";
                i = open; // skip past the opening parenthesis
            } else if (c == '"') {
                state = State::String;
                code() += '"';
            } else if (c == '\'') {
                state = State::Char;
                code() += '\'';
            } else {
                code() += c;
            }
            break;
        case State::LineComment:
            comment() += c;
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else {
                comment() += c;
            }
            break;
        case State::String:
            if (c == '\\' && next != '\0') {
                ++i;
            } else if (c == '"') {
                state = State::Code;
                code() += '"';
            }
            break;
        case State::Char:
            if (c == '\\' && next != '\0') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                code() += '\'';
            }
            break;
        case State::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                state = State::Code;
                code() += '"';
            } else if (c == '\n') {
                lines.emplace_back(); // unreachable; '\n' handled above
            }
            break;
        }
    }
    return lines;
}

/** A justified waiver, tracked so never-used ones can be reported. */
struct Waiver
{
    std::string rule;
    std::size_t line = 0; //!< where the waiver comment sits
    bool used = false;    //!< suppressed at least one violation
};

/** Parse waiver comments; returns line waivers, appends file-scope
 *  waivers to @p fileWaivers, records bad waivers. */
std::vector<Waiver>
parseWaivers(const std::string &comment, const std::string &file,
             std::size_t lineNo, std::vector<Waiver> &fileWaivers,
             std::vector<Violation> &out)
{
    static const std::regex kWaiver(
        R"(fasp-lint:\s*allow(-file)?\(([A-Za-z0-9_-]+)\)\s*(?:--\s*(\S[^\n]*))?)");

    std::vector<Waiver> waived;
    auto begin = std::sregex_iterator(comment.begin(), comment.end(),
                                      kWaiver);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const std::smatch &m = *it;
        bool wholeFile = m[1].matched;
        std::string rule = m[2].str();
        if (kKnownRules.count(rule) == 0) {
            out.push_back({file, lineNo, "waiver-needs-reason",
                           "waiver names unknown rule '" + rule + "'"});
            continue;
        }
        if (!m[3].matched || m[3].str().empty()) {
            out.push_back(
                {file, lineNo, "waiver-needs-reason",
                 "waiver for '" + rule
                     + "' gives no reason (use: fasp-lint: allow"
                     + (wholeFile ? "-file(" : "(") + rule
                     + ") -- <reason>)"});
            continue; // an unjustified waiver does not suppress
        }
        if (wholeFile)
            fileWaivers.push_back({rule, lineNo, false});
        else
            waived.push_back({rule, lineNo, false});
    }
    return waived;
}

void
lintFile(const fs::path &path, std::vector<Violation> &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        out.push_back({path.string(), 0, "io-error", "cannot open"});
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<LineView> lines = lex(buf.str());

    std::string posix = path.generic_string();
    bool pmInternal = posix.find("src/pm/") != std::string::npos;
    bool deviceFile = posix.find("src/pm/device.") != std::string::npos;
    bool syncExempt = pmInternal // device internals ARE the hooks
                      || posix.find("src/common/") != std::string::npos
                      || posix.find("src/mc/") != std::string::npos;

    std::vector<Waiver> active;      // waivers pending their code line
    std::vector<Waiver> fileWaivers; // allow-file() waivers
    std::vector<Waiver> retired;     // expired line waivers

    for (std::size_t n = 0; n < lines.size(); ++n) {
        const LineView &lv = lines[n];
        std::size_t lineNo = n + 1;

        for (Waiver &w : parseWaivers(lv.comment, posix, lineNo,
                                      fileWaivers, out))
            active.push_back(std::move(w));

        auto flag = [&](const char *rule, const char *message) {
            bool suppressed = false;
            for (Waiver &w : active)
                if (w.rule == rule) {
                    w.used = true;
                    suppressed = true;
                }
            for (Waiver &w : fileWaivers)
                if (w.rule == rule) {
                    w.used = true;
                    suppressed = true;
                }
            if (!suppressed)
                out.push_back({posix, lineNo, rule, message});
        };

        if (!pmInternal && hasToken(lv.code, "durableData"))
            flag("pm-raw-access",
                 "raw durable-image access outside src/pm/; store "
                 "through PmDevice::write so the checker sees it");

        if (!deviceFile
            && (hasToken(lv.code, "_mm_clflush")
                || hasToken(lv.code, "_mm_clflushopt")
                || hasToken(lv.code, "_mm_clwb")
                || hasToken(lv.code, "_mm_sfence")
                || hasToken(lv.code, "asm")
                || hasToken(lv.code, "__asm__")
                || lv.code.find("__builtin_ia32_") != std::string::npos))
            flag("flush-outside-device",
                 "flush/fence emission outside PmDevice; call "
                 "PmDevice::clflush/flushRange/sfence instead");

        if (hasAny(lv.code, {".lock(", "->lock(", ".unlock(",
                             "->unlock(", ".try_lock(",
                             "->try_lock("}))
            flag("bare-mutex-lock",
                 "direct mutex lock/unlock; use an RAII guard "
                 "(fasp::MutexLock or a PageLatch guard)");

        if (hasToken(lv.code, "volatile"))
            flag("no-volatile",
                 "'volatile' is not a concurrency/persistence "
                 "primitive; use std::atomic or the PmDevice API");

        if (!syncExempt
            && hasAny(lv.code,
                      {"std::mutex", "std::atomic",
                       "std::condition_variable", "std::shared_mutex",
                       "std::recursive_mutex", "std::timed_mutex"}))
            flag("raw-std-sync",
                 "raw standard sync primitive outside src/common+"
                 "src/mc; use the fasp wrappers so fasp-mc's "
                 "interception stays complete");

        // A waiver covers its own line plus the next line with code.
        bool hasCode = lv.code.find_first_not_of(" \t\r")
                       != std::string::npos;
        if (hasCode) {
            retired.insert(retired.end(), active.begin(),
                           active.end());
            active.clear();
        }
    }

    // A waiver that never suppressed anything must not outlive the
    // finding it once justified.
    retired.insert(retired.end(), active.begin(), active.end());
    retired.insert(retired.end(), fileWaivers.begin(),
                   fileWaivers.end());
    for (const Waiver &w : retired)
        if (!w.used)
            out.push_back({posix, w.line, "stale-waiver",
                           "waiver for '" + w.rule
                               + "' suppresses nothing; remove it"});
}

void
collect(const fs::path &path, std::vector<fs::path> &files, bool &err)
{
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
        for (auto it = fs::recursive_directory_iterator(path, ec);
             it != fs::recursive_directory_iterator(); ++it) {
            if (!it->is_regular_file(ec))
                continue;
            std::string ext = it->path().extension().string();
            if (ext == ".h" || ext == ".hh" || ext == ".hpp"
                || ext == ".cc" || ext == ".cpp" || ext == ".cxx")
                files.push_back(it->path());
        }
    } else if (fs::is_regular_file(path, ec)) {
        files.push_back(path);
    } else {
        std::cerr << "fasp-lint: no such file or directory: " << path
                  << "\n";
        err = true;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: fasp-lint <file-or-directory>...\n";
        return 2;
    }

    std::vector<fs::path> files;
    bool argError = false;
    for (int i = 1; i < argc; ++i)
        collect(argv[i], files, argError);
    if (argError)
        return 2;

    std::vector<Violation> violations;
    for (const fs::path &f : files)
        lintFile(f, violations);

    for (const Violation &v : violations)
        std::cout << v.file << ":" << v.line << ": " << v.rule << ": "
                  << v.message << "\n";
    std::cout << "fasp-lint: " << violations.size() << " violation"
              << (violations.size() == 1 ? "" : "s") << " in "
              << files.size() << " file"
              << (files.size() == 1 ? "" : "s") << " scanned\n";
    return violations.empty() ? 0 : 1;
}
