/**
 * @file
 * fasp-soak: continuous crash/recover/verify soak harness (DESIGN.md
 * §16). One device image lives across many rounds; each round drives a
 * YCSB mix (or the delete/defrag churn stream) against an engine with
 * a shadow std::map model, crashes at a randomized persistence event
 * (rotating through the engine's legal crash policies, including
 * TornLines where the commit protocol claims to survive it), recovers,
 * and then asserts, every round:
 *
 *   - forensics: the pre-recovery durable image decodes, and the
 *     flight recorder's in-flight inference names the interrupted tx;
 *   - the model oracle: the persistent flight recorder decides the
 *     fate of the in-flight op (CommitPoint durable => its effects
 *     MUST be present; OpBegin not durable => they MUST NOT be;
 *     otherwise either world, resolved by probing) and the whole
 *     B-tree must then equal the model exactly;
 *   - fsck: every durable Leaf/Internal page passes slottedFsck;
 *   - checker: the persistency-ordering checker (attached for the
 *     whole soak, across every crash and recovery) stays at zero
 *     violations.
 *
 * A seeded must-fail mode (dropFlushEvery) silently discards every Nth
 * flush's write-back while the software — including the runtime
 * checker — believes it persisted; only the model oracle / fsck /
 * forensics layers can catch the divergence, which is exactly what the
 * soak's must-fail ctest proves they do.
 */

#ifndef FASP_TOOLS_SOAK_H
#define FASP_TOOLS_SOAK_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"

namespace fasp::soak {

struct SoakOptions
{
    core::EngineKind kind = core::EngineKind::Fast;
    std::string mix = "A";          //!< "A".."F" or "churn"
    std::uint64_t rounds = 25;
    std::uint64_t opsPerRound = 400;
    std::uint64_t preload = 300;    //!< records/steps before round 1
    std::size_t valueSize = 64;     //!< YCSB record bytes
    std::uint64_t seed = 1;
    std::string dumpDir;            //!< dump failing images here ("" = off)
    std::uint64_t dropFlushEvery = 0; //!< >0: must-fail flush dropper
    bool verbose = true;            //!< per-round log lines to stdout
};

struct SoakResult
{
    std::uint64_t roundsRun = 0;
    std::uint64_t crashes = 0;
    std::uint64_t opsCommitted = 0;
    std::uint64_t inflightSurvived = 0;  //!< oracle: commit durable
    std::uint64_t inflightDropped = 0;   //!< oracle: begin not durable
    std::uint64_t inflightAmbiguous = 0; //!< oracle: probe decided
    std::uint64_t fsckPagesChecked = 0;
    std::uint64_t checkerViolations = 0;
    std::uint64_t violations = 0;        //!< oracle+fsck+forensics total
    std::vector<std::string> violationMessages; //!< first few, for logs
};

/** Run the soak. Never throws; violations are counted and returned. */
SoakResult runSoak(const SoakOptions &opt);

/** Machine-readable one-run summary. */
std::string soakResultToJson(const SoakOptions &opt,
                             const SoakResult &result);

} // namespace fasp::soak

#endif // FASP_TOOLS_SOAK_H
