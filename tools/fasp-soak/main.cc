/**
 * @file
 * fasp-soak CLI. Examples:
 *
 *   fasp-soak --engine=fast --mix=A --rounds=25
 *   fasp-soak --engine=all --mix=churn --rounds=5 --json=soak.json
 *   fasp-soak --engine=fash --rounds=3 --smoke --inject=drop-flush
 *
 * Exit status: 0 when every round verified clean, 1 when any oracle /
 * fsck / forensics / checker violation was recorded, 2 on usage error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "soak.h"

using namespace fasp;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --engine=NAME   fast|fash|nvwal|wal|journal|all "
        "(default fast)\n"
        "  --mix=M         YCSB mix A-F, or 'churn' (delete/defrag "
        "pressure; default A)\n"
        "  --rounds=N      crash/recover/verify rounds per engine "
        "(default 25)\n"
        "  --ops=N         target ops per round (default 400)\n"
        "  --preload=N     records loaded before round 1 (default 300)\n"
        "  --seed=N        RNG seed (default 1)\n"
        "  --smoke         small budget (120 ops/round, 120 preload)\n"
        "  --json=PATH     write a JSON summary\n"
        "  --metrics=PATH  enable the obs layer (span profiler "
        "included) and write the metrics export here\n"
        "  --dump-dir=DIR  dump failing PM images here\n"
        "  --inject=drop-flush[:N]  must-fail mode: silently drop every "
        "Nth flush (default N=9)\n"
        "  --quiet         suppress per-round log lines\n",
        argv0);
    return 2;
}

bool
parseEngines(const std::string &name,
             std::vector<core::EngineKind> &out)
{
    if (name == "all") {
        out = {core::EngineKind::Fast, core::EngineKind::Fash,
               core::EngineKind::Nvwal, core::EngineKind::LegacyWal,
               core::EngineKind::Journal};
        return true;
    }
    if (name == "fast")
        out = {core::EngineKind::Fast};
    else if (name == "fash")
        out = {core::EngineKind::Fash};
    else if (name == "nvwal")
        out = {core::EngineKind::Nvwal};
    else if (name == "wal" || name == "legacywal")
        out = {core::EngineKind::LegacyWal};
    else if (name == "journal")
        out = {core::EngineKind::Journal};
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    soak::SoakOptions opt;
    std::vector<core::EngineKind> engines = {core::EngineKind::Fast};
    std::string json_path;
    std::string metrics_path;
    bool smoke = false;
    bool rounds_given = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *flag) -> const char * {
            std::size_t n = std::strlen(flag);
            if (arg.compare(0, n, flag) == 0 && arg[n] == '=')
                return arg.c_str() + n + 1;
            return nullptr;
        };
        if (const char *v = value("--engine")) {
            if (!parseEngines(v, engines))
                return usage(argv[0]);
        } else if (const char *v = value("--mix")) {
            opt.mix = v;
        } else if (const char *v = value("--rounds")) {
            opt.rounds = std::strtoull(v, nullptr, 10);
            rounds_given = true;
        } else if (const char *v = value("--ops")) {
            opt.opsPerRound = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--preload")) {
            opt.preload = std::strtoull(v, nullptr, 10);
        } else if (const char *v = value("--seed")) {
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (const char *v = value("--json")) {
            json_path = v;
        } else if (const char *v = value("--metrics")) {
            metrics_path = v;
            obs::setEnabled(true);
        } else if (const char *v = value("--dump-dir")) {
            opt.dumpDir = v;
        } else if (const char *v = value("--inject")) {
            std::string inj = v;
            if (inj.compare(0, 10, "drop-flush") != 0)
                return usage(argv[0]);
            opt.dropFlushEvery =
                inj.size() > 11 && inj[10] == ':'
                    ? std::strtoull(inj.c_str() + 11, nullptr, 10)
                    : 9;
        } else if (arg == "--quiet") {
            opt.verbose = false;
        } else {
            return usage(argv[0]);
        }
    }
    if (smoke) {
        opt.opsPerRound = 120;
        opt.preload = 120;
        if (!rounds_given)
            opt.rounds = 3;
    }
    if (opt.mix != "churn" &&
        (opt.mix.size() != 1 || opt.mix[0] < 'A' || opt.mix[0] > 'F')) {
        std::fprintf(stderr, "fasp-soak: bad --mix=%s\n",
                     opt.mix.c_str());
        return usage(argv[0]);
    }

    std::string json = "[";
    std::uint64_t total_violations = 0;
    std::uint64_t total_rounds = 0;
    bool first = true;
    for (core::EngineKind kind : engines) {
        opt.kind = kind;
        soak::SoakResult result = soak::runSoak(opt);
        total_violations += result.violations;
        total_rounds += result.roundsRun;
        std::printf("fasp-soak: %s mix=%s rounds=%llu crashes=%llu "
                    "ops=%llu violations=%llu\n",
                    core::engineKindName(kind), opt.mix.c_str(),
                    static_cast<unsigned long long>(result.roundsRun),
                    static_cast<unsigned long long>(result.crashes),
                    static_cast<unsigned long long>(
                        result.opsCommitted),
                    static_cast<unsigned long long>(result.violations));
        if (!first)
            json += ",";
        json += "\n" + soak::soakResultToJson(opt, result);
        first = false;
    }
    json += "]\n";
    if (!json_path.empty()) {
        std::ofstream out(json_path, std::ios::trunc);
        out << json;
    }
    if (!metrics_path.empty())
        obs::writeMetricsFile(metrics_path, "fasp_soak");
    std::printf("fasp-soak: TOTAL rounds=%llu violations=%llu -> %s\n",
                static_cast<unsigned long long>(total_rounds),
                static_cast<unsigned long long>(total_violations),
                total_violations == 0 ? "PASS" : "FAIL");
    return total_violations == 0 ? 0 : 1;
}
