#include "soak.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>

#include "common/logging.h"
#include "common/rng.h"
#include "forensics.h"
#include "obs/flight_recorder.h"
#include "page/page_io.h"
#include "page/slotted_page.h"
#include "pager/superblock.h"
#include "pm/checker.h"
#include "pm/crash.h"
#include "pm/device.h"
#include "workload/workload.h"

namespace fasp::soak {
namespace {

using btree::BTree;
using core::Engine;
using core::EngineConfig;
using core::EngineKind;
using pm::CrashPolicy;
using pm::PmDevice;

/** Reference model of committed database contents. */
using Model = std::map<std::uint64_t, std::vector<std::uint8_t>>;

/** Must-fail injection: silently discard every Nth flush. */
class PeriodicFlushDropper : public pm::FlushDropper
{
  public:
    explicit PeriodicFlushDropper(std::uint64_t every) : every_(every) {}

    bool shouldDrop(PmOffset, std::uint64_t) override
    {
        return every_ > 0 &&
               count_.fetch_add(1, std::memory_order_relaxed) % every_ ==
                   every_ - 1;
    }

  private:
    std::uint64_t every_;
    std::atomic<std::uint64_t> count_{0};
};

/** One crash-policy choice per round; forceFallback detours FAST's
 *  in-place commit through the slot-header log, the only mode in which
 *  FAST legally survives TornLines (paper §3.2). */
struct PolicyChoice
{
    CrashPolicy policy;
    bool forceFallback;
};

std::vector<PolicyChoice>
legalPolicies(EngineKind kind)
{
    switch (kind) {
      case EngineKind::Fast:
        return {{CrashPolicy::DropAll, false},
                {CrashPolicy::RandomLines, false},
                {CrashPolicy::TornLines, true}};
      case EngineKind::Fash:
      case EngineKind::Nvwal:
        return {{CrashPolicy::DropAll, false},
                {CrashPolicy::RandomLines, false},
                {CrashPolicy::TornLines, false}};
      case EngineKind::LegacyWal:
      case EngineKind::Journal:
        return {{CrashPolicy::DropAll, false},
                {CrashPolicy::RandomLines, false}};
    }
    faspPanic("bad engine kind");
}

const char *
policyName(CrashPolicy policy)
{
    switch (policy) {
      case CrashPolicy::DropAll: return "DropAll";
      case CrashPolicy::RandomLines: return "RandomLines";
      case CrashPolicy::TornLines: return "TornLines";
    }
    return "?";
}

/** One soak operation, with the concrete bytes it writes so the model
 *  can be updated (or the in-flight ambiguity probed) exactly. */
struct SoakOp
{
    enum Kind { Insert, Update, Erase, Read, Scan, Rmw } kind;
    std::uint64_t key = 0;
    std::uint32_t scanLen = 0;
    std::vector<std::uint8_t> value;

    bool mutates() const
    {
        return kind == Insert || kind == Update || kind == Erase ||
               kind == Rmw;
    }

    const char *
    name() const
    {
        switch (kind) {
          case Insert: return "insert";
          case Update: return "update";
          case Erase: return "erase";
          case Read: return "read";
          case Scan: return "scan";
          case Rmw: return "rmw";
        }
        return "?";
    }

    void
    apply(Model &model) const
    {
        switch (kind) {
          case Insert:
          case Update:
          case Rmw:
            model[key] = value;
            break;
          case Erase:
            model.erase(key);
            break;
          case Read:
          case Scan:
            break;
        }
    }
};

/** Generates the op stream: a YCSB mix or the delete/defrag churn. */
class OpSource
{
  public:
    OpSource(const SoakOptions &opt)
        : churn_(opt.mix == "churn"), valueRng_(opt.seed ^ 0xabcdef),
          values_(workload::ValueGen::fixed(opt.valueSize, opt.seed + 5))
    {
        if (churn_) {
            churnStream_.emplace(opt.seed + 11);
        } else {
            FASP_ASSERT(opt.mix.size() == 1);
            workload::YcsbWorkload::Options wl;
            wl.mix = workload::ycsbMix(opt.mix[0]);
            wl.seed = opt.seed + 11;
            wl.preload = opt.preload;
            wl.order = workload::KeyOrder::Hashed;
            ycsb_.emplace(wl);
        }
    }

    bool churn() const { return churn_; }

    /** Keys the YCSB preload phase must insert (churn preloads by
     *  just running the stream). */
    std::uint64_t preloadKey(std::uint64_t i) const
    {
        return ycsb_->keyOfIndex(i);
    }

    SoakOp
    next()
    {
        SoakOp op;
        if (churn_) {
            workload::DeleteDefragStream::Step step =
                churnStream_->next();
            op.key = step.key;
            switch (step.type) {
              case workload::OpType::Insert:
                op.kind = SoakOp::Insert;
                break;
              case workload::OpType::Update:
                op.kind = SoakOp::Update;
                break;
              case workload::OpType::Delete:
                op.kind = SoakOp::Erase;
                break;
              case workload::OpType::Lookup:
                op.kind = SoakOp::Read;
                break;
            }
            if (op.kind == SoakOp::Insert || op.kind == SoakOp::Update) {
                op.value.resize(step.valueSize);
                valueRng_.fillBytes(op.value.data(), op.value.size());
            }
            return op;
        }
        workload::YcsbOpSpec spec = ycsb_->next();
        op.key = spec.key;
        op.scanLen = spec.scanLen;
        switch (spec.type) {
          case workload::YcsbOp::Read: op.kind = SoakOp::Read; break;
          case workload::YcsbOp::Update: op.kind = SoakOp::Update; break;
          case workload::YcsbOp::Insert: op.kind = SoakOp::Insert; break;
          case workload::YcsbOp::Scan: op.kind = SoakOp::Scan; break;
          case workload::YcsbOp::ReadModifyWrite:
            op.kind = SoakOp::Rmw;
            break;
        }
        if (op.mutates()) {
            values_.next(op.value);
            // Stamp a fresh low word so successive writes to one key
            // are distinguishable when probing in-flight ambiguity.
            std::uint64_t nonce = valueRng_.next();
            std::memcpy(op.value.data(), &nonce,
                        std::min(op.value.size(), sizeof nonce));
        }
        return op;
    }

  private:
    bool churn_;
    Rng valueRng_;
    workload::ValueGen values_;
    std::optional<workload::YcsbWorkload> ycsb_;
    std::optional<workload::DeleteDefragStream> churnStream_;
};

class Soak
{
  public:
    explicit Soak(const SoakOptions &opt)
        : opt_(opt), source_(opt), rng_(opt.seed * 2654435761u + 99),
          policies_(legalPolicies(opt.kind)),
          dropper_(opt.dropFlushEvery)
    {}

    SoakResult run();

  private:
    EngineConfig engineConfig(bool forceFallback) const;
    bool setUp();
    void violation(std::string message);
    void logRound(const std::string &line) const;
    std::optional<std::string> runOp(const SoakOp &op);
    void verifyFull(const char *where);
    void fsckSweep(const char *where, bool trustScratch);
    void checkCheckerDelta(const char *where);
    bool crashRecoverVerify(const SoakOp &inflight,
                            std::uint64_t expectedTxid,
                            std::uint64_t round);
    void maybeDumpImage(std::uint64_t round);
    void captureTxidBase();

    SoakOptions opt_;
    OpSource source_;
    Rng rng_;
    std::vector<PolicyChoice> policies_;
    PeriodicFlushDropper dropper_;

    std::unique_ptr<PmDevice> device_;
    pm::PersistencyChecker checker_;
    std::unique_ptr<Engine> engine_;
    std::optional<BTree> tree_;
    Model model_;
    SoakResult result_;
    std::uint64_t checkerSeen_ = 0;
    double eventsPerOp_ = 32.0;
    std::uint64_t round_ = 0;
    std::uint64_t txidBase_ = 0;
    std::uint64_t txBegunBase_ = 0;
};

EngineConfig
Soak::engineConfig(bool forceFallback) const
{
    EngineConfig cfg;
    cfg.kind = opt_.kind;
    cfg.format.logLen = 2u << 20;
    cfg.volatileCachePages = 512;
    if (forceFallback) {
        cfg.rtm.abortProbability = 1.0;
        cfg.rtmRetriesBeforeFallback = 1;
        cfg.pcas.failProbability = 1.0;
        cfg.pcas.maxRetries = 1;
    }
    return cfg;
}

/** Snapshot a (txid, txBegun) pair from a probe transaction so the
 *  in-flight txid at crash time can be projected as base + delta. */
void
Soak::captureTxidBase()
{
    auto tx = engine_->begin();
    txidBase_ = tx->id();
    txBegunBase_ = engine_->stats().txBegun.load();
    tx->rollback();
}

void
Soak::violation(std::string message)
{
    result_.violations++;
    if (result_.violationMessages.size() < 20)
        result_.violationMessages.push_back(message);
    std::fprintf(stderr, "fasp-soak: VIOLATION: %s\n", message.c_str());
}

void
Soak::logRound(const std::string &line) const
{
    if (opt_.verbose) {
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
    }
}

bool
Soak::setUp()
{
    pm::PmConfig pmcfg;
    pmcfg.size = 24u << 20;
    pmcfg.mode = pm::PmMode::CacheSim;
    pmcfg.crashPolicy = policies_[0].policy;
    pmcfg.crashSeed = opt_.seed * 7919 + 13;
    device_ = std::make_unique<PmDevice>(pmcfg);
    device_->setChecker(&checker_);

    auto engine_res = Engine::create(*device_, engineConfig(
                                         policies_[0].forceFallback),
                                     /*format=*/true);
    if (!engine_res.isOk()) {
        violation("engine create failed: " +
                  engine_res.status().toString());
        return false;
    }
    engine_ = std::move(*engine_res);
    auto tree_res = engine_->createTree(1);
    if (!tree_res.isOk()) {
        violation("tree create failed: " + tree_res.status().toString());
        return false;
    }
    tree_ = *tree_res;

    // Preload (not crash-injected, not flush-dropped): YCSB loads the
    // keyspace; churn warms up by running the stream itself.
    if (source_.churn()) {
        for (std::uint64_t i = 0; i < opt_.preload; ++i) {
            SoakOp op = source_.next();
            if (auto err = runOp(op)) {
                violation("preload: " + *err);
                return false;
            }
        }
    } else {
        workload::ValueGen values =
            workload::ValueGen::fixed(opt_.valueSize, opt_.seed + 5);
        std::vector<std::uint8_t> value;
        for (std::uint64_t i = 0; i < opt_.preload; ++i) {
            std::uint64_t key = source_.preloadKey(i);
            values.next(value);
            Status status = engine_->insert(
                *tree_, key, std::span<const std::uint8_t>(value));
            if (status.isOk()) {
                model_[key] = value;
            } else if (status.code() != StatusCode::AlreadyExists) {
                violation("preload insert failed: " + status.toString());
                return false;
            }
        }
    }
    captureTxidBase();
    return true;
}

/** Execute one op and reconcile the result with the model. Returns a
 *  violation message on divergence. CrashException propagates. */
std::optional<std::string>
Soak::runOp(const SoakOp &op)
{
    auto keyStr = [&] { return std::to_string(op.key); };
    switch (op.kind) {
      case SoakOp::Insert: {
        Status status = engine_->insert(
            *tree_, op.key, std::span<const std::uint8_t>(op.value));
        bool present = model_.count(op.key) > 0;
        if (status.isOk()) {
            if (present)
                return "insert succeeded on existing key " + keyStr();
            model_[op.key] = op.value;
            return std::nullopt;
        }
        if (status.code() == StatusCode::AlreadyExists && present)
            return std::nullopt;
        return "insert key " + keyStr() + ": " + status.toString();
      }
      case SoakOp::Update: {
        Status status = engine_->update(
            *tree_, op.key, std::span<const std::uint8_t>(op.value));
        bool present = model_.count(op.key) > 0;
        if (status.isOk()) {
            if (!present)
                return "update succeeded on absent key " + keyStr();
            model_[op.key] = op.value;
            return std::nullopt;
        }
        if (status.code() == StatusCode::NotFound && !present)
            return std::nullopt;
        return "update key " + keyStr() + ": " + status.toString();
      }
      case SoakOp::Erase: {
        Status status = engine_->erase(*tree_, op.key);
        bool present = model_.count(op.key) > 0;
        if (status.isOk()) {
            if (!present)
                return "erase succeeded on absent key " + keyStr();
            model_.erase(op.key);
            return std::nullopt;
        }
        if (status.code() == StatusCode::NotFound && !present)
            return std::nullopt;
        return "erase key " + keyStr() + ": " + status.toString();
      }
      case SoakOp::Read: {
        std::vector<std::uint8_t> out;
        Status status = engine_->get(*tree_, op.key, out);
        auto it = model_.find(op.key);
        if (status.isOk()) {
            if (it == model_.end())
                return "read found phantom key " + keyStr();
            if (out != it->second)
                return "read key " + keyStr() + ": value diverges "
                       "from model";
            return std::nullopt;
        }
        if (status.code() == StatusCode::NotFound &&
            it == model_.end())
            return std::nullopt;
        return "read key " + keyStr() + ": " + status.toString();
      }
      case SoakOp::Scan: {
        std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
            got;
        std::uint32_t remaining = op.scanLen ? op.scanLen : 1;
        Status status = engine_->scan(
            *tree_, op.key, ~std::uint64_t{0},
            [&](std::uint64_t k, std::span<const std::uint8_t> v) {
                got.emplace_back(
                    k, std::vector<std::uint8_t>(v.begin(), v.end()));
                return --remaining > 0;
            });
        if (!status.isOk())
            return "scan from " + keyStr() + ": " + status.toString();
        auto it = model_.lower_bound(op.key);
        for (std::size_t i = 0; i < got.size(); ++i, ++it) {
            if (it == model_.end())
                return "scan from " + keyStr() + ": phantom key " +
                       std::to_string(got[i].first);
            if (got[i].first != it->first ||
                got[i].second != it->second)
                return "scan from " + keyStr() + ": diverges from "
                       "model at key " + std::to_string(got[i].first);
        }
        // The scan may legally end early only at the end of the tree.
        std::uint32_t want = op.scanLen ? op.scanLen : 1;
        if (got.size() < want && it != model_.end())
            return "scan from " + keyStr() + ": stopped early (" +
                   std::to_string(got.size()) + " of " +
                   std::to_string(want) + ")";
        return std::nullopt;
      }
      case SoakOp::Rmw: {
        auto tx = engine_->begin();
        std::vector<std::uint8_t> out;
        Status status = tree_->get(tx->pageIO(), op.key, out);
        auto it = model_.find(op.key);
        if (!status.isOk()) {
            tx->rollback();
            if (status.code() == StatusCode::NotFound &&
                it == model_.end())
                return std::nullopt;
            return "rmw read key " + keyStr() + ": " +
                   status.toString();
        }
        if (it == model_.end()) {
            tx->rollback();
            return "rmw read found phantom key " + keyStr();
        }
        if (out != it->second) {
            tx->rollback();
            return "rmw read key " + keyStr() + ": value diverges";
        }
        status = tree_->update(tx->pageIO(), op.key,
                               std::span<const std::uint8_t>(op.value));
        if (!status.isOk()) {
            tx->rollback();
            return "rmw update key " + keyStr() + ": " +
                   status.toString();
        }
        status = tx->commit();
        if (!status.isOk())
            return "rmw commit key " + keyStr() + ": " +
                   status.toString();
        model_[op.key] = op.value;
        return std::nullopt;
      }
    }
    return "bad op";
}

/** Full-tree verification against the model: structural integrity,
 *  exact key/value set. */
void
Soak::verifyFull(const char *where)
{
    auto tx = engine_->begin();
    Status integrity = tree_->checkIntegrity(tx->pageIO());
    if (!integrity.isOk()) {
        violation(std::string(where) +
                  ": integrity: " + integrity.toString());
        tx->rollback();
        return;
    }
    std::size_t scanned = 0;
    bool diverged = false;
    Status status = tree_->scan(
        tx->pageIO(), 0, ~std::uint64_t{0},
        [&](std::uint64_t k, std::span<const std::uint8_t> v) {
            auto it = model_.find(k);
            if (it == model_.end()) {
                violation(std::string(where) + ": phantom key " +
                          std::to_string(k));
                diverged = true;
            } else if (!std::equal(v.begin(), v.end(),
                                   it->second.begin(),
                                   it->second.end())) {
                violation(std::string(where) + ": value mismatch for "
                          "key " + std::to_string(k));
                diverged = true;
            }
            ++scanned;
            return true;
        });
    tx->rollback();
    if (!status.isOk()) {
        violation(std::string(where) + ": scan: " + status.toString());
        return;
    }
    if (!diverged && scanned != model_.size())
        violation(std::string(where) + ": tree holds " +
                  std::to_string(scanned) + " keys, model " +
                  std::to_string(model_.size()));
}

/** Run the two-tier slotted fsck over every page reachable from the
 *  tree root. Reachability is the soundness boundary: a crash mid
 *  page-allocation legally leaves a formatted-but-unlinked page with
 *  torn content, and freed pages keep a stale Leaf type byte over
 *  recycled bytes, so a whole-device sweep (Explorer::fsckSweep's
 *  shape) flags states that are fine. Pages are read through the
 *  transaction view, not the raw device — buffered engines keep
 *  not-yet-checkpointed pages only in cache, where the durable copy
 *  legitimately lags. trustScratch mirrors the explorer: strict at
 *  quiescent points, lenient right after a crash (intra-page free
 *  lists may be torn until lazily rebuilt). */
void
Soak::fsckSweep(const char *where, bool trustScratch)
{
    auto tx = engine_->begin();
    btree::TxPageIO &io = tx->pageIO();
    auto root = tree_->rootPid(io);
    if (!root.isOk()) {
        violation(std::string(where) + ": fsck: no tree root: " +
                  root.status().toString());
        tx->rollback();
        return;
    }
    const pager::Superblock &sb = engine_->superblock();
    std::vector<PageId> stack = {*root};
    std::uint64_t visited = 0;
    while (!stack.empty()) {
        PageId pid = stack.back();
        stack.pop_back();
        if (++visited > sb.pageCount) {
            violation(std::string(where) +
                      ": fsck: reachability walk escaped (cycle?)");
            break;
        }
        page::PageIO &view = io.page(pid, /*for_write=*/false);
        if (page::pageType(view) == page::PageType::Internal) {
            std::uint16_t nrec = page::numRecords(view);
            for (std::uint16_t i = 0; i < nrec; ++i)
                stack.push_back(page::childPid(view, i));
            stack.push_back(page::aux(view));
        }
        Status s = page::slottedFsck(view, trustScratch);
        if (!s.isOk())
            violation(std::string(where) + ": fsck page " +
                      std::to_string(pid) + ": " + s.toString());
        result_.fsckPagesChecked++;
    }
    tx->rollback();
}

void
Soak::checkCheckerDelta(const char *where)
{
    std::uint64_t total = checker_.report().total();
    if (total > checkerSeen_) {
        result_.checkerViolations += total - checkerSeen_;
        violation(std::string(where) + ": persistency checker: " +
                  checker_.report().toString());
        checkerSeen_ = total;
    }
}

void
Soak::maybeDumpImage(std::uint64_t round)
{
    if (opt_.dumpDir.empty())
        return;
    std::string path = opt_.dumpDir + "/soak_" +
                       core::engineKindName(opt_.kind) + "_round" +
                       std::to_string(round) + ".img";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(device_->durableData()),
              static_cast<std::streamsize>(device_->size()));
    std::fprintf(stderr, "fasp-soak: dumped failing image to %s\n",
                 path.c_str());
}

/**
 * The post-crash half of a round: offline forensics on the durable
 * image, recovery, the flight-recorder model oracle for the in-flight
 * op, then full model + fsck + checker verification.
 * @return false if the engine could not be brought back.
 */
bool
Soak::crashRecoverVerify(const SoakOp &inflight,
                         std::uint64_t expectedTxid, std::uint64_t round)
{
    std::uint64_t violations_before = result_.violations;
    engine_.reset();
    tree_.reset();

    // Offline forensics over the pre-recovery image, as the CLI would
    // see it.
    forensics::CrashReport report = forensics::analyzeImage(
        device_->durableData(), device_->size());
    if (!report.sb.present || !report.sb.crcOk)
        violation("forensics: superblock undecodable after crash");
    if (!report.timeline.headerOk)
        violation("forensics: flight recorder undecodable after crash");

    // Slice the timeline to the current engine incarnation: records
    // after the last durable RecoveryEnd. (Txids restart at 1 per
    // incarnation; the ring evicts oldest-first, so if this
    // incarnation's RecoveryEnd was overwritten, every older record
    // is gone too and the whole ring is ours.)
    std::uint64_t slice_seq = 0;
    for (const obs::FlightRecord &rec : report.timeline.records) {
        if (rec.type == obs::FlightEventType::RecoveryEnd)
            slice_seq = rec.seq;
    }
    bool begin_durable = false;
    bool commit_durable = false;
    for (const obs::FlightRecord &rec : report.timeline.records) {
        if (rec.seq <= slice_seq || rec.txid != expectedTxid)
            continue;
        if (rec.type == obs::FlightEventType::OpBegin)
            begin_durable = true;
        if (rec.type == obs::FlightEventType::CommitPoint)
            commit_durable = true;
    }
    // Cross-check the forensics in-flight inference: when it names an
    // op, it must be ours.
    if (report.inflight.found &&
        report.inflight.txid != expectedTxid &&
        report.inflight.beginSeq > slice_seq)
        violation("forensics: in-flight inference names tx " +
                  std::to_string(report.inflight.txid) + ", expected " +
                  std::to_string(expectedTxid));

    device_->reviveAfterCrash();
    PolicyChoice next = policies_[(round + 1) % policies_.size()];
    auto engine_res = Engine::create(
        *device_, engineConfig(next.forceFallback), /*format=*/false);
    if (!engine_res.isOk()) {
        violation("recovery failed: " + engine_res.status().toString());
        maybeDumpImage(round);
        return false;
    }
    engine_ = std::move(*engine_res);
    {
        auto tx = engine_->begin();
        auto tree_res = BTree::open(tx->pageIO(), 1);
        tx->rollback();
        if (!tree_res.isOk()) {
            violation("tree reopen failed: " +
                      tree_res.status().toString());
            maybeDumpImage(round);
            return false;
        }
        tree_ = *tree_res;
    }
    captureTxidBase();

    // The model oracle: the flight recorder decides the fate of the
    // in-flight op.
    const char *resolution = "read-only";
    if (inflight.mutates()) {
        if (commit_durable) {
            // CommitPoint is appended only after the commit's
            // durability point: the op MUST have survived.
            inflight.apply(model_);
            result_.inflightSurvived++;
            resolution = "survived";
        } else if (!begin_durable) {
            // OpBegin is persisted (store+flush+fence) before any op
            // writes: without it, nothing of the op may be visible.
            result_.inflightDropped++;
            resolution = "dropped";
        } else {
            // Began but did not commit: either world is legal (the
            // crash may have landed inside the commit protocol, which
            // recovery resolves in either direction). Probe the
            // affected key to find out which world we are in; the full
            // verification below then holds the engine to it.
            Model after = model_;
            inflight.apply(after);
            std::vector<std::uint8_t> out;
            Status probe = engine_->get(*tree_, inflight.key, out);
            auto before_it = model_.find(inflight.key);
            auto after_it = after.find(inflight.key);
            bool resolved = false;
            if (probe.isOk()) {
                if (after_it != after.end() && out == after_it->second) {
                    model_ = std::move(after);
                    resolved = true;
                } else if (before_it != model_.end() &&
                           out == before_it->second) {
                    resolved = true;
                }
            } else if (probe.code() == StatusCode::NotFound) {
                if (after_it == after.end()) {
                    model_ = std::move(after);
                    resolved = true;
                } else if (before_it == model_.end()) {
                    resolved = true;
                }
            }
            if (!resolved)
                violation("oracle: in-flight " +
                          std::string(inflight.name()) + " on key " +
                          std::to_string(inflight.key) +
                          " left a third state");
            result_.inflightAmbiguous++;
            resolution = "ambiguous";
        }
    }

    verifyFull("post-recovery");
    fsckSweep("post-recovery", /*trustScratch=*/false);
    checkCheckerDelta("post-recovery");

    logRound("[round " + std::to_string(round) + "] engine=" +
             core::engineKindName(opt_.kind) + " policy=" +
             policyName(policies_[round % policies_.size()].policy) +
             " crash tx=" +
             std::to_string(expectedTxid) + " op=" + inflight.name() +
             " oracle=" + resolution + " keys=" +
             std::to_string(model_.size()) + " violations=" +
             std::to_string(result_.violations));

    if (result_.violations > violations_before)
        maybeDumpImage(round);
    return true;
}

SoakResult
Soak::run()
{
    obs::FlightRecorder::setEnabled(true);
    if (!setUp()) {
        obs::FlightRecorder::setEnabled(false);
        return result_;
    }
    if (opt_.dropFlushEvery > 0)
        device_->setFlushDropper(&dropper_);

    for (round_ = 0; round_ < opt_.rounds; ++round_) {
        PolicyChoice choice = policies_[round_ % policies_.size()];
        device_->setCrashPolicy(choice.policy);

        // Aim the crash inside this round's op window; the estimate
        // adapts to the observed event rate.
        std::uint64_t window = std::max<std::uint64_t>(
            32, static_cast<std::uint64_t>(
                    eventsPerOp_ *
                    static_cast<double>(opt_.opsPerRound) * 0.8));
        std::uint64_t k = 1 + rng_.nextBounded(window);
        std::uint64_t event0 = device_->eventCount();
        pm::PointCrashInjector injector(event0 + k);
        device_->setCrashInjector(&injector);

        bool crashed = false;
        SoakOp current{};
        std::uint64_t expected_txid = 0;
        std::uint64_t ops_done = 0;
        try {
            // Keep issuing ops until the crash lands (cap: 8x the
            // round budget, in case the estimate was far off).
            for (; ops_done < opt_.opsPerRound * 8; ++ops_done) {
                current = source_.next();
                if (auto err = runOp(current)) {
                    violation("round " + std::to_string(round_) + ": " +
                              *err);
                    // Must-fail mode: detection is proven; keeping
                    // going on an image with silently-lost lines just
                    // risks chasing a wild page pointer into a panic.
                    if (opt_.dropFlushEvery > 0)
                        break;
                }
                result_.opsCommitted++;
            }
        } catch (const pm::CrashException &) {
            crashed = true;
            // The in-flight tx's id. Buffered engines resume txids
            // from the recovered log rather than from 1, so project
            // from the probe pair captured after the last recovery:
            // ids and txBegun advance in lockstep, one per begin().
            expected_txid =
                txidBase_ +
                (engine_->stats().txBegun.load() - txBegunBase_);
        }
        device_->setCrashInjector(nullptr);
        if (ops_done > 0)
            eventsPerOp_ = std::max(
                4.0, static_cast<double>(device_->eventCount() - event0) /
                         static_cast<double>(ops_done));

        if (opt_.dropFlushEvery > 0 && result_.violations > 0) {
            logRound("[round " + std::to_string(round_) +
                     "] engine=" + core::engineKindName(opt_.kind) +
                     " must-fail divergence detected; stopping");
            result_.roundsRun++;
            break;
        }

        if (!crashed) {
            // The window overshot every op; verify in place and move
            // on (still a verified round, just without a crash).
            verifyFull("clean-round");
            fsckSweep("clean-round", /*trustScratch=*/true);
            checkCheckerDelta("clean-round");
            logRound("[round " + std::to_string(round_) +
                     "] engine=" +
                     core::engineKindName(opt_.kind) +
                     " no-crash keys=" + std::to_string(model_.size()) +
                     " violations=" +
                     std::to_string(result_.violations));
            result_.roundsRun++;
            continue;
        }

        result_.crashes++;
        if (!crashRecoverVerify(current, expected_txid, round_)) {
            result_.roundsRun++;
            break; // device unusable; stop the soak
        }
        result_.roundsRun++;
    }

    // Orderly teardown: flush everything, then run the checker's
    // clean-shutdown sweep.
    if (opt_.dropFlushEvery > 0)
        device_->setFlushDropper(nullptr);
    engine_.reset();
    tree_.reset();
    if (device_ && !device_->crashed())
        checker_.checkCleanShutdown(device_->eventCount());
    if (device_)
        device_->setChecker(nullptr);
    std::uint64_t total = checker_.report().total();
    if (total > checkerSeen_) {
        result_.checkerViolations += total - checkerSeen_;
        violation("shutdown: persistency checker: " +
                  checker_.report().toString());
    }
    obs::FlightRecorder::setEnabled(false);
    return result_;
}

} // namespace

SoakResult
runSoak(const SoakOptions &opt)
{
    Soak soak(opt);
    return soak.run();
}

std::string
soakResultToJson(const SoakOptions &opt, const SoakResult &result)
{
    std::string out = "{\n  \"tool\": \"fasp-soak\",\n";
    out += "  \"engine\": \"" +
           std::string(core::engineKindName(opt.kind)) + "\",\n";
    out += "  \"mix\": \"" + opt.mix + "\",\n";
    out += "  \"rounds\": " + std::to_string(result.roundsRun) + ",\n";
    out += "  \"crashes\": " + std::to_string(result.crashes) + ",\n";
    out += "  \"ops_committed\": " +
           std::to_string(result.opsCommitted) + ",\n";
    out += "  \"inflight\": {\"survived\": " +
           std::to_string(result.inflightSurvived) +
           ", \"dropped\": " + std::to_string(result.inflightDropped) +
           ", \"ambiguous\": " +
           std::to_string(result.inflightAmbiguous) + "},\n";
    out += "  \"fsck_pages_checked\": " +
           std::to_string(result.fsckPagesChecked) + ",\n";
    out += "  \"checker_violations\": " +
           std::to_string(result.checkerViolations) + ",\n";
    out += "  \"violations\": " + std::to_string(result.violations) +
           "\n}\n";
    return out;
}

} // namespace fasp::soak
