/**
 * @file
 * Minimal JSON parser shared by the repo's report-validating tools
 * (metrics_check, bench_compare). Parses the subset the bench harness
 * emits — objects, arrays, strings with ASCII escapes, numbers,
 * literals — into a small DOM. Not a general-purpose JSON library.
 */
#pragma once

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fasp::minijson {

struct JsonValue
{
    enum Kind { Null, Bool, Number, String, Array, Object } kind = Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::map<std::string, JsonValue> fields;

    bool isNumber() const { return kind == Number; }

    const JsonValue *
    find(const std::string &key) const
    {
        auto it = fields.find(key);
        return it == fields.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    /** Parse the whole document; null on malformed input. */
    std::unique_ptr<JsonValue>
    parse()
    {
        auto value = std::make_unique<JsonValue>();
        if (!parseValue(*value))
            return nullptr;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters"), nullptr;
        return value;
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_.empty()) {
            error_ = what + " at byte " + std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::String;
            return parseString(out.str);
          case 't':
          case 'f': return parseLiteral(out);
          case 'n': return parseLiteral(out);
          default: return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Object;
        if (!consume('{'))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            std::string key;
            skipWs();
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.fields.emplace(std::move(key), std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Array;
        if (!consume('['))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.items.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("bad \\u escape");
                    // ASCII-only decode: enough for this repo's output.
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    out += static_cast<char>(code & 0x7f);
                    break;
                  }
                  default: return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseLiteral(JsonValue &out)
    {
        auto matches = [&](std::string_view lit) {
            return text_.compare(pos_, lit.size(), lit) == 0;
        };
        if (matches("true")) {
            out.kind = JsonValue::Bool;
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (matches("false")) {
            out.kind = JsonValue::Bool;
            pos_ += 5;
            return true;
        }
        if (matches("null")) {
            out.kind = JsonValue::Null;
            pos_ += 4;
            return true;
        }
        return fail("bad literal");
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected number");
        out.kind = JsonValue::Number;
        out.number =
            std::strtod(std::string(text_.substr(start, pos_ - start))
                            .c_str(),
                        nullptr);
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace fasp::minijson
