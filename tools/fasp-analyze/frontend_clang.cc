/**
 * @file
 * Clang front end: translate `clang++ -Xclang -ast-dump=json` output
 * into the statement IR. Used where a real clang is installed (CI);
 * the internal front end covers everywhere else.
 *
 * The dump is huge (it includes every system header), so this is a
 * streaming reader: declaration subtrees outside the analyzed roots
 * are skipped without building anything. Two clang-specific hazards
 * drive the design:
 *
 *  - Source locations are delta-encoded in document order ("file" and
 *    "line" keys appear only when they change), so even *skipped*
 *    subtrees must be scanned for those keys to keep the decoder
 *    state correct — except "includedFrom" objects, whose "file" key
 *    is metadata, not a position.
 *  - The AST carries no expression text. Argument expressions (the
 *    abstract lattice lines) are sliced out of the original source
 *    via the node's begin/end offsets + tokLen, then normalized with
 *    the same tokenizer the internal front end uses, so both front
 *    ends agree on line identity.
 */

#include <algorithm>
#include <fstream>
#include <sstream>

#include "analyze.h"
#include "lex.h"

namespace fasp::analyze {

namespace {

struct ParseError
{
    std::string what;
};

/** Pruned AST node: only the fields the translator reads. */
struct JNode
{
    std::string kind;
    std::string name;     //!< "name" or referencedDecl.name
    std::string value;    //!< literal value (string literals keep quotes)
    std::string qualType; //!< type.qualType
    std::string file;
    int line = 0;
    long long beginOff = -1;
    long long endOff = -1; //!< exclusive (end offset + tokLen)
    bool hasElse = false;
    std::vector<JNode> children;
};

bool
isContainerKind(const std::string &k)
{
    return k == "TranslationUnitDecl" || k == "NamespaceDecl"
           || k == "CXXRecordDecl" || k == "LinkageSpecDecl"
           || k == "ClassTemplateDecl"
           || k == "ClassTemplateSpecializationDecl"
           || k == "ClassTemplatePartialSpecializationDecl"
           || k == "FunctionTemplateDecl" || k == "ExportDecl";
}

bool
isFunctionKind(const std::string &k)
{
    return k == "FunctionDecl" || k == "CXXMethodDecl"
           || k == "CXXConstructorDecl" || k == "CXXDestructorDecl"
           || k == "CXXConversionDecl";
}

// --- Source slicing ----------------------------------------------------------

class SourceCache
{
  public:
    /** Raw text of @p file, or null when unreadable. */
    const std::string *get(const std::string &file)
    {
        auto it = cache_.find(file);
        if (it != cache_.end())
            return it->second.empty() && missing_.count(file) != 0
                       ? nullptr
                       : &it->second;
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            missing_.insert(file);
            cache_[file] = {};
            return nullptr;
        }
        std::ostringstream os;
        os << in.rdbuf();
        return &(cache_[file] = os.str());
    }

  private:
    std::map<std::string, std::string> cache_;
    std::set<std::string> missing_;
};

// --- Streaming JSON reader ---------------------------------------------------

class AstReader
{
  public:
    AstReader(const std::string &text,
              const std::vector<std::string> &keep)
        : s_(text), keep_(keep)
    {}

    void run(std::map<std::string, FileIR> &files)
    {
        files_ = &files;
        ws();
        scanDecl();
    }

  private:
    // -- primitives -----------------------------------------------------

    [[noreturn]] void fail(const std::string &msg)
    {
        throw ParseError{msg + " near offset "
                         + std::to_string(pos_)};
    }

    void ws()
    {
        while (pos_ < s_.size()
               && (s_[pos_] == ' ' || s_[pos_] == '\t'
                   || s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        ws();
        if (pos_ >= s_.size())
            fail("unexpected end of JSON");
        return s_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "' got '" + s_[pos_]
                 + "'");
        ++pos_;
    }

    bool tryConsume(char c)
    {
        if (pos_ < s_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("bad escape");
            char e = s_[pos_++];
            switch (e) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u':
                // Paths and code are ASCII in this tree; placeholder.
                pos_ = std::min(pos_ + 4, s_.size());
                out += '?';
                break;
            default: out += e; break;
            }
        }
        expect('"');
        return out;
    }

    long long parseNumber()
    {
        ws();
        std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        while (pos_ < s_.size()
               && (std::isdigit(static_cast<unsigned char>(s_[pos_]))
                       != 0
                   || s_[pos_] == '.' || s_[pos_] == 'e'
                   || s_[pos_] == 'E' || s_[pos_] == '-'
                   || s_[pos_] == '+'))
            ++pos_;
        if (pos_ == start)
            fail("expected number");
        return std::stoll(s_.substr(start, pos_ - start));
    }

    void parseLiteralWord() // true / false / null
    {
        while (pos_ < s_.size()
               && std::isalpha(static_cast<unsigned char>(s_[pos_]))
                      != 0)
            ++pos_;
    }

    /**
     * Skip any value. With @p delta, nested "file"/"line" keys update
     * the location-decoder state (clang's delta encoding is document-
     * global, so skipped subtrees still advance it); "includedFrom"
     * subtrees are skipped without delta (their "file" is metadata).
     */
    void skipValue(bool delta)
    {
        char c = peek();
        if (c == '"') {
            parseString();
        } else if (c == '{') {
            ++pos_;
            if (tryConsume('}'))
                return;
            do {
                std::string key = parseString();
                expect(':');
                if (delta && key == "file" && peek() == '"') {
                    curFile_ = parseString();
                } else if (delta && key == "line" && peek() != '{'
                           && peek() != '[') {
                    curLine_ = static_cast<int>(parseNumber());
                } else if (key == "includedFrom") {
                    skipValue(false);
                } else {
                    skipValue(delta);
                }
            } while (tryConsume(','));
            expect('}');
        } else if (c == '[') {
            ++pos_;
            if (tryConsume(']'))
                return;
            do {
                skipValue(delta);
            } while (tryConsume(','));
            expect(']');
        } else if (c == '-' || c == '+'
                   || std::isdigit(static_cast<unsigned char>(c))
                          != 0) {
            parseNumber();
        } else {
            parseLiteralWord();
        }
    }

    // -- location decoding ----------------------------------------------

    struct LocResult
    {
        long long offset = -1;
        long long tokLen = 0;
    };

    /** Parse a source-location object, updating the delta state. For
     *  macro locations the "expansionLoc" comes last in document
     *  order, so last-seen-wins naturally yields expansion
     *  coordinates. */
    LocResult parseLoc()
    {
        LocResult r;
        expect('{');
        if (tryConsume('}'))
            return r;
        do {
            std::string key = parseString();
            expect(':');
            if (key == "offset") {
                r.offset = parseNumber();
            } else if (key == "tokLen") {
                r.tokLen = parseNumber();
            } else if (key == "file") {
                curFile_ = parseString();
            } else if (key == "line") {
                curLine_ = static_cast<int>(parseNumber());
            } else if (key == "spellingLoc"
                       || key == "expansionLoc") {
                LocResult nested = parseLoc();
                if (nested.offset >= 0)
                    r = nested;
            } else if (key == "includedFrom") {
                skipValue(false);
            } else {
                skipValue(false);
            }
        } while (tryConsume(','));
        expect('}');
        return r;
    }

    /** Parse {"begin": loc, "end": loc} into @p node. */
    void parseRangeInto(JNode &node)
    {
        expect('{');
        if (tryConsume('}'))
            return;
        do {
            std::string key = parseString();
            expect(':');
            if (key == "begin") {
                LocResult b = parseLoc();
                node.beginOff = b.offset;
                if (node.file.empty())
                    node.file = curFile_;
                if (node.line == 0)
                    node.line = curLine_;
            } else if (key == "end") {
                LocResult e = parseLoc();
                if (e.offset >= 0)
                    node.endOff = e.offset + e.tokLen;
            } else {
                skipValue(true);
            }
        } while (tryConsume(','));
        expect('}');
    }

    // -- DOM mode (inside kept function bodies) -------------------------

    JNode parseDom()
    {
        JNode node;
        expect('{');
        if (tryConsume('}'))
            return node;
        std::string refName;
        do {
            std::string key = parseString();
            expect(':');
            if (key == "kind" && peek() == '"') {
                node.kind = parseString();
            } else if (key == "name" && peek() == '"') {
                node.name = parseString();
            } else if (key == "value" && peek() == '"') {
                node.value = parseString();
            } else if (key == "type" && peek() == '{') {
                ++pos_;
                if (!tryConsume('}')) {
                    do {
                        std::string tk = parseString();
                        expect(':');
                        if (tk == "qualType" && peek() == '"')
                            node.qualType = parseString();
                        else
                            skipValue(false);
                    } while (tryConsume(','));
                    expect('}');
                }
            } else if (key == "loc" && peek() == '{') {
                parseLoc();
                node.file = curFile_;
                node.line = curLine_;
            } else if (key == "range" && peek() == '{') {
                parseRangeInto(node);
            } else if (key == "hasElse") {
                ws();
                node.hasElse = s_[pos_] == 't';
                parseLiteralWord();
            } else if (key == "referencedDecl" && peek() == '{') {
                ++pos_;
                if (!tryConsume('}')) {
                    do {
                        std::string rk = parseString();
                        expect(':');
                        if (rk == "name" && peek() == '"')
                            refName = parseString();
                        else
                            skipValue(false);
                    } while (tryConsume(','));
                    expect('}');
                }
            } else if (key == "inner" && peek() == '[') {
                ++pos_;
                if (!tryConsume(']')) {
                    do {
                        node.children.push_back(parseDom());
                    } while (tryConsume(','));
                    expect(']');
                }
            } else {
                skipValue(true);
            }
        } while (tryConsume(','));
        expect('}');
        if (node.name.empty())
            node.name = refName;
        return node;
    }

    // -- declaration scan -----------------------------------------------

    bool fileKept(const std::string &file) const
    {
        if (file.empty() || file == "<built-in>"
            || file == "<command line>")
            return false;
        if (keep_.empty())
            return file.find("/usr/") == std::string::npos;
        for (const std::string &p : keep_) {
            if (file.rfind(p, 0) == 0
                || file.find("/" + p) != std::string::npos)
                return true;
        }
        return false;
    }

    void scanDecl()
    {
        expect('{');
        if (tryConsume('}'))
            return;
        std::string kind;
        std::string name;
        std::string declFile;
        int declLine = 0;
        bool isImplicit = false;
        do {
            std::string key = parseString();
            expect(':');
            if (key == "kind" && peek() == '"') {
                kind = parseString();
            } else if (key == "name" && peek() == '"') {
                name = parseString();
            } else if (key == "isImplicit") {
                ws();
                isImplicit = s_[pos_] == 't';
                parseLiteralWord();
            } else if (key == "loc" && peek() == '{') {
                parseLoc();
                declFile = curFile_;
                declLine = curLine_;
            } else if (key == "inner" && peek() == '[') {
                ++pos_;
                if (tryConsume(']'))
                    continue;
                if (isContainerKind(kind)) {
                    bool isRecord = kind == "CXXRecordDecl";
                    if (isRecord)
                        recordStack_.push_back(name);
                    do {
                        scanDecl();
                    } while (tryConsume(','));
                    if (isRecord)
                        recordStack_.pop_back();
                    expect(']');
                } else if (isFunctionKind(kind) && !isImplicit
                           && fileKept(declFile)) {
                    std::vector<JNode> children;
                    do {
                        children.push_back(parseDom());
                    } while (tryConsume(','));
                    expect(']');
                    emitFunction(kind, name, declFile, declLine,
                                 children);
                } else {
                    do {
                        skipValue(true);
                    } while (tryConsume(','));
                    expect(']');
                }
            } else {
                skipValue(true);
            }
        } while (tryConsume(','));
        expect('}');
    }

    void emitFunction(const std::string &kind, const std::string &name,
                      const std::string &file, int line,
                      const std::vector<JNode> &children);

    const std::string &s_;
    std::size_t pos_ = 0;
    std::vector<std::string> keep_;
    std::string curFile_;
    int curLine_ = 0;
    std::vector<std::string> recordStack_;
    std::map<std::string, FileIR> *files_ = nullptr;
    SourceCache sources_;
    std::set<std::string> seenFunctions_; //!< file:line dedup across TUs
};

// --- AST -> IR translation ---------------------------------------------------

class Translator
{
  public:
    explicit Translator(SourceCache &sources) : sources_(sources) {}

    std::vector<std::string> sites;

    void translate(const JNode &n, std::vector<Stmt> &out)
    {
        if (n.kind.empty())
            return; // {} placeholder (e.g. absent for-init)

        if (n.kind == "CompoundStmt") {
            Stmt seq;
            seq.kind = Stmt::Kind::Seq;
            seq.line = n.line;
            std::size_t depth = siteStack_.size();
            for (const JNode &c : n.children)
                translate(c, seq.children);
            siteStack_.resize(depth);
            out.push_back(std::move(seq));
            return;
        }
        if (n.kind == "IfStmt") {
            std::vector<const JNode *> kids = realChildren(n);
            std::size_t branches =
                n.hasElse ? 2 : (kids.empty() ? 0 : 1);
            for (std::size_t i = 0; i + branches < kids.size(); ++i)
                translate(*kids[i], out); // condition / init: hoisted
            Stmt ifs;
            ifs.kind = Stmt::Kind::If;
            ifs.line = n.line;
            ifs.children.resize(2);
            ifs.children[0].kind = Stmt::Kind::Seq;
            ifs.children[1].kind = Stmt::Kind::Seq;
            if (kids.size() >= branches && branches >= 1)
                translate(*kids[kids.size() - branches],
                          ifs.children[0].children);
            if (branches == 2)
                translate(*kids.back(), ifs.children[1].children);
            out.push_back(std::move(ifs));
            return;
        }
        if (n.kind == "ConditionalOperator"
            || n.kind == "BinaryConditionalOperator") {
            std::vector<const JNode *> kids = realChildren(n);
            if (kids.size() >= 3) {
                translate(*kids[0], out);
                Stmt ifs;
                ifs.kind = Stmt::Kind::If;
                ifs.line = n.line;
                ifs.children.resize(2);
                ifs.children[0].kind = Stmt::Kind::Seq;
                ifs.children[1].kind = Stmt::Kind::Seq;
                translate(*kids[kids.size() - 2],
                          ifs.children[0].children);
                translate(*kids.back(), ifs.children[1].children);
                out.push_back(std::move(ifs));
            } else {
                for (const JNode *k : kids)
                    translate(*k, out);
            }
            return;
        }
        if (n.kind == "ForStmt" || n.kind == "WhileStmt"
            || n.kind == "CXXForRangeStmt") {
            std::vector<const JNode *> kids = realChildren(n);
            for (std::size_t i = 0; i + 1 < kids.size(); ++i)
                translate(*kids[i], out); // init/cond/inc: hoisted
            Stmt loop;
            loop.kind = Stmt::Kind::Loop;
            loop.line = n.line;
            loop.children.resize(1);
            loop.children[0].kind = Stmt::Kind::Seq;
            if (!kids.empty())
                translate(*kids.back(), loop.children[0].children);
            out.push_back(std::move(loop));
            return;
        }
        if (n.kind == "DoStmt") {
            std::vector<const JNode *> kids = realChildren(n);
            Stmt loop;
            loop.kind = Stmt::Kind::Loop;
            loop.postTest = true;
            loop.line = n.line;
            loop.children.resize(1);
            loop.children[0].kind = Stmt::Kind::Seq;
            for (const JNode *k : kids) // body first, then condition
                translate(*k, loop.children[0].children);
            out.push_back(std::move(loop));
            return;
        }
        if (n.kind == "SwitchStmt") {
            translateSwitch(n, out);
            return;
        }
        if (n.kind == "ReturnStmt") {
            for (const JNode &c : n.children)
                translate(c, out);
            Stmt ret;
            ret.kind = Stmt::Kind::Return;
            ret.line = n.line;
            out.push_back(std::move(ret));
            return;
        }
        if (n.kind == "BreakStmt" || n.kind == "ContinueStmt") {
            Stmt s;
            s.kind = n.kind == "BreakStmt" ? Stmt::Kind::Break
                                           : Stmt::Kind::Continue;
            s.line = n.line;
            out.push_back(std::move(s));
            return;
        }
        if (n.kind == "DeclStmt") {
            for (const JNode &c : n.children)
                translateVarDecl(c, out);
            return;
        }
        if (n.kind == "LambdaExpr") {
            // Body is the last child; the closure CXXRecordDecl also
            // contains it — translate only the body to avoid doubling.
            if (!n.children.empty())
                translate(n.children.back(), out);
            return;
        }
        if (n.kind == "CXXMemberCallExpr") {
            translateMemberCall(n, out);
            return;
        }
        // Everything else: transparent (casts, operators, cleanups).
        for (const JNode &c : n.children)
            translate(c, out);
    }

  private:
    static std::vector<const JNode *> realChildren(const JNode &n)
    {
        std::vector<const JNode *> out;
        for (const JNode &c : n.children)
            if (!c.kind.empty())
                out.push_back(&c);
        return out;
    }

    static const JNode *findNamedRef(const JNode &n)
    {
        for (const JNode &c : n.children) {
            if ((c.kind == "MemberExpr" || c.kind == "DeclRefExpr")
                && !c.name.empty())
                return &c;
            if (const JNode *hit = findNamedRef(c))
                return hit;
        }
        return nullptr;
    }

    static const JNode *findStringLiteral(const JNode &n)
    {
        if (n.kind == "StringLiteral")
            return &n;
        for (const JNode &c : n.children)
            if (const JNode *hit = findStringLiteral(c))
                return hit;
        return nullptr;
    }

    std::string slice(const JNode &n)
    {
        if (n.beginOff < 0 || n.endOff <= n.beginOff
            || n.file.empty())
            return {};
        const std::string *text = sources_.get(n.file);
        if (text == nullptr
            || n.endOff > static_cast<long long>(text->size()))
            return {};
        return text->substr(
            static_cast<std::size_t>(n.beginOff),
            static_cast<std::size_t>(n.endOff - n.beginOff));
    }

    /** Fallback expression spelling when the source is unreadable:
     *  concatenated identifier names, stable across paths. */
    static void namesOf(const JNode &n, std::string &out)
    {
        if (!n.name.empty()) {
            if (!out.empty())
                out += '.';
            out += n.name;
        }
        for (const JNode &c : n.children)
            namesOf(c, out);
    }

    std::string exprText(const JNode &n)
    {
        std::string text = normalizeExprText(slice(n));
        if (!text.empty())
            return text;
        std::string fallback;
        namesOf(n, fallback);
        return fallback.empty() ? std::string("<expr>") : fallback;
    }

    void translateSwitch(const JNode &n, std::vector<Stmt> &out)
    {
        std::vector<const JNode *> kids = realChildren(n);
        for (std::size_t i = 0; i + 1 < kids.size(); ++i)
            translate(*kids[i], out); // controlling expression
        Stmt sw;
        sw.kind = Stmt::Kind::Switch;
        sw.line = n.line;
        if (kids.empty()) {
            out.push_back(std::move(sw));
            return;
        }
        const JNode &body = *kids.back();
        Stmt group;
        group.kind = Stmt::Kind::Seq;
        auto flushGroup = [&]() {
            if (!group.children.empty())
                sw.children.push_back(std::move(group));
            group = Stmt{};
            group.kind = Stmt::Kind::Seq;
        };
        if (body.kind == "CompoundStmt") {
            std::size_t depth = siteStack_.size();
            for (const JNode &c : body.children) {
                if (c.kind == "CaseStmt" || c.kind == "DefaultStmt") {
                    flushGroup();
                    if (c.kind == "DefaultStmt")
                        sw.hasDefault = true;
                    translateLabelSub(c, sw, group.children);
                } else {
                    translate(c, group.children);
                }
            }
            siteStack_.resize(depth);
        } else {
            translate(body, group.children);
        }
        flushGroup();
        out.push_back(std::move(sw));
    }

    /** Unwrap a Case/DefaultStmt to its substatement (handling
     *  stacked labels `case A: case B: stmt`). */
    void translateLabelSub(const JNode &label, Stmt &sw,
                           std::vector<Stmt> &group)
    {
        if (label.children.empty())
            return;
        const JNode &sub = label.children.back();
        if (sub.kind == "CaseStmt" || sub.kind == "DefaultStmt") {
            if (sub.kind == "DefaultStmt")
                sw.hasDefault = true;
            translateLabelSub(sub, sw, group);
        } else {
            translate(sub, group);
        }
    }

    void translateVarDecl(const JNode &n, std::vector<Stmt> &out)
    {
        if (n.kind != "VarDecl") {
            translate(n, out);
            return;
        }
        if (n.qualType.find("SiteScope") != std::string::npos) {
            std::string site;
            if (const JNode *lit = findStringLiteral(n)) {
                site = lit->value;
                if (site.size() >= 2 && site.front() == '"'
                    && site.back() == '"')
                    site = site.substr(1, site.size() - 2);
            }
            if (!site.empty()) {
                siteStack_.push_back(site);
                sites.push_back(site);
            }
            return;
        }
        for (const char *guard :
             {"MutexLock", "SharedPageLatchGuard",
              "ExclusivePageLatchGuard"}) {
            if (n.qualType.find(guard) != std::string::npos) {
                out.push_back(Stmt::makeOp(OpKind::LatchAcquire,
                                           n.name, n.line,
                                           currentSite()));
                return;
            }
        }
        // Device calls inside initializers still count.
        for (const JNode &c : n.children)
            translate(c, out);
    }

    void translateMemberCall(const JNode &n, std::vector<Stmt> &out)
    {
        // Nested device calls in receiver/argument subtrees first
        // (arguments evaluate before the call).
        for (const JNode &c : n.children)
            translate(c, out);

        if (n.children.empty())
            return;
        const JNode &callee = n.children.front();
        const JNode *me =
            callee.kind == "MemberExpr" ? &callee : nullptr;
        if (me == nullptr) // wrapped callee: find the MemberExpr
            for (const JNode &c : callee.children)
                if (c.kind == "MemberExpr") {
                    me = &c;
                    break;
                }
        if (me == nullptr)
            return;
        const OpKind *kind = protocolMethodOp(me->name);
        if (kind == nullptr)
            return;
        const JNode *recv = findNamedRef(*me);
        if (recv == nullptr || !isDeviceReceiverName(recv->name))
            return;
        std::string arg;
        std::vector<const JNode *> kids = realChildren(n);
        if (kids.size() >= 2) // [callee, arg0, ...]
            arg = exprText(*kids[1]);
        out.push_back(
            Stmt::makeOp(*kind, arg, n.line, currentSite()));
    }

    std::string currentSite() const
    {
        return siteStack_.empty() ? std::string()
                                  : siteStack_.back();
    }

    SourceCache &sources_;
    std::vector<std::string> siteStack_;
};

bool
irContainsOps(const Stmt &s)
{
    if (s.kind == Stmt::Kind::Op)
        return s.op != OpKind::LatchAcquire;
    return std::any_of(s.children.begin(), s.children.end(),
                       irContainsOps);
}

void
AstReader::emitFunction(const std::string &kind,
                        const std::string &name,
                        const std::string &file, int line,
                        const std::vector<JNode> &children)
{
    const JNode *body = nullptr;
    for (const JNode &c : children)
        if (c.kind == "CompoundStmt") {
            body = &c;
            break;
        }
    if (body == nullptr)
        return; // declaration without a definition

    std::string key = file + ":" + std::to_string(line);
    if (!seenFunctions_.insert(key).second)
        return; // inline function seen via another TU

    Function fn;
    fn.name = name;
    for (auto it = recordStack_.rbegin(); it != recordStack_.rend();
         ++it) {
        if (!it->empty()) {
            fn.name = *it + "::" + fn.name;
            break;
        }
    }
    (void)kind;
    fn.file = file;
    fn.line = line;
    fn.body.kind = Stmt::Kind::Seq;

    Translator translator(sources_);
    translator.translate(*body, fn.body.children);
    fn.siteLiterals = translator.sites;

    FileIR &ir = (*files_)[file];
    ir.file = file;
    ir.functionsScanned++;
    ir.siteLiterals.insert(ir.siteLiterals.end(),
                           translator.sites.begin(),
                           translator.sites.end());
    if (irContainsOps(fn.body) || !fn.siteLiterals.empty())
        ir.functions.push_back(std::move(fn));
}

} // namespace

ClangAstResult
parseClangAstJson(const std::string &json,
                  const std::vector<std::string> &keepPrefixes)
{
    ClangAstResult result;
    std::map<std::string, FileIR> files;
    try {
        AstReader reader(json, keepPrefixes);
        reader.run(files);
    } catch (const ParseError &e) {
        result.error = e.what;
        return result;
    } catch (const std::exception &e) {
        result.error = e.what();
        return result;
    }
    for (auto &[file, ir] : files)
        result.files.push_back(std::move(ir));
    return result;
}

} // namespace fasp::analyze
