/**
 * @file
 * Built-in front end: a tokenizer-driven fuzzy parser for the repo's
 * C++ subset. It does not type-check; it recognizes function
 * definitions structurally (`name(...) quals { ... }`, including ctor
 * init lists and thread-annotation macros after the parameter list)
 * and lowers their bodies into the statement IR, extracting the
 * PmDevice-protocol operations the analysis cares about.
 *
 * Receivers are matched by name (`device`, `device_`, `dev`, `dev_`):
 * the tree's uniform naming makes this exact in practice, and the
 * clang front end cross-checks it where a real compiler is available.
 *
 * Known approximations (shared with DESIGN.md §15):
 *  - loop/if condition expressions are evaluated once, before the
 *    construct (their rare device ops still reach the analysis);
 *  - switch alternatives are analyzed independently (fallthrough
 *    joins, which can only under-approximate dirtiness);
 *  - lambda bodies are inlined at their definition point (a callback
 *    that may run zero times is still analyzed once — conservative
 *    for missing-flush rules).
 */

#include <algorithm>
#include <array>
#include <cstring>

#include "analyze.h"
#include "lex.h"

namespace fasp::analyze {

bool
isDeviceReceiverName(const std::string &name)
{
    return name == "device" || name == "device_" || name == "dev"
           || name == "dev_";
}

const OpKind *
protocolMethodOp(const std::string &name)
{
    static const std::map<std::string, OpKind> kOps = {
        {"write", OpKind::Store},
        {"writeU16", OpKind::Store},
        {"writeU32", OpKind::Store},
        {"writeU64", OpKind::Store},
        {"memset", OpKind::Store},
        {"writeScratch", OpKind::ScratchStore},
        {"markScratch", OpKind::ScratchStore},
        {"clflush", OpKind::Flush},
        {"flushRange", OpKind::Flush},
        {"sfence", OpKind::Fence},
        {"casU64", OpKind::Cas},
        {"txBegin", OpKind::TxBegin},
        {"txCommitPoint", OpKind::TxCommitPoint},
        {"txEnd", OpKind::TxEnd},
    };
    auto it = kOps.find(name);
    return it == kOps.end() ? nullptr : &it->second;
}

bool
isGuardTypeName(const std::string &name)
{
    return name == "MutexLock" || name == "SharedPageLatchGuard"
           || name == "ExclusivePageLatchGuard";
}

namespace {

bool
isWordCharStr(const std::string &s)
{
    return !s.empty()
           && (std::isalnum(static_cast<unsigned char>(s[0])) != 0
               || s[0] == '_');
}

class Parser
{
  public:
    Parser(const std::string &file, const std::vector<Token> &toks)
        : file_(file), toks_(toks)
    {}

    FileIR run()
    {
        scanDecls(toks_.size());
        return std::move(out_);
    }

  private:
    // --- token helpers -------------------------------------------------

    bool eof() const { return pos_ >= toks_.size(); }

    const Token &tok(std::size_t i) const { return toks_[i]; }

    bool is(std::size_t i, const char *s) const
    {
        return i < toks_.size() && toks_[i].text == s;
    }

    /** Index just past the bracket construct opening at @p i (which
     *  must be one of ( [ { ); returns toks_.size() when unbalanced. */
    std::size_t skipBalancedFrom(std::size_t i) const
    {
        int depth = 0;
        for (std::size_t j = i; j < toks_.size(); ++j) {
            const std::string &t = toks_[j].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                if (--depth == 0)
                    return j + 1;
        }
        return toks_.size();
    }

    /** Normalize a token span into the canonical expression text. */
    std::string normalize(std::size_t begin, std::size_t end) const
    {
        std::string outText;
        for (std::size_t i = begin; i < end && i < toks_.size(); ++i) {
            const std::string &t = toks_[i].text;
            if (!outText.empty() && isWordCharStr(t)
                && isWordCharStr(std::string(1, outText.back())))
                outText += ' ';
            outText += t;
        }
        return outText;
    }

    // --- declaration scanning ------------------------------------------

    /** Scan declarations until @p end, finding function definitions
     *  (recursing into namespace/class braces). */
    void scanDecls(std::size_t end)
    {
        while (pos_ < end && !eof()) {
            const Token &t = tok(pos_);
            if (t.is("namespace")) {
                ++pos_;
                while (pos_ < end && tok(pos_).isWord())
                    ++pos_; // name (inline namespaces, ::-joined)
                while (pos_ < end
                       && (is(pos_, ":") || tok(pos_).isWord()))
                    ++pos_;
                if (is(pos_, "{")) {
                    std::size_t close = skipBalancedFrom(pos_);
                    ++pos_;
                    scanDecls(close - 1);
                    pos_ = close;
                } else {
                    skipToSemi(end);
                }
                continue;
            }
            if (t.is("class") || t.is("struct") || t.is("union")
                || t.is("enum")) {
                bool isEnum = t.is("enum");
                ++pos_;
                // Scan to the body '{' or a ';' (fwd decl) at depth 0.
                while (pos_ < end && !is(pos_, "{") && !is(pos_, ";")) {
                    if (is(pos_, "(") || is(pos_, "[")) {
                        pos_ = skipBalancedFrom(pos_);
                        continue;
                    }
                    ++pos_;
                }
                if (is(pos_, "{")) {
                    std::size_t close = skipBalancedFrom(pos_);
                    if (isEnum) {
                        pos_ = close; // enumerators: nothing inside
                    } else {
                        ++pos_;
                        scanDecls(close - 1);
                        pos_ = close;
                    }
                }
                continue;
            }
            if (t.is("(") && tryFunctionAt(pos_, end))
                continue;
            ++pos_;
        }
        pos_ = end;
    }

    void skipToSemi(std::size_t end)
    {
        while (pos_ < end && !is(pos_, ";")) {
            if (is(pos_, "(") || is(pos_, "[") || is(pos_, "{")) {
                pos_ = skipBalancedFrom(pos_);
                continue;
            }
            ++pos_;
        }
        if (pos_ < end)
            ++pos_; // consume ';'
    }

    /**
     * @p lparen indexes a '(' whose preceding token may be a function
     * name. Returns true (with pos_ advanced past the body) when a
     * function definition was recognized and parsed; false leaves
     * pos_ untouched.
     */
    bool tryFunctionAt(std::size_t lparen, std::size_t end)
    {
        if (lparen == 0 || !tok(lparen - 1).isWord())
            return false;
        std::size_t afterParams = skipBalancedFrom(lparen);
        std::size_t i = afterParams;
        // Qualifiers: const/noexcept/override plus attribute-ish macro
        // words, each optionally with a parenthesized argument list
        // (REQUIRES(mu), EXCLUDES(mu), ...). '&'/'&&' ref-qualifiers.
        while (i < end) {
            if (tok(i).isWord()) {
                ++i;
                if (is(i, "("))
                    i = skipBalancedFrom(i);
                continue;
            }
            if (is(i, "&")) {
                ++i;
                continue;
            }
            if (is(i, "-") && is(i + 1, ">")) {
                // Trailing return type: consume to '{', ';' or '='.
                i += 2;
                while (i < end && !is(i, "{") && !is(i, ";")
                       && !is(i, "=")) {
                    if (is(i, "(") || is(i, "["))
                        i = skipBalancedFrom(i);
                    else
                        ++i;
                }
                continue;
            }
            break;
        }
        if (is(i, ":") && !is(i + 1, ":")) {
            // Constructor init list: consume to the body '{'.
            ++i;
            while (i < end && !is(i, "{")) {
                if (is(i, "(") || is(i, "[") || is(i, "<"))
                    i = is(i, "<") ? i + 1 : skipBalancedFrom(i);
                else if (is(i, ";"))
                    return false; // was not an init list after all
                else
                    ++i;
            }
            // Brace-init members (log_{...}) would have been skipped
            // as balanced groups only if reached via '(' paths; guard:
            // the '{' we stopped at could open a member brace-init.
            // The repo uses parenthesized init exclusively, so treat
            // the first depth-0 '{' as the body.
        }
        if (!is(i, "{"))
            return false;

        // Function name: walk back over Word ('::' Word)* and '~'.
        std::size_t n = lparen - 1;
        std::string name = tok(n).text;
        while (n >= 1 && tok(n - 1).is("~")) {
            name = "~" + name;
            --n;
        }
        while (n >= 2 && tok(n - 1).is(":") && tok(n - 2).is(":")) {
            if (n >= 3 && tok(n - 3).isWord()) {
                name = tok(n - 3).text + "::" + name;
                n -= 3;
            } else {
                break;
            }
        }
        // Reject control-flow keywords that reach here via macros.
        static const std::set<std::string> kNotAName = {
            "if",     "for",   "while",  "switch", "return",
            "sizeof", "catch", "static_assert", "alignof", "decltype",
        };
        if (kNotAName.count(tok(lparen - 1).text) != 0)
            return false;

        Function fn;
        fn.name = name;
        fn.file = file_;
        fn.line = tok(lparen).line;
        pos_ = i; // at '{'
        siteStack_.clear();
        fn.body = parseBlock();
        fn.siteLiterals = currentFnSites_;
        currentFnSites_.clear();
        if (containsOps(fn.body) || !fn.siteLiterals.empty())
            out_.functions.push_back(std::move(fn));
        out_.functionsScanned++;
        return true;
    }

    static bool containsOps(const Stmt &s)
    {
        if (s.kind == Stmt::Kind::Op)
            return s.op != OpKind::LatchAcquire;
        return std::any_of(s.children.begin(), s.children.end(),
                           containsOps);
    }

    // --- statement parsing ---------------------------------------------

    Stmt parseBlock()
    {
        // pos_ at '{'
        Stmt seq;
        seq.kind = Stmt::Kind::Seq;
        seq.line = tok(pos_).line;
        std::size_t close = skipBalancedFrom(pos_);
        ++pos_;
        std::size_t siteDepth = siteStack_.size();
        while (pos_ < close - 1 && !eof())
            parseStmt(seq.children, close - 1);
        pos_ = close;
        siteStack_.resize(siteDepth); // SiteScope dies with its block
        return seq;
    }

    /** Parse one statement, appending IR to @p outStmts. @p end bounds
     *  the enclosing block. */
    void parseStmt(std::vector<Stmt> &outStmts, std::size_t end)
    {
        if (pos_ >= end || eof())
            return;
        const Token &t = tok(pos_);

        if (t.is("{")) {
            outStmts.push_back(parseBlock());
            return;
        }
        if (t.is(";")) {
            ++pos_;
            return;
        }
        if (t.is("if")) {
            ++pos_;
            if (is(pos_, "constexpr"))
                ++pos_;
            parseParenOps(outStmts, end);
            Stmt ifs;
            ifs.kind = Stmt::Kind::If;
            ifs.line = t.line;
            ifs.children.resize(2);
            ifs.children[0].kind = Stmt::Kind::Seq;
            ifs.children[1].kind = Stmt::Kind::Seq;
            parseStmt(ifs.children[0].children, end);
            if (is(pos_, "else")) {
                ++pos_;
                parseStmt(ifs.children[1].children, end);
            }
            outStmts.push_back(std::move(ifs));
            return;
        }
        if (t.is("for") || t.is("while")) {
            bool isFor = t.is("for");
            ++pos_;
            // Condition/header expressions run before the loop (and on
            // every iteration; approximated as once — see file note).
            parseParenOps(outStmts, end);
            Stmt loop;
            loop.kind = Stmt::Kind::Loop;
            loop.line = t.line;
            loop.children.resize(1);
            loop.children[0].kind = Stmt::Kind::Seq;
            (void)isFor;
            parseStmt(loop.children[0].children, end);
            outStmts.push_back(std::move(loop));
            return;
        }
        if (t.is("do")) {
            ++pos_;
            Stmt loop;
            loop.kind = Stmt::Kind::Loop;
            loop.postTest = true;
            loop.line = t.line;
            loop.children.resize(1);
            loop.children[0].kind = Stmt::Kind::Seq;
            parseStmt(loop.children[0].children, end);
            if (is(pos_, "while")) {
                ++pos_;
                parseParenOps(loop.children[0].children, end);
            }
            if (is(pos_, ";"))
                ++pos_;
            outStmts.push_back(std::move(loop));
            return;
        }
        if (t.is("switch")) {
            ++pos_;
            parseParenOps(outStmts, end);
            if (!is(pos_, "{")) {
                parseStmt(outStmts, end); // degenerate; keep going
                return;
            }
            outStmts.push_back(parseSwitchBody(t.line));
            return;
        }
        if (t.is("return")) {
            ++pos_;
            std::size_t exprBegin = pos_;
            skipToSemi(end);
            extractOps(exprBegin, pos_, outStmts);
            Stmt ret;
            ret.kind = Stmt::Kind::Return;
            ret.line = t.line;
            outStmts.push_back(std::move(ret));
            return;
        }
        if (t.is("break") || t.is("continue")) {
            Stmt s;
            s.kind = t.is("break") ? Stmt::Kind::Break
                                   : Stmt::Kind::Continue;
            s.line = t.line;
            ++pos_;
            if (is(pos_, ";"))
                ++pos_;
            outStmts.push_back(std::move(s));
            return;
        }
        if (t.is("try")) {
            ++pos_;
            if (is(pos_, "{"))
                outStmts.push_back(parseBlock());
            while (is(pos_, "catch")) {
                ++pos_;
                if (is(pos_, "("))
                    pos_ = skipBalancedFrom(pos_);
                // A catch body may or may not run: model as If.
                Stmt maybe;
                maybe.kind = Stmt::Kind::If;
                maybe.line = t.line;
                maybe.children.resize(2);
                maybe.children[0].kind = Stmt::Kind::Seq;
                maybe.children[1].kind = Stmt::Kind::Seq;
                if (is(pos_, "{"))
                    maybe.children[0].children.push_back(parseBlock());
                outStmts.push_back(std::move(maybe));
            }
            return;
        }
        if (t.is("else")) {
            // Dangling else from a brace-less construct we flattened;
            // parse its statement in place.
            ++pos_;
            parseStmt(outStmts, end);
            return;
        }

        // Declaration or expression statement: scan to ';' at depth 0.
        std::size_t begin = pos_;
        skipToSemi(end);
        recognizeDecl(begin, pos_);
        extractOps(begin, pos_, outStmts);
    }

    Stmt parseSwitchBody(int line)
    {
        Stmt sw;
        sw.kind = Stmt::Kind::Switch;
        sw.line = line;
        std::size_t close = skipBalancedFrom(pos_);
        ++pos_;
        std::size_t siteDepth = siteStack_.size();
        Stmt group;
        group.kind = Stmt::Kind::Seq;
        auto flush_group = [&]() {
            if (!group.children.empty())
                sw.children.push_back(std::move(group));
            group = Stmt{};
            group.kind = Stmt::Kind::Seq;
        };
        while (pos_ < close - 1 && !eof()) {
            if (is(pos_, "case")) {
                flush_group();
                // Skip the label: forward to the single ':' that is
                // not part of a '::'.
                ++pos_;
                while (pos_ < close - 1) {
                    if (is(pos_, ":") && !is(pos_ + 1, ":")) {
                        ++pos_;
                        break;
                    }
                    if (is(pos_, ":") && is(pos_ + 1, ":"))
                        pos_ += 2;
                    else
                        ++pos_;
                }
                continue;
            }
            if (is(pos_, "default")) {
                flush_group();
                sw.hasDefault = true;
                ++pos_;
                if (is(pos_, ":"))
                    ++pos_;
                continue;
            }
            parseStmt(group.children, close - 1);
        }
        flush_group();
        pos_ = close;
        siteStack_.resize(siteDepth);
        return sw;
    }

    /** Parse a parenthesized header, emitting any device ops found in
     *  it (condition/init/increment expressions). */
    void parseParenOps(std::vector<Stmt> &outStmts, std::size_t end)
    {
        if (!is(pos_, "("))
            return;
        std::size_t close = skipBalancedFrom(pos_);
        extractOps(pos_ + 1, close - 1, outStmts);
        pos_ = std::min(close, end);
    }

    /** RAII declarations the transfer functions know: SiteScope tags
     *  (bound to ops for --sites attribution) and latch guards. */
    void recognizeDecl(std::size_t begin, std::size_t end)
    {
        for (std::size_t i = begin; i + 2 < end; ++i) {
            if (!tok(i).isWord())
                continue;
            if (tok(i).text == "SiteScope" && tok(i + 1).isWord()
                && is(i + 2, "(")) {
                std::size_t close = skipBalancedFrom(i + 2);
                std::string site;
                for (std::size_t j = i + 3; j < close - 1; ++j) {
                    if (tok(j).isString()) {
                        const std::string &s = tok(j).text;
                        site = s.size() >= 2
                                   ? s.substr(1, s.size() - 2)
                                   : s;
                        break;
                    }
                }
                if (site.empty() && close >= 2) {
                    // Tag via a named constant: keep the spelling.
                    std::size_t comma = i + 3;
                    while (comma < close - 1 && !is(comma, ","))
                        ++comma;
                    site = normalize(comma + 1, close - 1);
                }
                if (!site.empty()) {
                    siteStack_.push_back(site);
                    currentFnSites_.push_back(site);
                    out_.siteLiterals.push_back(site);
                }
            }
        }
    }

    /** Scan a token span for recognized device-protocol calls and
     *  guard constructions, emitting Op statements in source order. */
    void extractOps(std::size_t begin, std::size_t end,
                    std::vector<Stmt> &outStmts)
    {
        for (std::size_t i = begin; i < end && i < toks_.size(); ++i) {
            if (tok(i).isWord() && isGuardTypeName(tok(i).text)
                && i + 1 < end && tok(i + 1).isWord()
                && is(i + 2, "(")) {
                std::size_t close = skipBalancedFrom(i + 2);
                outStmts.push_back(Stmt::makeOp(
                    OpKind::LatchAcquire,
                    normalize(i + 3, close - 1), tok(i).line,
                    currentSite()));
                continue;
            }
            if (!tok(i).isWord() || !is(i + 1, "("))
                continue;
            const OpKind *kind = protocolMethodOp(tok(i).text);
            if (kind == nullptr)
                continue;
            // Receiver: `recv.` or `recv->` immediately before.
            std::string recv;
            if (i >= 2 && is(i - 1, ".") && tok(i - 2).isWord())
                recv = tok(i - 2).text;
            else if (i >= 3 && is(i - 1, ">") && is(i - 2, "-")
                     && tok(i - 3).isWord())
                recv = tok(i - 3).text;
            if (!isDeviceReceiverName(recv))
                continue;
            std::size_t close = skipBalancedFrom(i + 1);
            std::size_t argEnd = i + 2;
            int depth = 0;
            while (argEnd < close - 1) {
                const std::string &tx = tok(argEnd).text;
                if (tx == "(" || tx == "[" || tx == "{")
                    ++depth;
                else if (tx == ")" || tx == "]" || tx == "}")
                    --depth;
                else if (tx == "," && depth == 0)
                    break;
                ++argEnd;
            }
            outStmts.push_back(Stmt::makeOp(
                *kind, normalize(i + 2, argEnd), tok(i).line,
                currentSite()));
        }
    }

    std::string currentSite() const
    {
        return siteStack_.empty() ? std::string() : siteStack_.back();
    }

    std::string file_;
    const std::vector<Token> &toks_;
    std::size_t pos_ = 0;
    FileIR out_;
    std::vector<std::string> siteStack_;
    std::vector<std::string> currentFnSites_;
};

} // namespace

FileIR
parseSourceInternal(const std::string &file, const std::string &text)
{
    std::vector<LineView> lines = lexLines(text);
    std::vector<Token> toks = tokenize(lines);
    Parser parser(file, toks);
    FileIR ir = parser.run();
    ir.file = file;
    return ir;
}

std::string
normalizeExprText(const std::string &text)
{
    std::vector<Token> toks = tokenize(lexLines(text));
    std::string out;
    for (const Token &t : toks) {
        if (!out.empty() && isWordCharStr(t.text)
            && isWordCharStr(std::string(1, out.back())))
            out += ' ';
        out += t.text;
    }
    return out;
}

} // namespace fasp::analyze
