/**
 * @file
 * Lexical layer shared by the internal front end and the waiver
 * scanner: comment/string-aware line views (same discipline as
 * fasp-lint, so prose and format strings never look like code) and a
 * coarse C++ tokenizer with line numbers.
 */

#ifndef FASP_TOOLS_ANALYZE_LEX_H
#define FASP_TOOLS_ANALYZE_LEX_H

#include <string>
#include <vector>

namespace fasp::analyze {

/** One physical source line split into code and comment parts. */
struct LineView
{
    std::string code;    //!< string/char literal bodies blanked
    std::string comment; //!< comment text only
};

/** Split a translation unit into per-line code/comment views. Handles
 *  line/block comments, string/char literals with escapes, and raw
 *  string literals. String literals keep their quotes and contents in
 *  `code` (the parser needs SiteScope tags); comments are fully
 *  separated out. */
std::vector<LineView> lexLines(const std::string &text);

struct Token
{
    enum class Kind : unsigned char { Word, String, Punct };
    Kind kind = Kind::Punct;
    std::string text;
    int line = 0;

    bool is(const char *s) const { return text == s; }
    bool isWord() const { return kind == Kind::Word; }
    bool isString() const { return kind == Kind::String; }
};

/** Tokenize the code parts of @p lines. Words are identifier/number
 *  runs; strings are single tokens including quotes; every other
 *  non-space character is a single punct token (no multi-char
 *  operators — the parser only needs brackets, separators and words).
 *  Preprocessor lines (first code char '#', plus backslash
 *  continuations) are dropped. */
std::vector<Token> tokenize(const std::vector<LineView> &lines);

} // namespace fasp::analyze

#endif // FASP_TOOLS_ANALYZE_LEX_H
