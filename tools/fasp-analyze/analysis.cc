/**
 * @file
 * CFG lowering and the abstract interpretation (DESIGN.md §15).
 *
 * Each function's statement tree is lowered to an explicit CFG: one
 * node per recognized operation plus synthetic join nodes; loops get
 * back edges and an id so "is this fence inside a loop that also
 * dirties PM" is a membership query, not a regex. `return` routes to
 * the function exit node (so early returns are real paths), `break`/
 * `continue` to their loop, and do-while bodies execute at least once.
 *
 * The dataflow state maps abstract lines (normalized offset
 * expressions) to the runtime checker's per-line machine, ordered by
 * badness:  FENCED(1) < FLUSHED(2) < TAGGED(3) < DIRTY(4), absent =
 * CLEAN. The path-merge join is a pointwise max, so a line is only as
 * durable as its worst incoming path — exactly the property V1/V3
 * need. Transfer functions are monotone (a flush never *lowers* a
 * fenced line, an unmatched flush leaves CLEAN alone), so the worklist
 * iteration converges on the finite lattice.
 */

#include <algorithm>
#include <map>
#include <sstream>

#include "analyze.h"

namespace fasp::analyze {

namespace {

// --- CFG ---------------------------------------------------------------------

constexpr std::uint8_t kClean = 0;
constexpr std::uint8_t kFenced = 1;
constexpr std::uint8_t kFlushed = 2;
constexpr std::uint8_t kTagged = 3;
constexpr std::uint8_t kDirty = 4;

const char *
stateName(std::uint8_t badness)
{
    switch (badness) {
    case kFenced: return "FENCED";
    case kFlushed: return "FLUSHED";
    case kTagged: return "TAGGED";
    case kDirty: return "DIRTY";
    default: return "CLEAN";
    }
}

struct CfgNode
{
    const Stmt *op = nullptr;    //!< null for synthetic join nodes
    std::vector<int> succ;
    std::vector<int> loops;      //!< enclosing loop ids, innermost last
};

struct Cfg
{
    std::vector<CfgNode> nodes;
    int entry = -1;
    int exit = -1;
};

class CfgBuilder
{
  public:
    Cfg build(const Stmt &body)
    {
        cfg_.entry = newNode(nullptr);
        std::vector<int> out = lower(body, {cfg_.entry});
        cfg_.exit = newNode(nullptr);
        for (int p : out)
            edge(p, cfg_.exit);
        for (int p : returnPreds_)
            edge(p, cfg_.exit);
        return std::move(cfg_);
    }

  private:
    /** One enclosing `break`-able construct; `continue` binds to the
     *  innermost entry that is a loop. */
    struct Breakable
    {
        bool isLoop = false;
        int head = -1; //!< loop head (continue target); -1 for switch
        std::vector<int> breaks;
    };

    int newNode(const Stmt *op)
    {
        CfgNode n;
        n.op = op;
        n.loops = loopIds_;
        cfg_.nodes.push_back(std::move(n));
        return static_cast<int>(cfg_.nodes.size()) - 1;
    }

    void edge(int from, int to) { cfg_.nodes[from].succ.push_back(to); }

    std::vector<int> lower(const Stmt &s, std::vector<int> preds)
    {
        switch (s.kind) {
        case Stmt::Kind::Seq:
            for (const Stmt &child : s.children)
                preds = lower(child, std::move(preds));
            return preds;
        case Stmt::Kind::Op: {
            int n = newNode(&s);
            for (int p : preds)
                edge(p, n);
            return {n};
        }
        case Stmt::Kind::If: {
            std::vector<int> out = lower(s.children[0], preds);
            std::vector<int> other = lower(s.children[1], preds);
            out.insert(out.end(), other.begin(), other.end());
            return out;
        }
        case Stmt::Kind::Loop: {
            int head = newNode(nullptr);
            for (int p : preds)
                edge(p, head);
            loopIds_.push_back(nextLoopId_++);
            breakables_.push_back(Breakable{true, head, {}});
            std::vector<int> bodyOut = lower(s.children[0], {head});
            for (int p : bodyOut)
                edge(p, head); // back edge
            Breakable ctx = std::move(breakables_.back());
            breakables_.pop_back();
            loopIds_.pop_back();
            std::vector<int> out = std::move(ctx.breaks);
            if (s.postTest) {
                // do-while: exit only after at least one iteration.
                out.insert(out.end(), bodyOut.begin(), bodyOut.end());
            } else {
                out.push_back(head); // zero-iteration path
            }
            return out;
        }
        case Stmt::Kind::Switch: {
            breakables_.push_back(Breakable{false, -1, {}});
            std::vector<int> out;
            for (const Stmt &alt : s.children) {
                std::vector<int> altOut = lower(alt, preds);
                out.insert(out.end(), altOut.begin(), altOut.end());
            }
            if (!s.hasDefault || s.children.empty())
                out.insert(out.end(), preds.begin(), preds.end());
            out.insert(out.end(), breakables_.back().breaks.begin(),
                       breakables_.back().breaks.end());
            breakables_.pop_back();
            return out;
        }
        case Stmt::Kind::Return:
            returnPreds_.insert(returnPreds_.end(), preds.begin(),
                                preds.end());
            return {};
        case Stmt::Kind::Break:
            if (!breakables_.empty())
                breakables_.back().breaks.insert(
                    breakables_.back().breaks.end(), preds.begin(),
                    preds.end());
            return {};
        case Stmt::Kind::Continue:
            for (auto it = breakables_.rbegin();
                 it != breakables_.rend(); ++it) {
                if (it->isLoop) {
                    for (int p : preds)
                        edge(p, it->head);
                    break;
                }
            }
            return {};
        }
        return preds;
    }

    Cfg cfg_;
    std::vector<Breakable> breakables_;
    std::vector<int> loopIds_;
    std::vector<int> returnPreds_;
    int nextLoopId_ = 0;
};

// --- Abstract state ----------------------------------------------------------

struct LineVal
{
    std::uint8_t badness = kClean;
    std::set<int> storeLines; //!< stores that last dirtied this line

    bool operator==(const LineVal &o) const
    {
        return badness == o.badness && storeLines == o.storeLines;
    }
};

using State = std::map<std::string, LineVal>;

/** Pointwise max-join; returns true when @p into changed. */
bool
joinInto(State &into, const State &from)
{
    bool changed = false;
    for (const auto &[key, val] : from) {
        auto [it, inserted] = into.emplace(key, val);
        if (inserted) {
            changed = true;
            continue;
        }
        LineVal &cur = it->second;
        if (val.badness > cur.badness) {
            cur.badness = val.badness;
            changed = true;
        }
        for (int line : val.storeLines)
            changed |= cur.storeLines.insert(line).second;
    }
    return changed;
}

/**
 * Does a flush of @p flushArg cover the line @p key? Exact match,
 * plus two repo idioms the textual line abstraction would otherwise
 * miss (both checked at a token boundary, so `off` never matches
 * `offset`):
 *  - `flushRange(base, len)` spelled from the same base expression
 *    covers `base + <anything>` stores (frame loops, header strips);
 *  - `clflush(x & ~Mask{...})` is the line containing `x`.
 */
bool
flushCovers(const std::string &flushArg, const std::string &key)
{
    if (key == flushArg)
        return true;
    if (key.size() > flushArg.size()
        && key.compare(0, flushArg.size(), flushArg) == 0
        && key[flushArg.size()] == '+')
        return true;
    if (flushArg.size() > key.size()
        && flushArg.compare(0, key.size(), key) == 0
        && flushArg[key.size()] == '&')
        return true;
    return false;
}

void
transfer(const Stmt &op, State &state)
{
    switch (op.op) {
    case OpKind::Store:
        state[op.arg] = LineVal{kDirty, {op.line}};
        break;
    case OpKind::Cas:
        state[op.arg] = LineVal{kTagged, {op.line}};
        break;
    case OpKind::Flush: {
        for (auto &[key, val] : state)
            if (val.badness >= kFlushed && flushCovers(op.arg, key))
                val.badness = kFlushed;
        // Unmatched flush: leaves CLEAN alone (keeps the transfer
        // monotone; v2s evaluation looks at the incoming state).
        break;
    }
    case OpKind::Fence:
        for (auto &[key, val] : state)
            if (val.badness == kFlushed)
                val.badness = kFenced;
        break;
    case OpKind::TxEnd:
        // txEnd(false) closes an *aborted* write set: leftover dirty
        // lines are forgotten data, exempt at runtime too (V1 is only
        // checked for committed sets). Drop them so abort paths do
        // not accuse the commit path. Unknown args stay conservative.
        if (op.arg.find("false") != std::string::npos) {
            for (auto it = state.begin(); it != state.end();) {
                if (it->second.badness >= kTagged)
                    it = state.erase(it);
                else
                    ++it;
            }
        }
        break;
    case OpKind::ScratchStore:
    case OpKind::TxBegin:
    case OpKind::TxCommitPoint:
    case OpKind::LatchAcquire:
        break;
    }
}

std::string
describeLines(const std::set<int> &lines)
{
    std::ostringstream os;
    bool first = true;
    for (int line : lines) {
        os << (first ? "" : ", ") << line;
        first = false;
    }
    return os.str();
}

} // namespace

void
analyzeFunction(const Function &fn, const AnalysisOptions &opts,
                std::vector<Finding> &out)
{
    Cfg cfg = CfgBuilder().build(fn.body);

    bool participates = false; // calls sfence or txCommitPoint
    bool hasStore = false;
    for (const CfgNode &node : cfg.nodes) {
        if (node.op == nullptr)
            continue;
        if (node.op->op == OpKind::Fence
            || node.op->op == OpKind::TxCommitPoint)
            participates = true;
        if (node.op->op == OpKind::Store || node.op->op == OpKind::Cas)
            hasStore = true;
    }

    // Loop ids containing at least one store/cas (for fence-in-loop).
    std::set<int> dirtyingLoops;
    for (const CfgNode &node : cfg.nodes)
        if (node.op != nullptr
            && (node.op->op == OpKind::Store
                || node.op->op == OpKind::Cas))
            dirtyingLoops.insert(node.loops.begin(), node.loops.end());

    // --- Worklist fixpoint over the in-states --------------------------
    std::vector<State> inState(cfg.nodes.size());
    std::vector<bool> reached(cfg.nodes.size(), false);
    reached[cfg.entry] = true;

    for (int pass = 0; pass < 256; ++pass) {
        bool changed = false;
        for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
            if (!reached[n])
                continue;
            State outState = inState[n];
            if (cfg.nodes[n].op != nullptr)
                transfer(*cfg.nodes[n].op, outState);
            for (int s : cfg.nodes[n].succ) {
                if (!reached[s]) {
                    reached[s] = true;
                    changed = true;
                }
                changed |= joinInto(inState[s], outState);
            }
        }
        if (!changed)
            break;
    }

    // --- Rule evaluation ----------------------------------------------
    auto finding = [&](int line, const char *rule, std::string msg,
                       Severity sev) {
        out.push_back(
            {fn.file, line, rule, std::move(msg), fn.name, sev});
    };

    std::set<std::pair<int, std::string>> reported;

    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
        const CfgNode &node = cfg.nodes[n];
        if (node.op == nullptr || !reached[n])
            continue;
        const Stmt &op = *node.op;

        if (op.op == OpKind::Cas && !opts.pmInternal) {
            finding(op.line, "raw-cas",
                    "PmDevice::casU64 outside src/pm (bare CAS skips "
                    "the dirty-tag protocol; route through "
                    "pm::Pcas::cas/mwcas)",
                    Severity::Error);
        }

        if (op.op == OpKind::Flush && hasStore && inState[n].empty()) {
            finding(op.line, "v2s",
                    "flush of '" + op.arg
                        + "' with no PM store on any path into it "
                          "(static analog of runtime V2: flush "
                          "without a dominating store)",
                    Severity::Error);
        }

        if (op.op == OpKind::TxCommitPoint) {
            for (const auto &[key, val] : inState[n]) {
                if (val.badness <= kFenced)
                    continue;
                finding(
                    op.line, "v3s",
                    "commit point reachable while line '" + key
                        + "' is " + stateName(val.badness)
                        + " on some path (stored at line "
                        + describeLines(val.storeLines)
                        + "; static analog of runtime V3: every "
                          "written line must be flushed AND fenced "
                          "before the commit record is stored)",
                    Severity::Error);
            }
        }

        if (op.op == OpKind::Fence && !node.loops.empty()) {
            bool reDirties = std::any_of(
                node.loops.begin(), node.loops.end(),
                [&](int id) { return dirtyingLoops.count(id) != 0; });
            if (reDirties) {
                finding(op.line, "fence-in-loop",
                        "sfence inside a loop that also dirties PM: "
                        "flush per iteration and fence once after "
                        "the loop (per-iteration ordering costs a "
                        "stall each round trip)",
                        Severity::Warning);
            }
        }
    }

    // v1s: a store that may reach function exit unflushed, in a
    // function that itself participates in the persistence protocol.
    if (participates) {
        for (const auto &[key, val] : inState[cfg.exit]) {
            if (val.badness < kTagged)
                continue;
            for (int storeLine : val.storeLines) {
                if (!reported.emplace(storeLine, key).second)
                    continue;
                finding(
                    storeLine, "v1s",
                    "PM store to '" + key
                        + "' may reach function exit " +
                        (val.badness == kTagged ? "with its CAS tag "
                                                  "neither flushed "
                                                  "nor cleared"
                                                : "unflushed")
                        + " on some path (static analog of runtime "
                          "V1: dirty line at transaction end)",
                    Severity::Error);
            }
        }
    }
}

void
collectStoreSites(const Function &fn, std::vector<StoreSite> &out)
{
    struct Walker
    {
        const Function &fn;
        std::vector<StoreSite> &out;

        void walk(const Stmt &s)
        {
            if (s.kind == Stmt::Kind::Op) {
                const char *kind = nullptr;
                if (s.op == OpKind::Store)
                    kind = "store";
                else if (s.op == OpKind::ScratchStore)
                    kind = "scratch";
                else if (s.op == OpKind::Cas)
                    kind = "cas";
                if (kind != nullptr)
                    out.push_back({fn.file, s.line, fn.name,
                                   s.site.empty() ? "(none)" : s.site,
                                   kind});
            }
            for (const Stmt &child : s.children)
                walk(child);
        }
    };
    Walker{fn, out}.walk(fn.body);
}

} // namespace fasp::analyze
