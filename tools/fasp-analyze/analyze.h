/**
 * @file
 * fasp-analyze: compile-time persist-ordering verifier (DESIGN.md §15).
 *
 * The runtime PersistencyChecker (DESIGN.md §8) proves the paper's
 * ordering discipline — every PM store flushed and fenced before the
 * commit point — but only on the paths the tests happen to execute.
 * This tool checks the same per-line state machine over *all* paths at
 * compile time: it parses the repo's C++ into a small statement IR,
 * lowers each function to a control-flow graph (branches, loops, early
 * returns, switch, lambda bodies), and runs an intraprocedural abstract
 * interpretation whose lattice mirrors the runtime checker's line
 * states:
 *
 *     CLEAN < FENCED < FLUSHED < TAGGED < DIRTY
 *
 * ordered by "badness" (how far the line is from proven durability), so
 * the path-merge join is a pointwise max. Abstract "lines" are the
 * normalized source text of the offset expression handed to the
 * PmDevice call — `plan.off` stored and `plan.off` flushed is a match;
 * distinct expressions are distinct lines (sound for the repo's idiom,
 * where the flush reuses the store's offset expression).
 *
 * Rules (static analogs of the runtime violation classes):
 *
 *   v1s            A PM store with a path to function exit on which the
 *                  stored line is never flushed, in a function that
 *                  itself participates in the persistence protocol
 *                  (calls sfence or txCommitPoint). Functions that
 *                  never flush delegate durability to their caller and
 *                  are exempt (the runtime V1 catches those at txEnd).
 *   v2s            clflush/flushRange reachable with *no* PM store on
 *                  any path into it: a flush that cannot be ordering
 *                  anything this function wrote.
 *   v3s            txCommitPoint() reachable while some written line is
 *                  not FENCED on every incoming path.
 *   fence-in-loop  sfence inside a loop that also dirties PM: fence
 *                  once after the loop (the CFG version of the old
 *                  fasp-lint regex rule — a loop that only fences, or a
 *                  fence after the loop, no longer fires).
 *   raw-cas        PmDevice::casU64 outside src/pm/ (subsumes the old
 *                  fasp-lint raw-pm-cas rule): bare CAS skips the
 *                  dirty-tag protocol, so the checker's V4 carve-out
 *                  for CAS stores is only sound while this rule holds.
 *   stale-waiver   A waiver comment that suppressed nothing.
 *   waiver-needs-reason  Waiver without `-- <reason>` or naming an
 *                  unknown rule.
 *   frontend-error A translation unit the front end could not process
 *                  (never silently skipped).
 *
 * Waiver syntax (shared grammar with fasp-lint, tool-prefixed):
 *
 *     // fasp-analyze: allow(<rule>) -- <reason>        next code line
 *     // fasp-analyze: allow-file(<rule>) -- <reason>   whole file
 *
 * Two interchangeable front ends produce the same IR:
 *
 *   clang     `clang++ -fsyntax-only -Xclang -ast-dump=json` per
 *             compile_commands.json entry, with on-disk AST caching
 *             keyed on a hash of the file contents + flags. Exact
 *             (type-checked receivers via the spelled source).
 *   internal  a built-in tokenizer + fuzzy statement parser over the
 *             repo's C++ subset. No toolchain dependency; this is what
 *             runs where clang is not installed.
 *
 * `--frontend=auto` (the default) picks clang when a working clang++
 * is on PATH and a compilation database is available, else internal.
 */

#ifndef FASP_TOOLS_ANALYZE_H
#define FASP_TOOLS_ANALYZE_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fasp::analyze {

// --- Statement IR ------------------------------------------------------------

/** PmDevice-protocol operations the transfer functions recognize. */
enum class OpKind : std::uint8_t {
    Store,         //!< write/writeU16/U32/U64/memset: arg = offset expr
    ScratchStore,  //!< writeScratch/markScratch (best-effort by contract)
    Flush,         //!< clflush/flushRange: arg = offset expr
    Fence,         //!< sfence
    Cas,           //!< casU64: arg = offset expr
    TxBegin,
    TxCommitPoint,
    TxEnd,
    LatchAcquire,  //!< fasp::MutexLock / PageLatch guard: arg = lock expr
};

const char *opKindName(OpKind kind);

/**
 * One node of the per-function statement tree. The front ends lower
 * C++ into this structured subset; the CFG builder lowers it further
 * into basic edges.
 */
struct Stmt
{
    enum class Kind : std::uint8_t {
        Seq,      //!< children in order
        If,       //!< children[0] = then, children[1] = else (maybe empty)
        Loop,     //!< children[0] = body; postTest for do-while
        Switch,   //!< children = alternative case bodies (join semantics)
        Return,
        Break,
        Continue,
        Op,       //!< a recognized device-protocol operation
    };

    Kind kind = Kind::Seq;
    OpKind op = OpKind::Fence;  //!< valid when kind == Op
    std::string arg;            //!< normalized primary argument
    std::string site;           //!< innermost SiteScope literal, or empty
    int line = 0;
    bool postTest = false;      //!< Loop: body runs at least once
    bool hasDefault = false;    //!< Switch: some alternative always taken
    std::vector<Stmt> children;

    static Stmt makeOp(OpKind k, std::string argument, int ln,
                       std::string siteTag = {})
    {
        Stmt s;
        s.kind = Kind::Op;
        s.op = k;
        s.arg = std::move(argument);
        s.site = std::move(siteTag);
        s.line = ln;
        return s;
    }
};

/** One analyzed function (only functions containing device ops are
 *  retained; the rest contribute nothing to any rule). */
struct Function
{
    std::string name;  //!< qualified where the front end knows it
    std::string file;  //!< path as reported to the user
    int line = 0;
    Stmt body;         //!< Kind::Seq
    std::vector<std::string> siteLiterals; //!< SiteScope strings seen
};

/** Per-file front-end result. */
struct FileIR
{
    std::string file;
    std::vector<Function> functions;
    std::vector<std::string> siteLiterals; //!< all SiteScope strings
    std::size_t functionsScanned = 0;      //!< incl. op-free ones
};

// --- Findings ----------------------------------------------------------------

enum class Severity : std::uint8_t { Warning, Error };

struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
    std::string function;
    Severity severity = Severity::Error;
};

/** Known rule ids (for waiver validation). */
const std::set<std::string> &knownRules();

// --- Waivers -----------------------------------------------------------------

/**
 * Waivers parsed from one file's comments. A line waiver covers its
 * own line and the next line containing code; a file waiver covers the
 * whole file. Unused waivers become stale-waiver findings.
 */
struct WaiverSet
{
    struct Waiver
    {
        std::string rule;
        int line = 0;       //!< line of the waiver comment
        int coversLine = 0; //!< next code line (line waivers)
        bool wholeFile = false;
        bool used = false;
    };

    std::vector<Waiver> waivers;

    /** True (and marks the waiver used) when @p rule at @p line is
     *  suppressed. stale-waiver and waiver-needs-reason are never
     *  suppressible. */
    bool suppresses(const std::string &rule, int line);
};

/** Scan @p text (the raw source of @p file) for fasp-analyze waiver
 *  comments; malformed waivers are reported into @p out. */
WaiverSet scanWaivers(const std::string &text, const std::string &file,
                      std::vector<Finding> &out);

// --- Front ends --------------------------------------------------------------

/** Parse raw C++ @p text of @p file into IR (built-in front end). */
FileIR parseSourceInternal(const std::string &file,
                           const std::string &text);

/**
 * Translate one clang `-ast-dump=json` document into IR. @p mainFile
 * restricts which files' functions are kept (empty = keep everything
 * under @p keepPrefixes). @p sources caches raw file text for slicing
 * argument expressions out of the spelled source.
 */
struct ClangAstResult
{
    std::vector<FileIR> files;
    std::string error; //!< non-empty on schema/parse failure
};

ClangAstResult parseClangAstJson(const std::string &json,
                                 const std::vector<std::string> &keepPrefixes);

// Shared protocol tables (one definition, both front ends).

/** Method name -> OpKind; null when not a PmDevice protocol call. */
const OpKind *protocolMethodOp(const std::string &name);

/** True for the receiver spellings that denote the PM device. */
bool isDeviceReceiverName(const std::string &name);

/** True for the RAII latch-guard type names. */
bool isGuardTypeName(const std::string &name);

/** Canonicalize raw expression text the way the internal front end
 *  normalizes token spans (so `plan .off` == `plan.off`). */
std::string normalizeExprText(const std::string &text);

// --- Analysis ----------------------------------------------------------------

struct AnalysisOptions
{
    bool pmInternal = false; //!< file lives under src/pm/ (raw-cas exempt)
};

/** Run the CFG + lattice analysis over @p fn, appending findings. */
void analyzeFunction(const Function &fn, const AnalysisOptions &opts,
                     std::vector<Finding> &out);

/** A PM-store site for --sites mode. */
struct StoreSite
{
    std::string file;
    int line = 0;
    std::string function;
    std::string site;   //!< innermost SiteScope literal or "(none)"
    std::string kind;   //!< "store" | "scratch" | "cas"
};

void collectStoreSites(const Function &fn, std::vector<StoreSite> &out);

} // namespace fasp::analyze

#endif // FASP_TOOLS_ANALYZE_H
