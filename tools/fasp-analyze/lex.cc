#include "lex.h"

#include <cctype>

namespace fasp::analyze {

namespace {

bool
isWordChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

} // namespace

std::vector<LineView>
lexLines(const std::string &text)
{
    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };

    std::vector<LineView> lines(1);
    State state = State::Code;
    std::string rawDelim; //!< the )delim" terminator of a raw string

    auto code = [&]() -> std::string & { return lines.back().code; };
    auto comment = [&]() -> std::string & {
        return lines.back().comment;
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        char next = i + 1 < text.size() ? text[i + 1] : '\0';

        if (c == '\n') {
            if (state == State::LineComment)
                state = State::Code;
            // Unterminated normal literals cannot span lines; recover.
            if (state == State::String || state == State::Char)
                state = State::Code;
            lines.emplace_back();
            continue;
        }

        switch (state) {
        case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                code() += "  "; // keep column positions roughly stable
                ++i;
            } else if (c == 'R' && next == '"'
                       && (code().empty()
                           || !isWordChar(code().back()))) {
                // R"delim( ... )delim"
                std::size_t open = text.find('(', i + 2);
                if (open == std::string::npos) {
                    code() += c;
                    break;
                }
                rawDelim =
                    ")" + text.substr(i + 2, open - (i + 2)) + "\"";
                state = State::RawString;
                code() += "\"";
                i = open; // skip past the opening parenthesis
            } else if (c == '"') {
                state = State::String;
                code() += '"';
            } else if (c == '\'') {
                state = State::Char;
                code() += '\'';
            } else {
                code() += c;
            }
            break;
        case State::LineComment:
            comment() += c;
            break;
        case State::BlockComment:
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            } else {
                comment() += c;
            }
            break;
        case State::String:
            if (c == '\\' && next != '\0') {
                code() += c;
                code() += next;
                ++i;
            } else {
                code() += c;
                if (c == '"')
                    state = State::Code;
            }
            break;
        case State::Char:
            if (c == '\\' && next != '\0') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                code() += '\'';
            }
            break;
        case State::RawString:
            if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
                i += rawDelim.size() - 1;
                state = State::Code;
                code() += '"';
            }
            break;
        }
    }
    return lines;
}

std::vector<Token>
tokenize(const std::vector<LineView> &lines)
{
    std::vector<Token> out;
    bool continuation = false; // previous line was preprocessor w/ '\'

    for (std::size_t n = 0; n < lines.size(); ++n) {
        const std::string &code = lines[n].code;
        int lineNo = static_cast<int>(n) + 1;

        std::size_t first = code.find_first_not_of(" \t\r");
        bool preproc =
            continuation
            || (first != std::string::npos && code[first] == '#');
        if (preproc) {
            std::size_t last = code.find_last_not_of(" \t\r");
            continuation =
                last != std::string::npos && code[last] == '\\';
            continue;
        }
        continuation = false;

        for (std::size_t i = 0; i < code.size();) {
            char c = code[i];
            if (std::isspace(static_cast<unsigned char>(c)) != 0) {
                ++i;
                continue;
            }
            Token tok;
            tok.line = lineNo;
            if (isWordChar(c)) {
                std::size_t j = i;
                while (j < code.size() && isWordChar(code[j]))
                    ++j;
                tok.kind = Token::Kind::Word;
                tok.text = code.substr(i, j - i);
                i = j;
            } else if (c == '"') {
                std::size_t j = i + 1;
                while (j < code.size()) {
                    if (code[j] == '\\' && j + 1 < code.size())
                        j += 2;
                    else if (code[j] == '"')
                        break;
                    else
                        ++j;
                }
                tok.kind = Token::Kind::String;
                tok.text =
                    code.substr(i, std::min(j + 1, code.size()) - i);
                i = j + 1;
            } else if (c == '\'') {
                std::size_t j = i + 1;
                while (j < code.size() && code[j] != '\'')
                    ++j;
                tok.kind = Token::Kind::String;
                tok.text =
                    code.substr(i, std::min(j + 1, code.size()) - i);
                i = j + 1;
            } else {
                tok.kind = Token::Kind::Punct;
                tok.text = std::string(1, c);
                ++i;
            }
            out.push_back(std::move(tok));
        }
    }
    return out;
}

} // namespace fasp::analyze
