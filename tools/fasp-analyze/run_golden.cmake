# Golden-output test runner for fasp-analyze fixtures.
#
#   cmake -DANALYZER=<bin> -DARGS=<|-separated argv> -DEXPECTED=<file>
#         -DEXPECT_EXIT=<code> -DWORKDIR=<dir> -P run_golden.cmake
#
# Runs the analyzer from WORKDIR (the repo root, so reported paths are
# stable relative paths) and requires stdout to match the golden file
# byte-for-byte plus the exact expected exit code. Exact matching is
# deliberate: a rule firing at the wrong line, under the wrong label,
# or with a second spurious finding must fail the test.

string(REPLACE "|" ";" _args "${ARGS}")

execute_process(
    COMMAND ${ANALYZER} ${_args}
    WORKING_DIRECTORY ${WORKDIR}
    OUTPUT_VARIABLE _actual
    ERROR_VARIABLE _stderr
    RESULT_VARIABLE _rc)

file(READ ${EXPECTED} _want)
string(REPLACE "\r\n" "\n" _actual "${_actual}")
string(REPLACE "\r\n" "\n" _want "${_want}")

if(NOT _actual STREQUAL _want)
    message(FATAL_ERROR
        "fasp-analyze golden mismatch for ${EXPECTED}\n"
        "---- got ----\n${_actual}"
        "---- want ----\n${_want}"
        "---- stderr ----\n${_stderr}")
endif()

if(NOT _rc STREQUAL "${EXPECT_EXIT}")
    message(FATAL_ERROR
        "fasp-analyze exit code ${_rc}, want ${EXPECT_EXIT} "
        "(stderr: ${_stderr})")
endif()
