/**
 * @file
 * fasp-analyze CLI (see analyze.h for the rule catalogue).
 *
 *   fasp-analyze [options] [path...]        default path: src
 *
 *   --frontend=auto|internal|clang  front-end selection (default auto:
 *                                   clang when clang++ and a compdb
 *                                   exist, else the built-in parser)
 *   --compdb=FILE     compile_commands.json (default: probe
 *                     build/compile_commands.json, compile_commands.json)
 *   --clang=BIN       clang++ binary to drive (default clang++)
 *   --cache-dir=DIR   cache clang AST dumps keyed on source+flags hash
 *   --clang-json=FILE translate one pre-dumped AST JSON (fixture mode)
 *   --json[=FILE]     machine-readable report (stdout when no FILE)
 *   --werror          warnings fail the run
 *   --sites           dump static PM-store sites as JSON and exit
 *   --diff-metrics=F  check runtime pm_sites (from --metrics JSON)
 *                     against the static SiteScope tags
 *   --list-rules      print rule ids and exit
 *
 * Exit: 0 clean, 1 findings, 2 usage/environment error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "../common/mini_json.h"
#include "analyze.h"

namespace fs = std::filesystem;
using namespace fasp::analyze;

namespace {

struct Options
{
    std::vector<std::string> paths;
    std::string frontend = "auto";
    std::string compdb;
    std::string clangBin = "clang++";
    std::string cacheDir;
    std::string clangJson;
    std::string jsonOut; //!< "-" = stdout
    bool emitJson = false;
    bool werror = false;
    bool sites = false;
    std::string diffMetrics;
};

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

std::uint64_t
fnv1a64(const std::string &data, std::uint64_t seed = 14695981039346656037ULL)
{
    std::uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Report paths relative to the working directory when possible. */
std::string
reportPath(const std::string &path)
{
    static const std::string cwd = fs::current_path().string() + "/";
    std::string p = path;
    if (p.rfind("./", 0) == 0)
        p = p.substr(2);
    if (p.rfind(cwd, 0) == 0)
        p = p.substr(cwd.size());
    return p;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".h" || ext == ".cpp"
           || ext == ".hpp";
}

std::vector<std::string>
collectFiles(const std::vector<std::string> &paths, std::string &err)
{
    std::vector<std::string> files;
    for (const std::string &p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(p, ec))
                if (entry.is_regular_file()
                    && isSourceFile(entry.path()))
                    files.push_back(entry.path().string());
        } else if (fs::is_regular_file(p, ec)) {
            files.push_back(p);
        } else {
            err = "no such file or directory: " + p;
            return {};
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

bool
usageError(const std::string &msg)
{
    std::cerr << "fasp-analyze: " << msg
              << " (--help for usage)\n";
    return false;
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    auto valueOf = [](const std::string &arg) {
        return arg.substr(arg.find('=') + 1);
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: fasp-analyze [options] [path...]\n"
                   "Compile-time persist-ordering verifier; see the\n"
                   "header comment in tools/fasp-analyze/analyze.h\n"
                   "and DESIGN.md section 15 for the rule catalogue.\n";
            std::exit(0);
        } else if (arg == "--list-rules") {
            for (const std::string &r : knownRules())
                std::cout << r << "\n";
            std::exit(0);
        } else if (arg.rfind("--frontend=", 0) == 0) {
            opts.frontend = valueOf(arg);
            if (opts.frontend != "auto" && opts.frontend != "internal"
                && opts.frontend != "clang")
                return usageError("bad --frontend value");
        } else if (arg.rfind("--compdb=", 0) == 0) {
            opts.compdb = valueOf(arg);
        } else if (arg.rfind("--clang=", 0) == 0) {
            opts.clangBin = valueOf(arg);
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            opts.cacheDir = valueOf(arg);
        } else if (arg.rfind("--clang-json=", 0) == 0) {
            opts.clangJson = valueOf(arg);
        } else if (arg == "--json") {
            opts.emitJson = true;
            opts.jsonOut = "-";
        } else if (arg.rfind("--json=", 0) == 0) {
            opts.emitJson = true;
            opts.jsonOut = valueOf(arg);
        } else if (arg == "--werror") {
            opts.werror = true;
        } else if (arg == "--sites") {
            opts.sites = true;
        } else if (arg.rfind("--diff-metrics=", 0) == 0) {
            opts.diffMetrics = valueOf(arg);
            opts.sites = true;
        } else if (arg.rfind("--", 0) == 0) {
            return usageError("unknown option " + arg);
        } else {
            opts.paths.push_back(arg);
        }
    }
    if (opts.paths.empty())
        opts.paths.push_back("src");
    return true;
}

// --- clang driver ------------------------------------------------------------

bool
clangAvailable(const std::string &bin)
{
    std::string cmd = bin + " --version >/dev/null 2>&1";
    return std::system(cmd.c_str()) == 0;
}

std::string
findCompdb(const Options &opts)
{
    if (!opts.compdb.empty())
        return opts.compdb;
    for (const char *probe :
         {"build/compile_commands.json", "compile_commands.json"})
        if (fs::exists(probe))
            return probe;
    return {};
}

struct CompdbEntry
{
    std::string directory;
    std::string file;
    std::vector<std::string> args;
};

bool
loadCompdb(const std::string &path, std::vector<CompdbEntry> &out,
           std::string &err)
{
    std::string text;
    if (!readFile(path, text)) {
        err = "cannot read " + path;
        return false;
    }
    fasp::minijson::JsonParser parser(text);
    auto root = parser.parse();
    if (!root || root->kind != fasp::minijson::JsonValue::Array) {
        err = path + ": " + parser.error();
        return false;
    }
    for (const auto &entry : root->items) {
        CompdbEntry e;
        if (const auto *d = entry.find("directory"))
            e.directory = d->str;
        if (const auto *f = entry.find("file"))
            e.file = f->str;
        if (const auto *a = entry.find("arguments")) {
            for (const auto &tok : a->items)
                e.args.push_back(tok.str);
        } else if (const auto *c = entry.find("command")) {
            std::istringstream is(c->str);
            std::string tok;
            while (is >> tok)
                e.args.push_back(tok);
        }
        if (!e.file.empty() && !e.args.empty())
            out.push_back(std::move(e));
    }
    return true;
}

/** Rewrite a compile command into a clang AST-dump command. */
std::string
astDumpCommand(const CompdbEntry &entry, const std::string &clangBin)
{
    std::ostringstream cmd;
    cmd << "cd " << entry.directory << " && " << clangBin;
    for (std::size_t i = 1; i < entry.args.size(); ++i) {
        const std::string &a = entry.args[i];
        if (a == "-c")
            continue;
        if (a == "-o") {
            ++i; // skip the object path too
            continue;
        }
        cmd << " '" << a << "'";
    }
    cmd << " -fsyntax-only -Wno-everything -Xclang -ast-dump=json"
        << " 2>/dev/null";
    return cmd.str();
}

bool
runCommandCapture(const std::string &cmd, std::string &out)
{
    FILE *pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return false;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0)
        out.append(buf, n);
    return ::pclose(pipe) == 0;
}

/** AST dump for one TU, through the on-disk cache when enabled. */
bool
astDumpCached(const CompdbEntry &entry, const Options &opts,
              std::string &json)
{
    std::string cmd = astDumpCommand(entry, opts.clangBin);
    std::string cachePath;
    if (!opts.cacheDir.empty()) {
        std::string src;
        readFile(entry.file, src);
        std::uint64_t key = fnv1a64(cmd, fnv1a64(src));
        char hex[32];
        std::snprintf(hex, sizeof hex, "%016llx",
                      static_cast<unsigned long long>(key));
        std::error_code ec;
        fs::create_directories(opts.cacheDir, ec);
        cachePath = opts.cacheDir + "/"
                    + fs::path(entry.file).stem().string() + "-" + hex
                    + ".astjson";
        if (readFile(cachePath, json) && !json.empty())
            return true;
        json.clear();
    }
    if (!runCommandCapture(cmd, json) || json.empty())
        return false;
    if (!cachePath.empty()) {
        std::ofstream out(cachePath, std::ios::binary);
        out << json;
    }
    return true;
}

// --- output ------------------------------------------------------------------

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

void
printFindings(const std::vector<Finding> &findings)
{
    for (const Finding &f : findings) {
        std::cout << reportPath(f.file) << ":" << f.line << ": "
                  << severityName(f.severity) << ": [" << f.rule
                  << "] " << f.message;
        if (!f.function.empty())
            std::cout << " [in " << f.function << "]";
        std::cout << "\n";
    }
}

void
writeJsonReport(const Options &opts, const std::string &frontend,
                std::size_t files, std::size_t functions,
                const std::vector<Finding> &findings,
                std::size_t errors, std::size_t warnings)
{
    std::ostringstream os;
    os << "{\n  \"tool\": \"fasp-analyze\",\n  \"frontend\": \""
       << frontend << "\",\n  \"files\": " << files
       << ",\n  \"functions\": " << functions
       << ",\n  \"errors\": " << errors << ",\n  \"warnings\": "
       << warnings << ",\n  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i != 0 ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(reportPath(f.file)) << "\", \"line\": "
           << f.line << ", \"rule\": \"" << jsonEscape(f.rule)
           << "\", \"severity\": \"" << severityName(f.severity)
           << "\", \"function\": \"" << jsonEscape(f.function)
           << "\", \"message\": \"" << jsonEscape(f.message)
           << "\"}";
    }
    os << "\n  ]\n}\n";
    if (opts.jsonOut == "-") {
        std::cout << os.str();
    } else {
        std::ofstream out(opts.jsonOut, std::ios::binary);
        out << os.str();
    }
}

// --- sites mode --------------------------------------------------------------

int
runSitesMode(const Options &opts, const std::vector<FileIR> &irs)
{
    std::vector<StoreSite> sites;
    std::set<std::string> literals;
    for (const FileIR &ir : irs) {
        for (const std::string &s : ir.siteLiterals)
            literals.insert(s);
        for (const Function &fn : ir.functions) {
            collectStoreSites(fn, sites);
            for (const std::string &s : fn.siteLiterals)
                literals.insert(s);
        }
    }
    std::sort(sites.begin(), sites.end(),
              [](const StoreSite &a, const StoreSite &b) {
                  return std::tie(a.file, a.line, a.site)
                         < std::tie(b.file, b.line, b.site);
              });

    if (opts.diffMetrics.empty()) {
        std::cout << "{\n  \"sites\": [";
        for (std::size_t i = 0; i < sites.size(); ++i) {
            const StoreSite &s = sites[i];
            std::cout << (i != 0 ? "," : "") << "\n    {\"file\": \""
                      << jsonEscape(reportPath(s.file))
                      << "\", \"line\": " << s.line
                      << ", \"function\": \""
                      << jsonEscape(s.function) << "\", \"site\": \""
                      << jsonEscape(s.site) << "\", \"kind\": \""
                      << s.kind << "\"}";
        }
        std::cout << "\n  ],\n  \"siteTags\": [";
        std::size_t i = 0;
        for (const std::string &s : literals)
            std::cout << (i++ != 0 ? ", " : "") << "\""
                      << jsonEscape(s) << "\"";
        std::cout << "]\n}\n";
        return 0;
    }

    // --diff-metrics: every SiteScope tag the *runtime* observed must
    // exist statically; a runtime site we cannot find means the static
    // view (and therefore the analysis) missed a PM code path.
    std::string text;
    if (!readFile(opts.diffMetrics, text)) {
        std::cerr << "fasp-analyze: cannot read " << opts.diffMetrics
                  << "\n";
        return 2;
    }
    fasp::minijson::JsonParser parser(text);
    auto root = parser.parse();
    if (!root) {
        std::cerr << "fasp-analyze: " << opts.diffMetrics << ": "
                  << parser.error() << "\n";
        return 2;
    }
    const auto *pmSites = root->find("pm_sites");
    if (pmSites == nullptr) {
        std::cerr << "fasp-analyze: " << opts.diffMetrics
                  << ": no pm_sites key (run the bench with "
                     "--metrics)\n";
        return 2;
    }
    std::set<std::string> runtime;
    for (const auto &[engine, sitesObj] : pmSites->fields)
        for (const auto &[site, count] : sitesObj.fields)
            if (site != "(untagged)" && site != "(overflow)")
                runtime.insert(site);

    std::vector<std::string> missing;
    for (const std::string &site : runtime)
        if (literals.count(site) == 0)
            missing.push_back(site);
    std::vector<std::string> unobserved;
    for (const std::string &site : literals)
        if (runtime.count(site) == 0)
            unobserved.push_back(site);

    std::cout << "fasp-analyze --sites: " << sites.size()
              << " static PM-store sites, " << literals.size()
              << " SiteScope tags; runtime observed " << runtime.size()
              << " tags\n";
    for (const std::string &site : missing)
        std::cout << "error: runtime site \"" << site
                  << "\" has no static SiteScope tag (static view "
                     "missed a PM code path)\n";
    for (const std::string &site : unobserved)
        std::cout << "note: static site \"" << site
                  << "\" not exercised by this run\n";
    return missing.empty() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts))
        return 2;

    std::string err;
    std::vector<std::string> files = collectFiles(opts.paths, err);
    if (!err.empty()) {
        std::cerr << "fasp-analyze: " << err << "\n";
        return 2;
    }

    std::vector<Finding> findings;
    std::vector<FileIR> irs;
    std::string frontendUsed = "internal";

    if (!opts.clangJson.empty()) {
        // Fixture mode: translate one pre-dumped AST document.
        frontendUsed = "clang-json";
        std::string json;
        if (!readFile(opts.clangJson, json)) {
            std::cerr << "fasp-analyze: cannot read " << opts.clangJson
                      << "\n";
            return 2;
        }
        ClangAstResult result = parseClangAstJson(json, {});
        if (!result.error.empty()) {
            findings.push_back({opts.clangJson, 1, "frontend-error",
                                result.error, "", Severity::Error});
        }
        irs = std::move(result.files);
        files.clear(); // waivers come from the IR files below
        for (const FileIR &ir : irs)
            files.push_back(ir.file);
    } else {
        bool wantClang = opts.frontend == "clang";
        if (opts.frontend == "auto")
            wantClang = clangAvailable(opts.clangBin)
                        && !findCompdb(opts).empty();

        std::set<std::string> clangCovered;
        if (wantClang) {
            frontendUsed = "clang";
            std::string compdbPath = findCompdb(opts);
            std::vector<CompdbEntry> compdb;
            if (compdbPath.empty()
                || !loadCompdb(compdbPath, compdb, err)) {
                std::cerr << "fasp-analyze: "
                          << (err.empty() ? "no compile_commands.json "
                                            "found (--compdb=...)"
                                          : err)
                          << "\n";
                return 2;
            }
            // Keep-prefixes: the analyzed roots, absolute.
            std::vector<std::string> keep;
            for (const std::string &p : opts.paths) {
                std::error_code ec;
                fs::path abs = fs::weakly_canonical(p, ec);
                keep.push_back(ec ? p : abs.string());
            }
            std::set<std::string> wanted;
            for (const std::string &f : files) {
                std::error_code ec;
                fs::path abs = fs::weakly_canonical(f, ec);
                wanted.insert(ec ? f : abs.string());
            }
            std::set<std::string> seenFns; //!< file:line across TUs
            for (const CompdbEntry &entry : compdb) {
                std::error_code ec;
                fs::path abs =
                    fs::weakly_canonical(entry.file, ec);
                std::string file = ec ? entry.file : abs.string();
                if (wanted.count(file) == 0)
                    continue;
                std::string json;
                if (!astDumpCached(entry, opts, json)) {
                    findings.push_back(
                        {entry.file, 1, "frontend-error",
                         "clang AST dump failed for this translation "
                         "unit (re-run the compile command by hand "
                         "to see diagnostics)",
                         "", Severity::Error});
                    continue;
                }
                ClangAstResult result =
                    parseClangAstJson(json, keep);
                if (!result.error.empty()) {
                    findings.push_back({entry.file, 1,
                                        "frontend-error", result.error,
                                        "", Severity::Error});
                    continue;
                }
                for (FileIR &ir : result.files) {
                    clangCovered.insert(ir.file);
                    FileIR kept;
                    kept.file = ir.file;
                    kept.siteLiterals = ir.siteLiterals;
                    kept.functionsScanned = ir.functionsScanned;
                    for (Function &fn : ir.functions) {
                        std::string key =
                            fn.file + ":" + std::to_string(fn.line);
                        if (seenFns.insert(key).second)
                            kept.functions.push_back(std::move(fn));
                    }
                    irs.push_back(std::move(kept));
                }
            }
        }

        // Internal front end: everything clang did not cover (all
        // files when clang is off; headers outside every TU, etc).
        for (const std::string &f : files) {
            std::error_code ec;
            fs::path abs = fs::weakly_canonical(f, ec);
            if (clangCovered.count(ec ? f : abs.string()) != 0
                || clangCovered.count(f) != 0)
                continue;
            std::string text;
            if (!readFile(f, text)) {
                findings.push_back({f, 1, "frontend-error",
                                    "cannot read file", "",
                                    Severity::Error});
                continue;
            }
            irs.push_back(parseSourceInternal(f, text));
        }
    }

    if (opts.sites)
        return runSitesMode(opts, irs);

    // --- analysis ------------------------------------------------------
    std::size_t functions = 0;
    for (const FileIR &ir : irs) {
        AnalysisOptions aopts;
        std::string norm = reportPath(ir.file);
        aopts.pmInternal = norm.find("src/pm/") != std::string::npos
                           || norm.rfind("pm/", 0) == 0;
        for (const Function &fn : ir.functions) {
            ++functions;
            analyzeFunction(fn, aopts, findings);
        }
    }

    // --- waivers -------------------------------------------------------
    std::map<std::string, WaiverSet> waivers;
    for (const FileIR &ir : irs) {
        std::string text;
        if (readFile(ir.file, text))
            waivers[ir.file] = scanWaivers(text, ir.file, findings);
    }

    std::vector<Finding> kept;
    for (Finding &f : findings) {
        auto it = waivers.find(f.file);
        if (it != waivers.end()
            && it->second.suppresses(f.rule, f.line))
            continue;
        kept.push_back(std::move(f));
    }
    for (auto &[file, set] : waivers) {
        for (const WaiverSet::Waiver &w : set.waivers) {
            if (w.used)
                continue;
            kept.push_back(
                {file, w.line, "stale-waiver",
                 "waiver for '" + w.rule
                     + "' suppresses nothing; remove it (waivers "
                       "must not outlive the finding they justify)",
                 "", Severity::Error});
        }
    }

    std::sort(kept.begin(), kept.end(),
              [](const Finding &a, const Finding &b) {
                  return std::tie(a.file, a.line, a.rule, a.message)
                         < std::tie(b.file, b.line, b.rule,
                                    b.message);
              });

    std::size_t errors = 0;
    std::size_t warnings = 0;
    for (const Finding &f : kept)
        (f.severity == Severity::Error ? errors : warnings)++;

    printFindings(kept);
    std::cout << "fasp-analyze: " << irs.size() << " files, "
              << functions << " functions with PM ops, " << errors
              << " errors, " << warnings << " warnings (frontend: "
              << frontendUsed << ")\n";
    if (opts.emitJson)
        writeJsonReport(opts, frontendUsed, irs.size(), functions,
                        kept, errors, warnings);

    if (errors > 0 || (opts.werror && warnings > 0))
        return 1;
    return 0;
}
