#include "analyze.h"

#include <regex>

#include "lex.h"

namespace fasp::analyze {

const char *
opKindName(OpKind kind)
{
    switch (kind) {
    case OpKind::Store: return "store";
    case OpKind::ScratchStore: return "scratch";
    case OpKind::Flush: return "flush";
    case OpKind::Fence: return "fence";
    case OpKind::Cas: return "cas";
    case OpKind::TxBegin: return "tx-begin";
    case OpKind::TxCommitPoint: return "tx-commit-point";
    case OpKind::TxEnd: return "tx-end";
    case OpKind::LatchAcquire: return "latch-acquire";
    }
    return "?";
}

const std::set<std::string> &
knownRules()
{
    static const std::set<std::string> kRules = {
        "v1s",         "v2s",          "v3s",
        "fence-in-loop", "raw-cas",    "stale-waiver",
        "waiver-needs-reason",         "frontend-error",
    };
    return kRules;
}

bool
WaiverSet::suppresses(const std::string &rule, int line)
{
    // Meta rules are never waivable: a waiver that waives waiver
    // hygiene (or the front end failing) would defeat the gate.
    if (rule == "stale-waiver" || rule == "waiver-needs-reason"
        || rule == "frontend-error")
        return false;
    bool hit = false;
    for (Waiver &w : waivers) {
        if (w.rule != rule)
            continue;
        if (w.wholeFile || w.line == line || w.coversLine == line) {
            w.used = true;
            hit = true; // mark every matching waiver used, not just one
        }
    }
    return hit;
}

WaiverSet
scanWaivers(const std::string &text, const std::string &file,
            std::vector<Finding> &out)
{
    static const std::regex kWaiver(
        R"(fasp-analyze:\s*allow(-file)?\(([A-Za-z0-9_-]+)\)\s*(?:--\s*(\S[^\n]*))?)");

    WaiverSet set;
    std::vector<LineView> lines = lexLines(text);

    // Pending line waivers waiting for their next code line.
    std::vector<std::size_t> pending;

    for (std::size_t n = 0; n < lines.size(); ++n) {
        int lineNo = static_cast<int>(n) + 1;
        const std::string &comment = lines[n].comment;

        auto begin = std::sregex_iterator(comment.begin(),
                                          comment.end(), kWaiver);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            const std::smatch &m = *it;
            bool wholeFile = m[1].matched;
            std::string rule = m[2].str();
            if (knownRules().count(rule) == 0) {
                out.push_back({file, lineNo, "waiver-needs-reason",
                               "waiver names unknown rule '" + rule
                                   + "'",
                               "", Severity::Error});
                continue;
            }
            if (!m[3].matched || m[3].str().empty()) {
                out.push_back(
                    {file, lineNo, "waiver-needs-reason",
                     "waiver for '" + rule
                         + "' gives no reason (use: fasp-analyze: "
                           "allow"
                         + (wholeFile ? std::string("-file(")
                                      : std::string("("))
                         + rule + ") -- <reason>)",
                     "", Severity::Error});
                continue; // an unjustified waiver does not suppress
            }
            WaiverSet::Waiver w;
            w.rule = rule;
            w.line = lineNo;
            w.wholeFile = wholeFile;
            set.waivers.push_back(w);
            if (!wholeFile)
                pending.push_back(set.waivers.size() - 1);
        }

        // A waiver covers its own line plus the next line with code
        // (same binding rule as fasp-lint). A waiver trailing code on
        // its own line therefore covers that line AND the next one.
        bool hasCode = lines[n].code.find_first_not_of(" \t\r")
                       != std::string::npos;
        if (hasCode) {
            std::vector<std::size_t> still;
            for (std::size_t idx : pending) {
                if (set.waivers[idx].line != lineNo)
                    set.waivers[idx].coversLine = lineNo;
                else
                    still.push_back(idx); // binds to the NEXT code line
            }
            pending.swap(still);
        }
    }
    return set;
}

} // namespace fasp::analyze
