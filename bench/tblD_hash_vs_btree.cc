/**
 * @file
 * Table D (ablation): the paper claims its persistent slotted-page
 * optimization serves "not only B+-trees ... but also other hash-based
 * indexes" (Section 2.2). This bench runs the same single-record
 * insert workload against the B+-tree and the HashIndex for the three
 * paper engines and reports per-transaction cost and in-place-commit
 * rates. Expected: the hash index enjoys the same in-place commit on
 * FAST (a bucket insert is a single-page header update), with cheaper
 * Search (no multi-level descent).
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "btree/btree.h"
#include "btree/hash_index.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/engine.h"
#include "pm/device.h"

using namespace fasp;
using namespace fasp::benchutil;
using pm::Component;

namespace {

struct RunResult
{
    double searchUs;
    double totalUs;
    std::uint64_t inPlace;
};

RunResult
runHashInsertBench(core::EngineKind kind, std::size_t n)
{
    pm::PmConfig pm_cfg;
    pm_cfg.size = std::max<std::size_t>(128u << 20, n * 256);
    pm_cfg.latency = pm::LatencyModel::of(300, 300);
    pm::PmDevice device(pm_cfg);
    core::EngineConfig cfg;
    cfg.kind = kind;
    cfg.format.logLen = 16u << 20;
    auto engine = std::move(*core::Engine::create(device, cfg, true));
    {
        auto tx = engine->begin();
        auto created =
            btree::HashIndex::create(tx->pageIO(), 1, 128);
        if (!created.isOk())
            faspFatal("hash create failed: %s",
                      created.status().toString().c_str());
        if (!tx->commit().isOk())
            faspFatal("hash create commit failed");
    }
    btree::HashIndex index(1);

    pm::PhaseTracker tracker;
    device.setPhaseTracker(&tracker);
    device.invalidateTagCache();
    engine->stats().reset();

    Rng rng(4);
    std::vector<std::uint8_t> value(64, 0x11);
    for (std::size_t i = 0; i < n; ++i) {
        auto tx = engine->begin();
        Status status = index.insert(
            tx->pageIO(), rng.next() | 1,
            std::span<const std::uint8_t>(value));
        if (!status.isOk() &&
            status.code() != StatusCode::AlreadyExists) {
            faspFatal("hash insert failed: %s",
                      status.toString().c_str());
        }
        if (!tx->commit().isOk())
            faspFatal("hash commit failed");
    }
    RunResult out;
    out.searchUs =
        static_cast<double>(tracker.totalNs(Component::Search)) /
        static_cast<double>(n) / 1000.0;
    out.totalUs = static_cast<double>(tracker.grandTotalNs()) /
                  static_cast<double>(n) / 1000.0;
    out.inPlace = engine->stats().inPlaceCommits;
    device.setPhaseTracker(nullptr);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    std::size_t n = args.numTxns;

    Table table({"engine", "index", "search(us)", "total(us)",
                 "in-place commits"});
    for (core::EngineKind kind : paperEngines()) {
        // B+-tree reference numbers via the shared harness.
        BenchConfig config;
        config.kind = kind;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numTxns = n;
        BenchResult btree_result = runInsertBench(config);
        Groups groups = groupComponents(btree_result, kind);
        table.addRow({core::engineKindName(kind), "b+tree",
                      Table::fmt(groups.searchNs / 1000.0),
                      Table::fmt(groups.totalNs() / 1000.0),
                      Table::fmt(
                          btree_result.engineStats.inPlaceCommits)});

        RunResult hash = runHashInsertBench(kind, n);
        table.addRow({core::engineKindName(kind), "hash",
                      Table::fmt(hash.searchUs),
                      Table::fmt(hash.totalUs),
                      Table::fmt(hash.inPlace)});
    }
    std::string title =
        "Table D: slotted-page B+-tree vs slotted-page hash "
        "index, single-record inserts (300/300ns)";
    table.print(title);
    std::printf("\nexpected: both index types enjoy FAST's in-place "
                "commit (the paper's generality claim, §2.2); the "
                "hash index trades range queries for a flatter "
                "search path\n");

    JsonReport report(args.jsonPath, "tblD_hash_vs_btree");
    report.add(title, table);
    report.write();
    args.writeMetrics("tblD_hash_vs_btree");
    return 0;
}
