/**
 * @file
 * Table E (ablation): CLWB vs CLFLUSH. The paper's Figure 3 issues
 * CLWBs — the write-back instruction that persists a line *without*
 * evicting it — while evaluation-era hardware only offered CLFLUSH.
 * This bench quantifies the difference for the PM-resident engines:
 * with CLFLUSH, every committed record/header line is evicted and the
 * next traversal re-pays PM read latency; with CLWB the lines stay
 * cached.
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;
using pm::Component;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    Table table({"engine", "flush-instr", "search(us)", "total(us)",
                 "read-misses/txn"});
    for (core::EngineKind kind : paperEngines()) {
        for (bool clwb : {false, true}) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(600, 600);
            config.numTxns = args.numTxns;
            config.useClwb = clwb;
            BenchResult result = runInsertBench(config);
            Groups groups = groupComponents(result, kind);
            double misses =
                static_cast<double>(result.pmStats.readMisses) /
                static_cast<double>(result.txns);
            table.addRow({core::engineKindName(kind),
                          clwb ? "CLWB" : "CLFLUSH",
                          Table::fmt(groups.searchNs / 1000.0),
                          Table::fmt(groups.totalNs() / 1000.0),
                          Table::fmt(misses, 1)});
        }
    }
    std::string title =
        "Table E: CLWB vs CLFLUSH at 600/600ns (the paper's "
        "Figure 3 assumes CLWB)";
    table.print(title);
    std::printf("\nexpected: CLWB helps the PM-resident engines most "
                "(their working set lives in PM, so eviction-free "
                "write-back keeps the B-tree path cached); NVWAL "
                "reads mostly from DRAM and gains little\n");

    JsonReport report(args.jsonPath, "tblE_clwb_vs_clflush");
    report.add(title, table);
    report.write();
    args.writeMetrics("tblE_clwb_vs_clflush");
    return 0;
}
