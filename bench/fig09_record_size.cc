/**
 * @file
 * Figure 9: (a) average insertion time and (b) cache-line flushes per
 * insertion, as the record size grows (PM latency fixed at 300/300).
 *
 * Expected shape: the FAST/FASH advantage over NVWAL *widens* with
 * record size — NVWAL's WAL frames grow with the data while FAST logs
 * a fixed-size slot header; flush counts likewise grow fastest for
 * NVWAL.
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::size_t sizes[] = {64, 128, 256, 512, 1024, 2048, 4096};

    Table time_table({"record(B)", "engine", "insert-time(us)",
                      "vs-NVWAL"});
    Table flush_table({"record(B)", "engine", "clflush/insert",
                       "PM-bytes-stored/insert"});

    for (std::size_t size : sizes) {
        double nvwal_total = 0;
        for (core::EngineKind kind : paperEngines()) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(300, 300);
            // Cap the workload so the largest records stay in budget.
            config.numTxns =
                std::min<std::size_t>(args.numTxns,
                                      (96u << 20) / (size + 64));
            config.recordSize = size;
            BenchResult result = runInsertBench(config);
            Groups groups = groupComponents(result, kind);
            double total = groups.totalNs();
            if (kind == core::EngineKind::Nvwal)
                nvwal_total = total;

            time_table.addRow(
                {std::to_string(size), core::engineKindName(kind),
                 Table::fmt(total / 1000.0),
                 Table::fmt(nvwal_total / total, 2) + "x"});
            flush_table.addRow(
                {std::to_string(size), core::engineKindName(kind),
                 Table::fmt(result.flushesPerTxn(), 1),
                 Table::fmt(static_cast<double>(
                                result.pmStats.storeBytes) /
                                static_cast<double>(result.txns),
                            0)});
        }
    }
    std::string time_title =
        "Figure 9(a): insertion time vs record size (300/300ns)";
    std::string flush_title =
        "Figure 9(b): cache-line flushes per insertion vs record size";
    time_table.print(time_title);
    flush_table.print(flush_title);
    std::printf("\nexpected: the FAST:NVWAL gap widens with record "
                "size (NVWAL duplicates data into WAL frames; FAST "
                "logs a fixed-size slot header)\n");

    JsonReport report(args.jsonPath, "fig09_record_size");
    report.add(time_title, time_table);
    report.add(flush_title, flush_table);
    report.write();
    args.writeMetrics("fig09_record_size");
    return 0;
}
