/**
 * @file
 * Figure 8: breakdown of Commit time for B-tree insertion as the PM
 * *write* latency is varied (read latency fixed at 300 ns — the paper
 * notes commit time is independent of read latency).
 *
 * Paper series: NVWAL = computation + heap management + log flush +
 * misc (WAL-index construction); FASH/FAST = log flush + checkpointing
 * (+ atomic 64B write for FAST). Expected shape: FAST up to 6x lower
 * commit overhead than NVWAL; FAST's checkpointing ~49% below FASH's;
 * the headline "reduces database logging overhead to 1/6".
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;
using pm::Component;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint64_t write_latencies[] = {300, 600, 900, 1200};

    Table table({"wlat(ns)", "engine", "nvwal-comp(us)",
                 "heap-mgmt(us)", "log-flush(us)", "checkpoint(us)",
                 "atomic64B(us)", "misc(us)", "commit(us)"});

    double nvwal_commit = 0, fast_commit = 0;
    double fash_ckpt = 0, fast_ckpt = 0;
    double fash_logflush_share = 0, fast_logflush_share = 0;

    for (std::uint64_t wlat : write_latencies) {
        for (core::EngineKind kind : paperEngines()) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(300, wlat);
            config.numTxns = args.numTxns;
            BenchResult result = runInsertBench(config);

            double comp = result.perTxnNs(Component::NvwalCompute);
            double heap = result.perTxnNs(Component::HeapMgmt);
            double flush = result.perTxnNs(Component::LogFlush);
            double ckpt =
                kind == core::EngineKind::Nvwal
                    ? 0.0
                    : result.perTxnNs(Component::Checkpoint);
            double atomic =
                result.perTxnNs(Component::Atomic64BWrite);
            double misc = result.perTxnNs(Component::CommitMisc) +
                          result.perTxnNs(Component::WalIndex);
            double total = commitNs(result, kind);
            table.addRow({std::to_string(wlat),
                          core::engineKindName(kind),
                          Table::fmt(comp / 1000.0, 3),
                          Table::fmt(heap / 1000.0, 3),
                          Table::fmt(flush / 1000.0, 3),
                          Table::fmt(ckpt / 1000.0, 3),
                          Table::fmt(atomic / 1000.0, 3),
                          Table::fmt(misc / 1000.0, 3),
                          Table::fmt(total / 1000.0, 3)});

            if (wlat == 1200) {
                if (kind == core::EngineKind::Nvwal)
                    nvwal_commit = total;
                if (kind == core::EngineKind::Fast) {
                    fast_commit = total;
                    fast_ckpt = ckpt;
                    fast_logflush_share = flush / total;
                }
                if (kind == core::EngineKind::Fash) {
                    fash_ckpt = ckpt;
                    fash_logflush_share = flush / total;
                }
            }
        }
    }
    std::string title =
        "Figure 8: Commit-time breakdown vs PM write latency "
        "(read fixed at 300ns)";
    table.print(title);
    std::printf(
        "\nheadline checks at write latency 1200ns:\n"
        "  NVWAL/FAST commit ratio: %.2fx (paper: up to 6x)\n"
        "  FAST vs FASH checkpointing: %.2fus vs %.2fus = %.0f%% "
        "lower (paper: 49%% lower, 0.72us vs 1.42us)\n"
        "  log-flush share of commit: FASH %.1f%%, FAST %.1f%% "
        "(paper: ~27.8%% vs ~14.2%%)\n",
        nvwal_commit / fast_commit, fast_ckpt / 1000.0,
        fash_ckpt / 1000.0,
        100.0 * (1.0 - fast_ckpt / (fash_ckpt > 0 ? fash_ckpt : 1)),
        100.0 * fash_logflush_share, 100.0 * fast_logflush_share);

    JsonReport report(args.jsonPath, "fig08_commit_breakdown");
    report.add(title, table);
    report.write();
    args.writeMetrics("fig08_commit_breakdown");
    return 0;
}
