/**
 * @file
 * Table A (ablation): persistent write amplification per committed
 * single-record insert, across all five engines — quantifying the
 * paper's motivation (Section 1-2): journaling writes every page
 * twice, page-granularity WAL once, NVWAL only the dirty bytes (plus
 * heap/frame overhead), FASH only slot headers, FAST ~one cache line.
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::size_t record = 64;

    Table table({"engine", "PM-bytes/insert", "amplification",
                 "clflush/insert", "fences/insert"});
    for (core::EngineKind kind : allEngines()) {
        BenchConfig config;
        config.kind = kind;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numTxns = args.numTxns;
        config.recordSize = record;
        BenchResult result = runInsertBench(config);

        double bytes = static_cast<double>(result.pmStats.storeBytes) /
                       static_cast<double>(result.txns);
        double fences = static_cast<double>(result.pmStats.fences) /
                        static_cast<double>(result.txns);
        table.addRow({core::engineKindName(kind),
                      Table::fmt(bytes, 0),
                      Table::fmt(bytes / record, 1) + "x",
                      Table::fmt(result.flushesPerTxn(), 1),
                      Table::fmt(fences, 1)});
    }
    std::string title = "Table A: write amplification per 64B insert "
                        "(PM bytes stored / logical bytes)";
    table.print(title);
    std::printf("\nexpected ordering: JOURNAL >> WAL >> NVWAL > FASH "
                "> FAST (paper: journaling doubles I/O; FAST needs "
                "one store+flush for the commit mark)\n");

    JsonReport report(args.jsonPath, "tblA_write_amplification");
    report.add(title, table);
    report.write();
    args.writeMetrics("tblA_write_amplification");
    return 0;
}
