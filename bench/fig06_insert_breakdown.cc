/**
 * @file
 * Figure 6: breakdown of time spent for B-tree insertion in SQLite as
 * the read/write latency of PM is varied.
 *
 * Paper series: NVWAL vs FASH vs FAST, stacked Search / Page Update /
 * Commit, at PM latencies 120/120 ... 1200/1200 ns. Expected shape:
 * FAST and FASH beat NVWAL at every latency (x1.5-2 overall), NVWAL's
 * commit dominates its time, and all schemes grow sub-linearly with
 * latency thanks to CPU-cache effects.
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint64_t latencies[] = {120, 300, 600, 900, 1200};

    Table table({"latency(ns)", "engine", "search(us)",
                 "page-update(us)", "commit(us)", "total(us)"});
    double nvwal_total_last = 0;
    double fast_total_last = 0;

    for (std::uint64_t lat : latencies) {
        for (core::EngineKind kind : paperEngines()) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(lat, lat);
            config.numTxns = args.numTxns;
            BenchResult result = runInsertBench(config);
            Groups groups = groupComponents(result, kind);
            table.addRow({latencyLabel(config.latency),
                          core::engineKindName(kind),
                          Table::fmt(groups.searchNs / 1000.0),
                          Table::fmt(groups.pageUpdateNs / 1000.0),
                          Table::fmt(groups.commitNs / 1000.0),
                          Table::fmt(groups.totalNs() / 1000.0)});
            if (kind == core::EngineKind::Nvwal)
                nvwal_total_last = groups.totalNs();
            if (kind == core::EngineKind::Fast)
                fast_total_last = groups.totalNs();
        }
    }
    std::string title =
        "Figure 6: insertion-time breakdown vs PM latency (avg over " +
        std::to_string(args.numTxns) + " single-record txns)";
    table.print(title);
    std::printf("\nFAST speedup over NVWAL at 1200/1200: %.2fx "
                "(paper: 1.5x-2x across latencies)\n",
                nvwal_total_last / fast_total_last);

    JsonReport report(args.jsonPath, "fig06_insert_breakdown");
    report.add(title, table);
    report.write();
    args.writeMetrics("fig06_insert_breakdown");
    return 0;
}
