/**
 * @file
 * Figure 10: transactions that insert multiple records (the enterprise
 * pattern of paper §3.3, where in-place commit alone cannot provide
 * atomicity and slot-header logging takes over).
 *
 * The figure's text is truncated in the available copy of the paper;
 * this bench reconstructs it from the Section 3.3/5 narrative: per-
 * transaction commit cost and flush counts as records-per-transaction
 * grows. Expected shape: FAST converges to FASH (every multi-record
 * txn takes the logging path), both stay well below NVWAL whose frame
 * bytes grow with the record count, and per-record overhead amortizes
 * for all schemes.
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::size_t batch[] = {1, 2, 4, 8, 16, 32};

    Table table({"recs/txn", "engine", "commit(us)",
                 "commit/rec(us)", "clflush/txn", "in-place-commits"});

    for (std::size_t k : batch) {
        for (core::EngineKind kind : paperEngines()) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(300, 300);
            config.numTxns =
                std::max<std::size_t>(1, args.numTxns / k);
            config.recordsPerTxn = k;
            BenchResult result = runInsertBench(config);
            double commit = commitNs(result, kind);
            table.addRow(
                {std::to_string(k), core::engineKindName(kind),
                 Table::fmt(commit / 1000.0),
                 Table::fmt(commit / 1000.0 /
                            static_cast<double>(k)),
                 Table::fmt(result.flushesPerTxn(), 1),
                 Table::fmt(result.engineStats.inPlaceCommits)});
        }
    }
    std::string title =
        "Figure 10: multi-record transactions (300/300ns)";
    table.print(title);
    std::printf("\nexpected: FAST uses in-place commit only at 1 "
                "rec/txn; beyond that FAST == FASH (slot-header "
                "logging), both below NVWAL\n");

    JsonReport report(args.jsonPath, "fig10_multi_insert");
    report.add(title, table);
    report.write();
    args.writeMetrics("fig10_multi_insert");
    return 0;
}
