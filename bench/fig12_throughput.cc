/**
 * @file
 * Figure 12: SQL-level transaction throughput as PM latency grows.
 *
 * Expected shape: FAST sustains the highest ops/s at every latency and
 * the advantage persists out to 1.2us PM latency (the paper stresses
 * FAST is still 1.5-2x faster than NVWAL even at 1.2us).
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint64_t latencies[] = {120, 300, 600, 900, 1200};

    Table table({"latency(ns)", "engine", "ops/sec", "vs-NVWAL"});
    for (std::uint64_t lat : latencies) {
        double nvwal_tput = 0;
        for (core::EngineKind kind : paperEngines()) {
            SqlBenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(lat, lat);
            config.numOps =
                std::max<std::size_t>(args.numTxns / 2, 500);
            config.mix = {60, 20, 10};
            SqlBenchResult result = runSqlBench(config);
            if (kind == core::EngineKind::Nvwal)
                nvwal_tput = result.opsPerSecond;
            table.addRow(
                {latencyLabel(config.latency),
                 core::engineKindName(kind),
                 Table::fmt(result.opsPerSecond, 0),
                 Table::fmt(result.opsPerSecond /
                                (nvwal_tput > 0 ? nvwal_tput : 1),
                            2) +
                     "x"});
        }
    }
    table.print("Figure 12: SQL throughput vs PM latency "
                "(Mobibench-style mix)");
    return 0;
}
