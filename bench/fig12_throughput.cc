/**
 * @file
 * Figure 12: SQL-level transaction throughput as PM latency grows,
 * plus the multi-client extension.
 *
 * Default mode sweeps PM latency single-threaded through the full SQL
 * path. Expected shape: FAST sustains the highest ops/s at every
 * latency and the advantage persists out to 1.2us PM latency (the
 * paper stresses FAST is still 1.5-2x faster than NVWAL even at
 * 1.2us).
 *
 * With --clients=N the bench instead runs the insert workload with
 * 1..N concurrent client threads per engine (powers of two, e.g.
 * --clients=64 sweeps 1/2/4/8/16/32/64), reporting modelled
 * throughput, latch conflict retries, RTM contention aborts, and PCAS
 * logging fallbacks, then repeats each point with the persistency
 * checker attached and reports its violation count (expected 0).
 * Besides the paper engines a FAST-RTM series runs FAST with the
 * pre-PCAS RTM commit, whose shared line-lock table is the contention
 * bottleneck the PCAS path removes. Expected shape: FAST/FASH
 * throughput scales with clients while the buffered baselines stay
 * flat on their single-writer mutex, and FAST (PCAS) keeps scaling
 * past the client count where FAST-RTM plateaus.
 */

#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench_util/mt_driver.h"
#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "btree/btree.h"
#include "core/engine.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "pm/device.h"

using namespace fasp;
using namespace fasp::benchutil;

namespace {

/**
 * Recovery-time section: crash each engine mid-insert on a CacheSim
 * device, re-open it (running recovery), and report the per-phase
 * breakdown the engine layer records into the RecoveryLedger. One
 * sample = one crash + one recovery; the p50/p95 columns summarise
 * across samples.
 */
void
runRecoverySamples(const BenchArgs &args, JsonReport &report)
{
    obs::RecoveryLedger::global().reset();
    const std::size_t samples = args.smoke ? 3 : 8;
    const std::uint64_t seed_keys = args.smoke ? 40 : 120;
    const std::vector<std::uint8_t> val(64, 0x5a);
    auto as_span = [&] {
        return std::span<const std::uint8_t>(val);
    };

    for (core::EngineKind kind : allEngines()) {
        for (std::size_t s = 0; s < samples; ++s) {
            pm::PmConfig pmcfg;
            pmcfg.size = 6u << 20;
            pmcfg.mode = pm::PmMode::CacheSim;
            pmcfg.crashPolicy = pm::CrashPolicy::DropAll;
            pmcfg.crashSeed = s * 7919 + 13;
            pm::PmDevice device(pmcfg);

            core::EngineConfig cfg;
            cfg.kind = kind;
            cfg.format.logLen = 1u << 20;
            cfg.volatileCachePages = 512;

            auto created =
                core::Engine::create(device, cfg, /*format=*/true);
            if (!created.isOk()) {
                std::fprintf(stderr, "recovery bench: %s\n",
                             created.status().toString().c_str());
                return;
            }
            std::unique_ptr<core::Engine> engine = std::move(*created);
            auto tree_res = engine->createTree(1);
            if (!tree_res.isOk()) {
                std::fprintf(stderr, "recovery bench: %s\n",
                             tree_res.status().toString().c_str());
                return;
            }
            btree::BTree tree = *tree_res;
            for (std::uint64_t key = 1; key <= seed_keys; ++key) {
                if (!engine->insert(tree, key, as_span()).isOk())
                    break;
            }

            // Crash partway into the next batch; vary the point per
            // sample so recovery sees different amounts of log tail.
            pm::PointCrashInjector injector(device.eventCount() + 24 +
                                            s * 31);
            device.setCrashInjector(&injector);
            try {
                for (std::uint64_t key = 10000; key < 12000; ++key) {
                    if (!engine->insert(tree, key, as_span()).isOk())
                        break;
                }
            } catch (const pm::CrashException &) {
            }
            device.setCrashInjector(nullptr);
            engine.reset();
            if (!device.crashed())
                continue; // window overshot: nothing to recover
            device.reviveAfterCrash();

            auto recovered =
                core::Engine::create(device, cfg, /*format=*/false);
            if (!recovered.isOk()) {
                std::fprintf(stderr, "recovery bench: %s\n",
                             recovered.status().toString().c_str());
                return;
            }
        }
    }

    Table phases({"engine", "phase", "samples", "p50(ns)", "p95(ns)",
                  "mean(ns)"});
    Table totals({"engine", "recoveries", "pages-scanned", "replayed",
                  "discarded", "torn"});
    for (const obs::RecoveryLedger::EntrySnapshot &entry :
         obs::RecoveryLedger::global().entries()) {
        totals.addRow({entry.engine, Table::fmt(entry.recoveries),
                       Table::fmt(entry.pagesScanned),
                       Table::fmt(entry.recordsReplayed),
                       Table::fmt(entry.recordsDiscarded),
                       Table::fmt(entry.tornRecords)});
        for (std::size_t p = 0; p < obs::kNumRecoveryPhases; ++p) {
            const obs::HistogramSnapshot &h = entry.phases[p];
            phases.addRow(
                {entry.engine,
                 obs::recoveryPhaseName(
                     static_cast<obs::RecoveryPhase>(p)),
                 Table::fmt(h.count), Table::fmt(h.p50),
                 Table::fmt(h.p95),
                 Table::fmt(h.count > 0 ? static_cast<double>(h.sum) /
                                              static_cast<double>(
                                                  h.count)
                                        : 0.0,
                            0)});
        }
    }

    std::string phase_title =
        "Figure 12 (recovery): post-crash recovery time by phase";
    std::string totals_title =
        "Figure 12 (recovery): recovery work counters";
    phases.print(phase_title);
    totals.print(totals_title);
    report.add(phase_title, phases);
    report.add(totals_title, totals);
}

int
runLatencySweep(const BenchArgs &args)
{
    const std::uint64_t latencies[] = {120, 300, 600, 900, 1200};

    Table table({"latency(ns)", "engine", "ops/sec", "vs-NVWAL"});
    for (std::uint64_t lat : latencies) {
        double nvwal_tput = 0;
        for (core::EngineKind kind : paperEngines()) {
            SqlBenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(lat, lat);
            config.numOps =
                std::max<std::size_t>(args.numTxns / 2, 500);
            config.mix = {60, 20, 10};
            SqlBenchResult result = runSqlBench(config);
            if (kind == core::EngineKind::Nvwal)
                nvwal_tput = result.opsPerSecond;
            table.addRow(
                {latencyLabel(config.latency),
                 core::engineKindName(kind),
                 Table::fmt(result.opsPerSecond, 0),
                 Table::fmt(result.opsPerSecond /
                                (nvwal_tput > 0 ? nvwal_tput : 1),
                            2) +
                     "x"});
        }
    }
    std::string title = "Figure 12: SQL throughput vs PM latency "
                        "(Mobibench-style mix)";
    table.print(title);

    JsonReport report(args.jsonPath, "fig12_throughput");
    report.add(title, table);
    runRecoverySamples(args, report);
    report.write();
    args.writeMetrics("fig12_throughput");
    return 0;
}

int
runMultiClient(const BenchArgs &args)
{
    std::vector<std::size_t> counts;
    for (std::size_t n = 1; n < args.clients; n *= 2)
        counts.push_back(n);
    counts.push_back(args.clients);

    // latch-p95(ns) comes from the span profiler's merged per-slot
    // wait histogram, scoped to the point by resetLatchContention();
    // it reads 0 unless --metrics/--trace enabled the obs layer. The
    // column is intentionally absent from bench_compare's gate map:
    // wait times are host-share sensitive (see bench/snapshot.sh).
    Table perf({"engine", "clients", "txns", "ktxn/s", "speedup",
                "conflict-retries", "rtm-contention",
                "pcas-fallbacks", "latch-p95(ns)"});
    Table valid({"engine", "clients", "txns", "checker-violations"});

    struct Series
    {
        std::string label;
        core::EngineKind kind;
        core::InPlaceCommitVia via;
    };
    std::vector<Series> series;
    for (core::EngineKind kind : paperEngines())
        series.push_back({core::engineKindName(kind), kind,
                          core::InPlaceCommitVia::Pcas});
    // The latched baseline: FAST publishing headers through the
    // emulated RTM, whose shared line-lock table serializes commits.
    series.push_back({"FAST-RTM", core::EngineKind::Fast,
                      core::InPlaceCommitVia::Rtm});

    for (const Series &s : series) {
        double base_tput = 0;
        for (std::size_t clients : counts) {
            MtConfig config;
            config.kind = s.kind;
            config.commitVia = s.via;
            config.threads = clients;
            config.txnsPerThread =
                std::max<std::size_t>(args.numTxns / clients, 50);
            if (obs::enabled())
                obs::SpanProfiler::global().resetLatchContention();
            MtResult result = runMtInsertBench(config);
            std::uint64_t latch_p95 =
                obs::enabled()
                    ? obs::SpanProfiler::global().latchWaitHist().p95
                    : 0;
            if (clients == 1)
                base_tput = result.txnsPerSecond;
            perf.addRow(
                {s.label,
                 Table::fmt(static_cast<std::uint64_t>(clients)),
                 Table::fmt(result.txns),
                 Table::fmt(result.txnsPerSecond / 1000.0, 1),
                 Table::fmt(result.txnsPerSecond /
                                (base_tput > 0 ? base_tput : 1),
                            2) +
                     "x",
                 Table::fmt(result.conflictRetries),
                 Table::fmt(static_cast<std::uint64_t>(
                     result.rtmStats.abortsContention)),
                 Table::fmt(result.engineStats.pcasFallbacks),
                 Table::fmt(latch_p95)});

            // Validation pass: same point, persistency checker on.
            config.attachChecker = true;
            MtResult checked = runMtInsertBench(config);
            valid.addRow(
                {s.label,
                 Table::fmt(static_cast<std::uint64_t>(clients)),
                 Table::fmt(checked.txns),
                 Table::fmt(checked.checkerViolations)});
        }
    }

    // The per-point resets above leave the contention profile holding
    // whatever point ran last (the RTM baseline, which barely touches
    // the latch histograms). Re-run FAST at the full client count so
    // the metrics export's latch_contention section describes the
    // headline configuration instead.
    if (obs::enabled()) {
        obs::SpanProfiler::global().resetLatchContention();
        MtConfig config;
        config.kind = core::EngineKind::Fast;
        config.commitVia = core::InPlaceCommitVia::Pcas;
        config.threads = args.clients;
        config.txnsPerThread =
            std::max<std::size_t>(args.numTxns / args.clients, 50);
        runMtInsertBench(config);
    }

    std::string perf_title =
        "Figure 12 (multi-client): insert throughput vs clients";
    std::string valid_title =
        "Figure 12 (multi-client): persistency-checker validation";
    perf.print(perf_title);
    valid.print(valid_title);

    JsonReport report(args.jsonPath, "fig12_throughput_mt");
    report.add(perf_title, perf);
    report.add(valid_title, valid);
    report.write();
    args.writeMetrics("fig12_throughput_mt");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    if (args.clients > 0)
        return runMultiClient(args);
    return runLatencySweep(args);
}
