/**
 * @file
 * YCSB core workloads A-F over all five engines (multi-client).
 *
 * Each (mix, engine) point preloads a keyspace, then drives the mix's
 * read/update/insert/scan/RMW ratio from concurrent clients through
 * the full transaction path, reporting modelled throughput and per-op
 * latency percentiles (CPU + modelled PM time, as in fig12's
 * multi-client mode). Two extra sections:
 *
 *   - skewed-hot-page: mix A with KeyOrder::Sequential maps the hot
 *     Zipfian ranks onto adjacent low keys, concentrating traffic on a
 *     few leaves; the conflict-retry column shows what that contention
 *     costs the latch-based engines vs the hashed-keyspace default.
 *   - validation: a smoke-sized pass per engine with the persistency
 *     checker attached (expected 0 violations).
 *
 * Expected shape: FAST leads on the write-heavy mixes (A, F) where the
 * in-place commit saves flushes; the read-mostly mixes (B, C, D)
 * compress the gap since reads bypass commit entirely; E is dominated
 * by scan traversal and favors nothing in particular.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/mt_driver.h"
#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "core/engine.h"

using namespace fasp;
using namespace fasp::benchutil;

namespace {

const char kMixes[] = {'A', 'B', 'C', 'D', 'E', 'F'};

MtYcsbConfig
basePoint(const BenchArgs &args, char mix, core::EngineKind kind)
{
    MtYcsbConfig config;
    config.kind = kind;
    config.mix = mix;
    config.threads = args.clients ? args.clients : (args.smoke ? 2 : 4);
    config.opsPerThread =
        std::max<std::size_t>(args.numTxns / config.threads, 50);
    config.preloadPerThread = args.smoke ? 200 : 1000;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    Table perf({"mix", "engine", "clients", "ops", "ops/sec",
                "mean(us)", "p50(us)", "p99(us)", "conflict-retries",
                "scanned"});
    for (char mix : kMixes) {
        for (core::EngineKind kind : allEngines()) {
            MtYcsbConfig config = basePoint(args, mix, kind);
            MtYcsbResult result = runMtYcsbBench(config);
            perf.addRow(
                {std::string(1, mix), core::engineKindName(kind),
                 Table::fmt(static_cast<std::uint64_t>(config.threads)),
                 Table::fmt(result.ops),
                 Table::fmt(result.opsPerSecond, 0),
                 Table::fmt(result.meanOpUs, 1),
                 Table::fmt(result.p50OpUs, 1),
                 Table::fmt(result.p99OpUs, 1),
                 Table::fmt(result.conflictRetries),
                 Table::fmt(result.scannedRecords)});
        }
    }

    // Skewed-hot-page mode: same mix-A traffic, but the Zipfian-hot
    // ranks share adjacent keys (a few hot leaves) instead of being
    // hashed across the keyspace.
    // No ops/sec here on purpose: hot-page throughput is dominated by
    // backoff sleeps and scheduler noise (genuinely nondeterministic),
    // so it would flap the perf gate. The story this table tells is
    // the conflict-retry contrast; latency percentiles give scale.
    Table hot({"engine", "key-order", "ops", "mean(us)", "p99(us)",
               "conflict-retries"});
    for (core::EngineKind kind :
         {core::EngineKind::Fast, core::EngineKind::Fash}) {
        for (workload::KeyOrder order : {workload::KeyOrder::Hashed,
                                         workload::KeyOrder::Sequential}) {
            MtYcsbConfig config = basePoint(args, 'A', kind);
            config.order = order;
            MtYcsbResult result = runMtYcsbBench(config);
            hot.addRow(
                {core::engineKindName(kind),
                 order == workload::KeyOrder::Hashed ? "hashed"
                                                     : "sequential",
                 Table::fmt(result.ops),
                 Table::fmt(result.meanOpUs, 1),
                 Table::fmt(result.p99OpUs, 1),
                 Table::fmt(result.conflictRetries)});
        }
    }

    // Validation pass: persistency checker attached, smoke-sized.
    Table valid({"engine", "mix", "ops", "checker-violations"});
    for (core::EngineKind kind : allEngines()) {
        MtYcsbConfig config = basePoint(args, 'A', kind);
        config.opsPerThread = std::min<std::size_t>(
            config.opsPerThread, 150);
        config.preloadPerThread = 100;
        config.attachChecker = true;
        MtYcsbResult result = runMtYcsbBench(config);
        valid.addRow({core::engineKindName(kind), "A",
                      Table::fmt(result.ops),
                      Table::fmt(result.checkerViolations)});
    }

    std::string perf_title = "YCSB A-F: multi-client throughput/latency";
    std::string hot_title = "YCSB A (skewed-hot-page): hashed vs "
                            "sequential key order";
    std::string valid_title = "YCSB: persistency-checker validation";
    perf.print(perf_title);
    hot.print(hot_title);
    valid.print(valid_title);

    JsonReport report(args.jsonPath, "ycsb");
    report.add(perf_title, perf);
    report.add(hot_title, hot);
    report.add(valid_title, valid);
    report.write();
    args.writeMetrics("ycsb");
    return 0;
}
