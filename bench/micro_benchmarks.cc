/**
 * @file
 * Google-benchmark microbenchmarks of the individual substrates:
 * slotted-page operations, slot-header log cycles, RTM emulation,
 * NVWAL diff computation, and end-to-end single-insert transactions
 * per engine. Complements the figure harnesses with wall-clock
 * regression numbers (no modelled PM latency: DRAM-speed model).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util/runner.h"
#include "btree/btree.h"
#include "common/rng.h"
#include "core/engine.h"
#include "htm/rtm.h"
#include "page/page_io.h"
#include "page/slotted_page.h"
#include "pager/pager.h"
#include "pm/device.h"
#include "wal/nvwal_log.h"
#include "wal/slot_header_log.h"

namespace {

using namespace fasp;

// --- Slotted page -------------------------------------------------------------

void
BM_SlottedPageInsert(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(4096);
    page::BufferPageIO io(buf.data(), buf.size());
    std::vector<std::uint8_t> payload(40, 0x11);
    Rng rng(1);
    page::init(io, page::PageType::Leaf, 0);
    for (auto _ : state) {
        std::uint64_t key = rng.next();
        storeU64(payload.data(), key);
        if (page::insertRecord(
                io, key, std::span<const std::uint8_t>(payload))
                .code() == StatusCode::PageFull) {
            page::init(io, page::PageType::Leaf, 0);
        }
    }
}
BENCHMARK(BM_SlottedPageInsert);

void
BM_SlottedPageLowerBound(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(4096);
    page::BufferPageIO io(buf.data(), buf.size());
    page::init(io, page::PageType::Leaf, 0);
    std::vector<std::uint8_t> payload(24, 0);
    for (std::uint64_t key = 1; key <= 80; ++key) {
        storeU64(payload.data(), key * 7);
        (void)page::insertRecord(
            io, key * 7, std::span<const std::uint8_t>(payload));
    }
    Rng rng(3);
    for (auto _ : state) {
        auto result = page::lowerBound(io, rng.nextBounded(600));
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_SlottedPageLowerBound);

void
BM_SlottedPageDefragment(benchmark::State &state)
{
    std::vector<std::uint8_t> src_buf(4096), dst_buf(4096);
    page::BufferPageIO src(src_buf.data(), src_buf.size());
    page::BufferPageIO dst(dst_buf.data(), dst_buf.size());
    page::init(src, page::PageType::Leaf, 0);
    std::vector<std::uint8_t> payload(40, 0);
    for (std::uint64_t key = 1; key <= 60; ++key) {
        storeU64(payload.data(), key);
        (void)page::insertRecord(
            src, key, std::span<const std::uint8_t>(payload));
    }
    for (auto _ : state) {
        (void)page::defragmentInto(src, dst);
        benchmark::DoNotOptimize(dst_buf.data());
    }
}
BENCHMARK(BM_SlottedPageDefragment);

// --- RTM emulation ------------------------------------------------------------

void
BM_RtmCommit(benchmark::State &state)
{
    pm::PmConfig cfg;
    cfg.size = 1u << 16;
    pm::PmDevice device(cfg);
    htm::Rtm rtm(device, htm::RtmConfig{});
    std::uint8_t header[64] = {};
    for (auto _ : state) {
        rtm.execute([&](htm::RtmRegion &region) {
            region.write(0, header, sizeof(header));
        });
    }
}
BENCHMARK(BM_RtmCommit);

// --- Slot-header log ------------------------------------------------------------

void
BM_SlotHeaderLogCycle(benchmark::State &state)
{
    pm::PmConfig cfg;
    cfg.size = 32u << 20;
    cfg.latency = pm::LatencyModel::dramSpeed();
    pm::PmDevice device(cfg);
    auto sb = *pager::Pager::format(device, {});
    wal::SlotHeaderLog log(device, sb);
    std::vector<std::uint8_t> header(40, 0x22);
    TxId txid = 0;
    for (auto _ : state) {
        log.begin();
        (void)log.appendPageHeader(
            sb.firstDataPid(), std::span<const std::uint8_t>(header));
        (void)log.commit(++txid);
        (void)log.checkpointAndTruncate();
    }
}
BENCHMARK(BM_SlotHeaderLogCycle);

// --- NVWAL diff -----------------------------------------------------------------

void
BM_NvwalDiffCommit(benchmark::State &state)
{
    pm::PmConfig cfg;
    cfg.size = 64u << 20;
    cfg.latency = pm::LatencyModel::dramSpeed();
    pm::PmDevice device(cfg);
    auto sb = *pager::Pager::format(device, {});
    wal::NvwalLog log(device, sb);
    log.format();
    std::vector<std::uint8_t> clean(sb.pageSize, 0);
    std::vector<std::uint8_t> data = clean;
    Rng rng(5);
    TxId txid = 0;
    for (auto _ : state) {
        // Dirty ~64 bytes at a random offset, as one insert would.
        std::size_t off = rng.nextBounded(sb.pageSize - 64);
        rng.fillBytes(data.data() + off, 64);
        wal::NvwalDirtyPage dirty{sb.firstDataPid(), data.data(),
                                  clean.data()};
        (void)log.commitTx(
            ++txid, std::span<const wal::NvwalDirtyPage>(&dirty, 1));
        clean = data;
        if (log.needsCheckpoint())
            (void)log.checkpoint();
    }
}
BENCHMARK(BM_NvwalDiffCommit);

// --- End-to-end single-insert transactions --------------------------------------

void
BM_EngineInsert(benchmark::State &state)
{
    auto kind = static_cast<core::EngineKind>(state.range(0));
    pm::PmConfig cfg;
    cfg.size = 512u << 20;
    cfg.latency = pm::LatencyModel::dramSpeed();
    pm::PmDevice device(cfg);
    core::EngineConfig engine_cfg;
    engine_cfg.kind = kind;
    engine_cfg.format.logLen = 32u << 20;
    auto engine = std::move(*core::Engine::create(device, engine_cfg,
                                                  true));
    auto tree = *engine->createTree(2);
    Rng rng(7);
    std::vector<std::uint8_t> value(64, 0x42);
    for (auto _ : state) {
        Status status = engine->insert(
            tree, rng.next() | 1, std::span<const std::uint8_t>(value));
        if (!status.isOk() &&
            status.code() != StatusCode::AlreadyExists) {
            state.SkipWithError(status.toString().c_str());
            break;
        }
    }
    state.SetLabel(core::engineKindName(kind));
}
BENCHMARK(BM_EngineInsert)
    ->Arg(static_cast<int>(core::EngineKind::Fast))
    ->Arg(static_cast<int>(core::EngineKind::Fash))
    ->Arg(static_cast<int>(core::EngineKind::Nvwal))
    ->Arg(static_cast<int>(core::EngineKind::LegacyWal))
    ->Arg(static_cast<int>(core::EngineKind::Journal));

} // namespace

// Expanded BENCHMARK_MAIN so the harness accepts the repo-wide bench
// flags (--metrics, --trace, --flight-recorder, ...) in either
// `--flag=value` or `--flag value` form: parseAndStrip consumes them
// (enabling the obs layer as needed) before google-benchmark sees
// argv, which would otherwise reject the unknown flags.
int
main(int argc, char **argv)
{
    benchutil::BenchArgs args =
        benchutil::BenchArgs::parseAndStrip(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    args.writeMetrics("micro_benchmarks");
    return 0;
}
