#!/bin/sh
# Regenerate the committed perf snapshots (BENCH_*.json at the repo
# root). These are smoke-budget numbers from whatever machine ran them
# last — useful for spotting gross regressions in review diffs, not for
# paper-grade comparisons. Run from the repo root after a build:
#
#     cmake --build build -j --target fig08_commit_breakdown fig12_throughput
#     sh bench/snapshot.sh [build-dir]
set -eu

build="${1:-build}"
root="$(cd "$(dirname "$0")/.." && pwd)"

"$root/$build/bench/fig08_commit_breakdown" --smoke \
    --json="$root/BENCH_fig08_commit_breakdown.json"
# --clients=16 folds the multi-client scaling table (1..16 clients,
# PCAS vs the latched RTM baseline) into the snapshot so the perf gate
# watches the scaling numbers too, not just single-client throughput.
# The table also carries the span profiler's latch-p95(ns) column; it
# rides through the snapshot but is NOT gated by bench_compare (wait
# times are host-share sensitive — see the gate map in
# tools/bench_compare/bench_compare.cc), and reads 0 here because the
# snapshot runs without --metrics.
"$root/$build/bench/fig12_throughput" --smoke --clients=16 \
    --json="$root/BENCH_fig12_throughput.json"
# YCSB A-F across all five engines (2 clients). --n=6000 rather than
# the bare smoke count: per-point samples of ~150 ops are warmup-noise
# dominated and flap the 15% gate; 3000 ops/client holds it.
"$root/$build/bench/ycsb" --smoke --n=6000 \
    --json="$root/BENCH_ycsb.json"

echo "snapshot written:"
ls -l "$root"/BENCH_*.json
