/**
 * @file
 * Table B (ablation): on-demand copy-on-write defragmentation cost
 * under a fragmentation-heavy workload (paper §4.3 claims
 * defragmentation accounts for <0.02% of B-tree insertion time under
 * the insert-only workload; this bench also stresses it deliberately
 * with an update/delete-heavy mix over variable-size records).
 */

#include <cstdio>

#include "btree/btree.h"
#include "common/logging.h"
#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "core/engine.h"
#include "workload/workload.h"

using namespace fasp;
using namespace fasp::benchutil;
using pm::Component;

namespace {

/** Run an update/delete-heavy mixed workload and report defrag share. */
void
runFragmentationMix(core::EngineKind kind, std::size_t ops,
                    benchutil::Table &table)
{
    pm::PmConfig pm_cfg;
    pm_cfg.size = 256u << 20;
    pm_cfg.latency = pm::LatencyModel::of(300, 300);
    pm::PmDevice device(pm_cfg);

    core::EngineConfig engine_cfg;
    engine_cfg.kind = kind;
    engine_cfg.format.logLen = 16u << 20;
    auto engine = std::move(*core::Engine::create(device, engine_cfg,
                                                  true));
    auto tree = *engine->createTree(2);

    pm::PhaseTracker tracker;
    device.setPhaseTracker(&tracker);

    // Variable-size records + heavy updates/deletes fragment pages.
    workload::MixedWorkload::Mix mix{40, 35, 15};
    workload::MixedWorkload workload(mix, 7);
    workload::ValueGen values = workload::ValueGen::uniform(16, 400, 9);
    std::vector<std::uint8_t> value;

    for (std::size_t i = 0; i < ops; ++i) {
        workload::Op op = workload.next();
        values.next(value);
        auto tx = engine->begin();
        Status status;
        switch (op.type) {
          case workload::OpType::Insert:
            status = tree.insert(tx->pageIO(), op.key,
                                 std::span<const std::uint8_t>(value));
            break;
          case workload::OpType::Update:
            status = tree.update(tx->pageIO(), op.key,
                                 std::span<const std::uint8_t>(value));
            break;
          case workload::OpType::Delete:
            status = tree.erase(tx->pageIO(), op.key);
            break;
          case workload::OpType::Lookup: {
            std::vector<std::uint8_t> out;
            status = tree.get(tx->pageIO(), op.key, out);
            break;
          }
        }
        if (!status.isOk() &&
            status.code() != StatusCode::NotFound &&
            status.code() != StatusCode::AlreadyExists) {
            faspFatal("fragmentation mix op failed: %s",
                      status.toString().c_str());
        }
        status = tx->commit();
        if (!status.isOk())
            faspFatal("commit failed");
    }

    double defrag =
        static_cast<double>(tracker.totalNs(Component::Defrag));
    double total = static_cast<double>(tracker.grandTotalNs());
    table.addRow({core::engineKindName(kind), "frag-heavy mix",
                  Table::fmt(defrag / static_cast<double>(ops) /
                             1000.0, 4),
                  Table::fmt(100.0 * defrag / total, 4) + "%"});
    device.setPhaseTracker(nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    Table table({"engine", "workload", "defrag(us/op)",
                 "defrag share of op time"});

    // (1) The paper's insert-only workload: defrag should be ~absent.
    for (core::EngineKind kind :
         {core::EngineKind::Fast, core::EngineKind::Fash}) {
        BenchConfig config;
        config.kind = kind;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numTxns = args.numTxns;
        BenchResult result = runInsertBench(config);
        Groups groups = groupComponents(result, kind);
        double defrag = result.perTxnNs(Component::Defrag);
        table.addRow({core::engineKindName(kind), "insert-only",
                      Table::fmt(defrag / 1000.0, 4),
                      Table::fmt(100.0 * defrag /
                                     (groups.totalNs() > 0
                                          ? groups.totalNs()
                                          : 1),
                                 4) +
                          "%"});
    }

    // (2) An adversarial fragmentation-heavy mix.
    for (core::EngineKind kind :
         {core::EngineKind::Fast, core::EngineKind::Fash}) {
        runFragmentationMix(kind, args.numTxns / 2, table);
    }

    std::string title =
        "Table B: copy-on-write defragmentation overhead";
    table.print(title);
    std::printf("\npaper claim: <0.02%% of insertion time under the "
                "insert workload; the frag-heavy mix shows the "
                "worst-case upper bound\n");

    JsonReport report(args.jsonPath, "tblB_defrag_overhead");
    report.add(title, table);
    report.write();
    args.writeMetrics("tblB_defrag_overhead");
    return 0;
}
