/**
 * @file
 * Figure 7: breakdown of Page Update time for B-tree insertion as the
 * PM read/write latency is varied.
 *
 * Paper series per engine: "volatile buffer caching" (NVWAL only),
 * "update slot header", "clflush(record)", "in-place record insert"
 * (FASH/FAST only), and "defragment(page)". Expected shape: NVWAL's
 * page update is a pure DRAM copy (latency-insensitive); FASH/FAST pay
 * clflush(record), which grows with write latency; defragmentation is
 * negligible (<0.02% of insertion time, paper §4.3).
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;
using pm::Component;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const std::uint64_t latencies[] = {300, 600, 900, 1200};

    Table table({"latency(ns)", "engine", "volatile-copy(us)",
                 "upd-slot-hdr(us)", "clflush-rec(us)",
                 "in-place-ins(us)", "defrag(us)", "total(us)"});

    double defrag_share_max = 0;
    for (std::uint64_t lat : latencies) {
        for (core::EngineKind kind : paperEngines()) {
            BenchConfig config;
            config.kind = kind;
            config.latency = pm::LatencyModel::of(lat, lat);
            config.numTxns = args.numTxns;
            BenchResult result = runInsertBench(config);

            double vol = result.perTxnNs(Component::VolatileCopy);
            double hdr = result.perTxnNs(Component::UpdateSlotHeader);
            double flush = result.perTxnNs(Component::FlushRecord);
            double inplace = result.perTxnNs(Component::InPlaceInsert);
            double defrag = result.perTxnNs(Component::Defrag);
            double total = vol + hdr + flush + inplace + defrag;
            table.addRow({latencyLabel(config.latency),
                          core::engineKindName(kind),
                          Table::fmt(vol / 1000.0, 3),
                          Table::fmt(hdr / 1000.0, 3),
                          Table::fmt(flush / 1000.0, 3),
                          Table::fmt(inplace / 1000.0, 3),
                          Table::fmt(defrag / 1000.0, 4),
                          Table::fmt(total / 1000.0, 3)});
            Groups groups = groupComponents(result, kind);
            if (groups.totalNs() > 0) {
                defrag_share_max = std::max(
                    defrag_share_max, defrag / groups.totalNs());
            }
        }
    }
    std::string title = "Figure 7: Page Update breakdown vs PM latency";
    table.print(title);
    std::printf("\nmax defragmentation share of insertion time: "
                "%.4f%% (paper: <0.02%%)\n",
                defrag_share_max * 100.0);

    JsonReport report(args.jsonPath, "fig07_pageupdate_breakdown");
    report.add(title, table);
    report.write();
    args.writeMetrics("fig07_pageupdate_breakdown");
    return 0;
}
