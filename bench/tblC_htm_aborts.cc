/**
 * @file
 * Table C (ablation): FAST under HTM abort pressure (paper §3.2
 * footnote 1: if an RTM transaction fails, the fallback handler
 * retries until it succeeds, or alternatively falls back to
 * slot-header logging after repeated aborts).
 *
 * Four tables:
 *
 *  1. Injected-abort sweep (single client, RTM commit): commit cost
 *     degrading gracefully toward FASH as more commits take the
 *     logging fallback.
 *
 *  2. Abort-class breakdown by client count (RTM commit): with
 *     concurrent clients the emulated RTM also aborts on real
 *     write-set contention (line-lock conflicts at commit), so the
 *     per-class counters (explicit / injected / contention /
 *     capacity) separate "we asked for it" aborts from genuine
 *     interference. Capacity stays 0 here — FAST's single-page
 *     commits touch one cache line by construction — and is exercised
 *     by the RTM unit tests instead.
 *
 *  3. Injected-failure sweep for the default PCAS commit (DESIGN.md
 *     §14): the same ablation for the CAS path, whose per-attempt
 *     failure injection models latch-free contention. Exhausting the
 *     retry budget sends the commit to the logging fallback, so cost
 *     degrades toward FASH exactly as the RTM table does.
 *
 *  4. PCAS outcome classes by client count: attempts vs commits vs
 *     injected / conflict / exhausted, plus helping-flush counts and
 *     engine-level fallbacks. With the page latch held across commits
 *     real conflicts stay 0 — the column exists to catch that
 *     invariant drifting.
 *
 *  5. Span-attributed causes by client count (DESIGN.md §17): the
 *     same points read back as before/after deltas of the span
 *     profiler's FAST aggregates, lining aborts up with the latch
 *     waits/conflicts and PCAS retries that produced them. Rows read
 *     0 unless --metrics/--trace enabled the obs layer.
 */

#include <array>
#include <cstdio>
#include <cstring>

#include "bench_util/mt_driver.h"
#include "bench_util/runner.h"
#include "bench_util/table.h"
#include "obs/metrics.h"
#include "obs/span.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const double abort_probs[] = {0.0, 0.1, 0.3, 0.6, 0.9};

    Table table({"abort-prob", "rtm-attempts/commit", "fallback-rate",
                 "in-place", "logged", "commit(us)"});
    for (double prob : abort_probs) {
        BenchConfig config;
        config.kind = core::EngineKind::Fast;
        config.commitVia = core::InPlaceCommitVia::Rtm;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numTxns = args.numTxns;
        config.rtm.abortProbability = prob;
        config.rtm.seed = 1234;
        BenchResult result = runInsertBench(config);

        double commits_total = static_cast<double>(
            result.engineStats.inPlaceCommits +
            result.engineStats.logCommits);
        double attempts =
            result.rtmStats.begins > 0 && result.rtmStats.commits > 0
                ? static_cast<double>(result.rtmStats.begins) /
                      static_cast<double>(result.rtmStats.commits)
                : 0.0;
        double fallback_rate =
            commits_total > 0
                ? static_cast<double>(result.rtmStats.fallbacks) /
                      commits_total
                : 0.0;
        table.addRow({Table::fmt(prob, 2), Table::fmt(attempts, 2),
                      Table::fmt(100.0 * fallback_rate, 2) + "%",
                      Table::fmt(result.engineStats.inPlaceCommits),
                      Table::fmt(result.engineStats.logCommits),
                      Table::fmt(commitNs(result,
                                          core::EngineKind::Fast) /
                                     1000.0,
                                 3)});
    }
    std::string sweep_title =
        "Table C: FAST commit under injected RTM aborts "
        "(retry budget 64, then slot-header-logging fallback)";
    table.print(sweep_title);

    Table classes({"clients", "begins", "commits", "explicit",
                   "injected", "contention", "capacity", "fallbacks"});
    const std::size_t client_counts[] = {1, 2, 4};
    for (std::size_t clients : client_counts) {
        MtConfig config;
        config.kind = core::EngineKind::Fast;
        config.commitVia = core::InPlaceCommitVia::Rtm;
        config.threads = clients;
        config.txnsPerThread =
            std::max<std::size_t>(args.numTxns / clients, 50);
        MtResult result = runMtInsertBench(config);
        classes.addRow(
            {Table::fmt(static_cast<std::uint64_t>(clients)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.begins)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.commits)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.abortsExplicit)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.abortsInjected)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.abortsContention)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.abortsCapacity)),
             Table::fmt(static_cast<std::uint64_t>(
                 result.rtmStats.fallbacks))});
    }
    std::string class_title =
        "Table C (cont.): RTM abort classes vs concurrent clients "
        "(FAST insert workload)";
    classes.print(class_title);

    Table pcas_sweep({"fail-prob", "cas-attempts/commit",
                      "fallback-rate", "in-place", "logged",
                      "commit(us)"});
    for (double prob : abort_probs) {
        BenchConfig config;
        config.kind = core::EngineKind::Fast;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numTxns = args.numTxns;
        config.pcas.failProbability = prob;
        config.pcas.seed = 1234;
        BenchResult result = runInsertBench(config);

        std::uint64_t pcas_commits = result.pcasStats.casCommits +
                                     result.pcasStats.mwcasCommits;
        std::uint64_t pcas_attempts = result.pcasStats.casAttempts +
                                      result.pcasStats.mwcasAttempts;
        double commits_total = static_cast<double>(
            result.engineStats.inPlaceCommits +
            result.engineStats.logCommits);
        double attempts =
            pcas_commits > 0 ? static_cast<double>(pcas_attempts) /
                                   static_cast<double>(pcas_commits)
                             : 0.0;
        double fallback_rate =
            commits_total > 0
                ? static_cast<double>(
                      result.engineStats.pcasFallbacks) /
                      commits_total
                : 0.0;
        pcas_sweep.addRow(
            {Table::fmt(prob, 2), Table::fmt(attempts, 2),
             Table::fmt(100.0 * fallback_rate, 2) + "%",
             Table::fmt(result.engineStats.inPlaceCommits),
             Table::fmt(result.engineStats.logCommits),
             Table::fmt(commitNs(result, core::EngineKind::Fast) /
                            1000.0,
                        3)});
    }
    std::string pcas_sweep_title =
        "Table C (cont.): FAST commit under injected PCAS failures "
        "(retry budget 8, then slot-header-logging fallback)";
    pcas_sweep.print(pcas_sweep_title);

    // Cumulative FAST span aggregates, for the before/after deltas of
    // the cause table (all-zero when the obs layer is off).
    auto fast_span_counts = [] {
        std::array<std::uint64_t, 7> c{};
        if (!obs::enabled())
            return c;
        for (const obs::EngineSpanSummary &s :
             obs::SpanProfiler::global().engineSummaries()) {
            if (s.engine != nullptr &&
                std::strcmp(s.engine, "FAST") == 0) {
                c = {s.spans,          s.aborts,     s.latchWaits,
                     s.latchConflicts, s.latchWaitNs, s.pcasRetries,
                     s.pcasHelps};
            }
        }
        return c;
    };

    Table pcas_classes({"clients", "attempts", "commits", "injected",
                        "conflicts", "exhausted", "helps",
                        "fallbacks"});
    Table causes({"clients", "spans", "span-aborts", "latch-waits",
                  "latch-conflicts", "latch-wait(ns)", "pcas-retries",
                  "pcas-helps"});
    for (std::size_t clients : client_counts) {
        MtConfig config;
        config.kind = core::EngineKind::Fast;
        config.threads = clients;
        config.txnsPerThread =
            std::max<std::size_t>(args.numTxns / clients, 50);
        std::array<std::uint64_t, 7> before = fast_span_counts();
        MtResult result = runMtInsertBench(config);
        std::array<std::uint64_t, 7> after = fast_span_counts();
        const pm::PcasStats &ps = result.pcasStats;
        pcas_classes.addRow(
            {Table::fmt(static_cast<std::uint64_t>(clients)),
             Table::fmt(ps.casAttempts + ps.mwcasAttempts),
             Table::fmt(ps.casCommits + ps.mwcasCommits),
             Table::fmt(ps.casInjected + ps.mwcasInjected),
             Table::fmt(ps.casConflicts + ps.mwcasConflicts),
             Table::fmt(ps.casExhausted + ps.mwcasExhausted),
             Table::fmt(ps.helps),
             Table::fmt(result.engineStats.pcasFallbacks)});
        std::vector<std::string> cause_row;
        cause_row.push_back(
            Table::fmt(static_cast<std::uint64_t>(clients)));
        for (std::size_t i = 0; i < before.size(); ++i)
            cause_row.push_back(Table::fmt(after[i] - before[i]));
        causes.addRow(cause_row);
    }
    std::string pcas_class_title =
        "Table C (cont.): PCAS outcome classes vs concurrent clients "
        "(FAST insert workload, PCAS commit)";
    pcas_classes.print(pcas_class_title);

    std::string cause_title =
        "Table C (cont.): span-attributed abort/retry causes vs "
        "clients (0 unless --metrics/--trace)";
    causes.print(cause_title);

    std::printf("\nexpected: graceful degradation — retries absorb "
                "moderate abort rates; heavy abort pressure shifts "
                "commits to the logging path (toward FASH cost); "
                "contention aborts grow with clients, capacity stays "
                "0 for single-line commits; PCAS real conflicts stay "
                "0 under the page latch\n");

    JsonReport report(args.jsonPath, "tblC_htm_aborts");
    report.add(sweep_title, table);
    report.add(class_title, classes);
    report.add(pcas_sweep_title, pcas_sweep);
    report.add(pcas_class_title, pcas_classes);
    report.add(cause_title, causes);
    report.write();
    args.writeMetrics("tblC_htm_aborts");
    return 0;
}
