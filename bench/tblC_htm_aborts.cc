/**
 * @file
 * Table C (ablation): FAST under HTM abort pressure (paper §3.2
 * footnote 1: if an RTM transaction fails, the fallback handler
 * retries until it succeeds, or alternatively falls back to
 * slot-header logging after repeated aborts).
 *
 * Sweeps the injected abort probability and the retry budget; shows
 * the commit cost degrading gracefully toward FASH as more commits
 * take the logging fallback.
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);
    const double abort_probs[] = {0.0, 0.1, 0.3, 0.6, 0.9};

    Table table({"abort-prob", "rtm-attempts/commit", "fallback-rate",
                 "in-place", "logged", "commit(us)"});
    for (double prob : abort_probs) {
        BenchConfig config;
        config.kind = core::EngineKind::Fast;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numTxns = args.numTxns;
        config.rtm.abortProbability = prob;
        config.rtm.seed = 1234;
        BenchResult result = runInsertBench(config);

        double commits_total = static_cast<double>(
            result.engineStats.inPlaceCommits +
            result.engineStats.logCommits);
        double attempts =
            result.rtmStats.begins > 0 && result.rtmStats.commits > 0
                ? static_cast<double>(result.rtmStats.begins) /
                      static_cast<double>(result.rtmStats.commits)
                : 0.0;
        double fallback_rate =
            commits_total > 0
                ? static_cast<double>(result.rtmStats.fallbacks) /
                      commits_total
                : 0.0;
        table.addRow({Table::fmt(prob, 2), Table::fmt(attempts, 2),
                      Table::fmt(100.0 * fallback_rate, 2) + "%",
                      Table::fmt(result.engineStats.inPlaceCommits),
                      Table::fmt(result.engineStats.logCommits),
                      Table::fmt(commitNs(result,
                                          core::EngineKind::Fast) /
                                     1000.0,
                                 3)});
    }
    table.print("Table C: FAST commit under injected RTM aborts "
                "(retry budget 64, then slot-header-logging fallback)");
    std::printf("\nexpected: graceful degradation — retries absorb "
                "moderate abort rates; heavy abort pressure shifts "
                "commits to the logging path (toward FASH cost)\n");
    return 0;
}
