/**
 * @file
 * Figure 11: full query response time through the SQL layer (parsing
 * + execution + storage), per operation type, for a Mobibench-style
 * mobile workload.
 *
 * Unlike Figures 6-10, this includes the fixed SQL-frontend software
 * overhead, which dilutes the storage-level gap: the paper's headline
 * here is "improves query response time by up to 33% compared to
 * NVWAL".
 */

#include <cstdio>

#include "bench_util/runner.h"
#include "bench_util/table.h"

using namespace fasp;
using namespace fasp::benchutil;

int
main(int argc, char **argv)
{
    BenchArgs args = BenchArgs::parse(argc, argv);

    Table table({"engine", "insert(us)", "update(us)", "delete(us)",
                 "select(us)"});
    double nvwal_insert = 0, fast_insert = 0;

    for (core::EngineKind kind : paperEngines()) {
        SqlBenchConfig config;
        config.kind = kind;
        config.latency = pm::LatencyModel::of(300, 300);
        config.numOps = std::max<std::size_t>(args.numTxns / 2, 500);
        config.mix = {50, 20, 10}; // rest are lookups
        SqlBenchResult result = runSqlBench(config);
        table.addRow({core::engineKindName(kind),
                      Table::fmt(result.insertNs / 1000.0),
                      Table::fmt(result.updateNs / 1000.0),
                      Table::fmt(result.deleteNs / 1000.0),
                      Table::fmt(result.lookupNs / 1000.0)});
        if (kind == core::EngineKind::Nvwal)
            nvwal_insert = result.insertNs;
        if (kind == core::EngineKind::Fast)
            fast_insert = result.insertNs;
    }
    std::string title =
        "Figure 11: SQL query response time by operation "
        "(300/300ns, Mobibench-style mix)";
    table.print(title);
    std::printf("\nFAST insert response improvement over NVWAL: "
                "%.1f%% (paper: up to 33%%)\n",
                100.0 * (1.0 - fast_insert / nvwal_insert));

    JsonReport report(args.jsonPath, "fig11_query_response");
    report.add(title, table);
    report.write();
    args.writeMetrics("fig11_query_response");
    return 0;
}
